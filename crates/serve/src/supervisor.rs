//! The campaign supervisor: spool intake, concurrent stage execution,
//! restart budgets, and the durable state machine.
//!
//! Each campaign moves through `Pending → Running → {Completed, Degraded,
//! Failed}` (see [`CampaignPhase`]). The supervisor drives every open
//! campaign's *current* stage as a resilient BO search whose observer
//! appends one WAL record per evaluation attempt **before** the search
//! advances past it — the WAL is therefore always at least as current as
//! the in-memory search, which is the whole durability story.
//!
//! ## Determinism under concurrency
//!
//! Campaigns run concurrently (`cets-linalg::par`, worker count from
//! `CETS_THREADS`), but every per-campaign stream — LHS design,
//! per-iteration RNG, retry jitter, fault plan — is keyed off the
//! campaign's own seed, and the WAL is strictly per-attempt-ordered
//! *within* a campaign (cross-campaign interleaving varies; replay groups
//! by id). Final configurations are identical whatever the interleaving,
//! which the crash-simulation suite and the CI `serve-chaos` job verify
//! by hash equality.
//!
//! ## Restarts
//!
//! A campaign-level error (e.g. a stage stalling with every attempt
//! failed) does not kill the service: the supervisor logs
//! `CampaignRestarted`, sleeps a capped-exponential backoff (through the
//! injected clock, so simulations pay no wall time), and retries the
//! stage from its durable records. When the restart budget is exhausted
//! the campaign fails terminally (`CampaignFailed`) — other campaigns are
//! unaffected.

use crate::recovery::{CampaignPhase, CampaignState, ServiceState, Terminal};
use crate::spec::{build_objective, config_hash, CampaignSpec};
use crate::wal::{FsyncPolicy, KillSpec, RecoveryReport, Wal, WalRecord, WAL_FILE_NAME};
use crate::{Result, ServeError};
use cets_core::{
    BoConfig, BoSearch, Clock, CoreError, EvalRecord, FailurePolicy, FaultPlan, FaultyObjective,
    GuardPolicy, Objective, ResilientObjective, RetryPolicy, SystemClock, VirtualClock,
};
use cets_linalg::par;
use cets_space::Subspace;
use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Salt separating the restart-backoff stream from the retry stream (both
/// reuse [`RetryPolicy::backoff`], keyed per campaign).
const RESTART_SEED_SALT: u64 = 0x5e57_a127_0b3c_9d71;

/// Per-stage seed stride: stage `s` of a campaign searches with
/// `spec.seed + s · STAGE_SEED_STRIDE`, so stages draw independent
/// streams while remaining a pure function of the spec.
const STAGE_SEED_STRIDE: u64 = 1 << 32;

/// Supervisor restart budget and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Campaign-level restarts before the campaign fails terminally.
    pub max_restarts: usize,
    /// First backoff delay.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 2,
            base_backoff: Duration::from_millis(250),
            max_backoff: Duration::from_secs(30),
        }
    }
}

/// Service configuration.
pub struct ServeConfig {
    /// Data directory; the WAL lives at `<data_dir>/wal.log`.
    pub data_dir: PathBuf,
    /// Job-intake spool directory (scanned for `*.json` specs). `None`
    /// disables spool intake (programmatic submission only).
    pub spool_dir: Option<PathBuf>,
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
    /// Concurrent campaign workers; 0 = the `cets-linalg::par` global
    /// (`CETS_THREADS` / detected cores).
    pub workers: usize,
    /// Restart budget and backoff.
    pub restart: RestartPolicy,
    /// Per-evaluation watchdog limit handed to the resilience layer. The
    /// guard times evaluations against a per-campaign *virtual* clock that
    /// only injected faults advance, so the classification (and therefore
    /// the record stream) is a pure function of the spec — a wall-clock
    /// watchdog would make crash recovery timing-dependent.
    pub watchdog: Option<Duration>,
    /// Time source for restart backoff: `SystemClock` in production,
    /// `VirtualClock` in simulation (backoffs advance it without
    /// sleeping).
    pub clock: Arc<dyn Clock>,
    /// Simulated process kill, armed on the WAL (tests/simulation only).
    pub kill: Option<KillSpec>,
}

impl ServeConfig {
    /// Production defaults rooted at `data_dir`: fsync on every append, a
    /// 60 s watchdog, the system clock, no fault injection.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            data_dir: data_dir.into(),
            spool_dir: None,
            fsync: FsyncPolicy::Always,
            workers: 0,
            restart: RestartPolicy::default(),
            watchdog: Some(Duration::from_secs(60)),
            clock: Arc::new(SystemClock::new()),
            kill: None,
        }
    }
}

/// One campaign's row in the service summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign id.
    pub id: String,
    /// Lifecycle phase.
    pub phase: CampaignPhase,
    /// Best observed value, when finished.
    pub best_value: Option<f64>,
    /// Final configuration hash, when finished.
    pub config_hash: Option<String>,
    /// Successful attempts.
    pub n_ok: usize,
    /// Failed attempts.
    pub n_failed: usize,
    /// Supervisor restarts.
    pub restarts: usize,
    /// Terminal failure reason, when failed.
    pub failure: Option<String>,
}

/// The whole service's summary, sorted by campaign id — identical across
/// runs whatever the scheduling interleaving, so CI can diff it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Per-campaign rows, ascending by id.
    pub campaigns: Vec<CampaignSummary>,
}

impl ServiceSummary {
    /// Any campaign terminally failed?
    pub fn any_failed(&self) -> bool {
        self.campaigns
            .iter()
            .any(|c| c.phase == CampaignPhase::Failed)
    }

    /// Render as stable `campaign <id> ...` lines (one per campaign) for
    /// logs and the CI hash-equality gate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.campaigns {
            out.push_str(&format!(
                "campaign {} phase={} evals_ok={} evals_failed={} restarts={}",
                c.id,
                c.phase.as_str(),
                c.n_ok,
                c.n_failed,
                c.restarts
            ));
            if let Some(v) = c.best_value {
                out.push_str(&format!(" best={v:?}"));
            }
            if let Some(h) = &c.config_hash {
                out.push_str(&format!(" config={h}"));
            }
            if let Some(f) = &c.failure {
                out.push_str(&format!(" error={f:?}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The durable campaign service.
pub struct Service {
    config: ServeConfig,
    wal: Mutex<Wal>,
    state: ServiceState,
    /// Recovery report from opening the WAL (how much log survived).
    pub recovery: RecoveryReport,
}

impl Service {
    /// Open the service: create the data directory, open/repair the WAL,
    /// and replay it into memory. A service directory is self-contained —
    /// opening it after a `kill -9` resumes every campaign.
    pub fn open(config: ServeConfig) -> Result<Service> {
        std::fs::create_dir_all(&config.data_dir)
            .map_err(|e| ServeError::Io(format!("create {}: {e}", config.data_dir.display())))?;
        let wal_path = config.data_dir.join(WAL_FILE_NAME);
        let (wal, records, recovery) = Wal::open(&wal_path, config.fsync)?;
        let wal = wal.with_kill(config.kill);
        let state = ServiceState::replay(&records)?;
        Ok(Service {
            config,
            wal: Mutex::new(wal),
            state,
            recovery,
        })
    }

    /// The replayed (and since-updated) service state.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    fn append(&self, rec: &WalRecord) -> Result<usize> {
        lock_wal(&self.wal)?.append(rec)
    }

    /// Submit a campaign programmatically: validate, log
    /// `CampaignSubmitted`, register. Duplicate ids are rejected as spec
    /// errors (the WAL keys campaigns by id).
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<()> {
        if self.state.campaign(&spec.id).is_some() {
            return Err(ServeError::Spec(format!(
                "campaign id `{}` already exists",
                spec.id
            )));
        }
        spec.validate()?;
        self.append(&WalRecord::CampaignSubmitted { spec: spec.clone() })?;
        self.state.campaigns.push(CampaignState::new(spec));
        Ok(())
    }

    /// Scan the spool directory for `*.json` specs. Files whose id is
    /// already registered or that were already rejected are skipped (the
    /// spool is never mutated — the WAL remembers both outcomes).
    /// Returns `(accepted, rejected)` counts for this scan.
    pub fn intake_spool(&mut self) -> Result<(usize, usize)> {
        let Some(dir) = self.config.spool_dir.clone() else {
            return Ok((0, 0));
        };
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| ServeError::Io(format!("read spool {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .collect();
        // Deterministic intake order whatever the directory iteration order.
        files.sort();
        let (mut accepted, mut rejected) = (0, 0);
        for path in files {
            let file = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if self.state.is_rejected(&file) {
                continue;
            }
            match self.load_spool_spec(&path) {
                Ok(spec) => {
                    if self.state.campaign(&spec.id).is_none() {
                        self.submit(spec)?;
                        accepted += 1;
                    }
                }
                Err(ServeError::Spec(reason)) => {
                    self.append(&WalRecord::SpoolRejected {
                        file: file.clone(),
                        reason: reason.clone(),
                    })?;
                    self.state.rejected.push((file, reason));
                    rejected += 1;
                }
                Err(other) => return Err(other),
            }
        }
        Ok((accepted, rejected))
    }

    fn load_spool_spec(&self, path: &Path) -> Result<CampaignSpec> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Io(format!("read {}: {e}", path.display())))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| ServeError::Spec(format!("unparseable JSON: {e}")))?;
        let spec = CampaignSpec::deserialize(&value)
            .map_err(|e| ServeError::Spec(format!("malformed spec: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Drive every open campaign to a terminal state. Campaigns run
    /// concurrently; each is advanced stage by stage with restarts on
    /// campaign-level errors. Returns the summary when all campaigns are
    /// terminal; a simulated kill aborts the whole run with
    /// [`ServeError::SimulatedCrash`].
    pub fn run_until_drained(&mut self) -> Result<ServiceSummary> {
        let open: Vec<CampaignState> = self.state.open_campaigns().cloned().collect();
        let workers = if self.config.workers == 0 {
            par::global_threads()
        } else {
            self.config.workers
        };
        let results: Vec<Result<CampaignState>> = par::map_indexed(workers, open.len(), |i| {
            run_campaign(open[i].clone(), &self.wal, &self.config)
        });
        let mut crash: Option<ServeError> = None;
        for result in results {
            match result {
                Ok(updated) => {
                    if let Some(slot) = self
                        .state
                        .campaigns
                        .iter_mut()
                        .find(|c| c.spec.id == updated.spec.id)
                    {
                        *slot = updated;
                    }
                }
                Err(e @ ServeError::SimulatedCrash { .. }) => {
                    // Remember the first kill; other campaigns died on the
                    // poisoned WAL with the same error.
                    crash.get_or_insert(e);
                }
                Err(other) => return Err(other),
            }
        }
        if let Some(e) = crash {
            return Err(e);
        }
        Ok(self.summary())
    }

    /// The service summary (sorted by campaign id, render-stable).
    pub fn summary(&self) -> ServiceSummary {
        let mut campaigns: Vec<CampaignSummary> = self
            .state
            .campaigns
            .iter()
            .map(|c| {
                let stats = c.failure_stats();
                let (best_value, config_hash, failure) = match &c.terminal {
                    Some(Terminal::Finished {
                        best_value,
                        config_hash,
                    }) => (Some(*best_value), Some(config_hash.clone()), None),
                    Some(Terminal::Failed { reason }) => (None, None, Some(reason.clone())),
                    None => (None, None, None),
                };
                CampaignSummary {
                    id: c.spec.id.clone(),
                    phase: c.phase(),
                    best_value,
                    config_hash,
                    n_ok: stats.n_ok,
                    n_failed: stats.n_failed(),
                    restarts: c.restarts,
                    failure,
                }
            })
            .collect();
        campaigns.sort_by(|a, b| a.id.cmp(&b.id));
        ServiceSummary { campaigns }
    }
}

fn lock_wal<'a>(wal: &'a Mutex<Wal>) -> Result<std::sync::MutexGuard<'a, Wal>> {
    wal.lock()
        .map_err(|_| ServeError::Io("WAL lock poisoned".into()))
}

/// Drive one campaign to a terminal state, appending every event to the
/// shared WAL. Runs on a worker thread; returns the updated state.
fn run_campaign(
    mut campaign: CampaignState,
    wal: &Mutex<Wal>,
    config: &ServeConfig,
) -> Result<CampaignState> {
    let id = campaign.spec.id.clone();
    loop {
        match run_campaign_stages(&mut campaign, wal, config) {
            Ok(()) => return Ok(campaign),
            Err(e @ ServeError::SimulatedCrash { .. }) => return Err(e),
            Err(ServeError::Core(core_err)) => {
                // Campaign-level error: restart under the budget, else fail
                // terminally. Either way the service itself survives.
                let attempt = campaign.restarts + 1;
                if attempt > config.restart.max_restarts {
                    let reason = format!("restart budget exhausted: {core_err}");
                    lock_wal(wal)?.append(&WalRecord::CampaignFailed {
                        id: id.clone(),
                        reason: reason.clone(),
                    })?;
                    campaign.terminal = Some(Terminal::Failed { reason });
                    return Ok(campaign);
                }
                lock_wal(wal)?.append(&WalRecord::CampaignRestarted {
                    id: id.clone(),
                    attempt,
                    reason: core_err.to_string(),
                })?;
                campaign.restarts = attempt;
                let backoff = RetryPolicy {
                    max_retries: config.restart.max_restarts,
                    base_backoff: config.restart.base_backoff,
                    max_backoff: config.restart.max_backoff,
                    seed: campaign.spec.seed ^ RESTART_SEED_SALT,
                };
                config.clock.sleep(backoff.backoff(0, attempt));
            }
            Err(other) => return Err(other),
        }
    }
}

/// Advance `campaign` through its remaining stages. Errors from the
/// search machinery surface as `ServeError::Core` for the restart loop;
/// WAL failures (including simulated kills) surface as themselves.
fn run_campaign_stages(
    campaign: &mut CampaignState,
    wal: &Mutex<Wal>,
    config: &ServeConfig,
) -> Result<()> {
    let spec = campaign.spec.clone();
    let objective = build_objective(&spec)?;
    let space = objective.space().clone();
    let stage_params = spec.stage_params(&space);
    let n_stages = stage_params.len();

    // Rebuild the stage fold: defaults for stage s are the best config of
    // the replayed stage s-1 (chained), starting from the objective's
    // defaults. Pure function of the durable records.
    let mut defaults = objective.default_config();
    for (params, records) in stage_params
        .iter()
        .zip(&campaign.stages)
        .take(campaign.advanced)
    {
        let names: Vec<&str> = params.iter().map(|p| p.as_str()).collect();
        let sub = Subspace::new(&space, &names, defaults)?;
        defaults = BoSearch::replay_outcome(&sub, records)?.best_config;
    }

    let policy = FailurePolicy {
        // Failures cost no budget here — the per-stage budget counts
        // *successful* evaluations so interrupted and uninterrupted runs
        // agree on when a stage is done; the failure cap bounds runaway.
        budget_fraction: 0.0,
        max_failures: spec.max_evals.saturating_mul(4).max(16),
        ..FailurePolicy::default()
    };

    while campaign.advanced < n_stages {
        let s = campaign.advanced;
        let names: Vec<&str> = stage_params[s].iter().map(|p| p.as_str()).collect();
        let sub = Subspace::new(&space, &names, defaults.clone())?;
        let bo = BoSearch::new(BoConfig {
            n_init: spec.n_init,
            max_evals: spec.max_evals,
            seed: spec
                .seed
                .wrapping_add((s as u64).wrapping_mul(STAGE_SEED_STRIDE)),
            ..BoConfig::default()
        });

        let fault_plan = if spec.flaky_rate > 0.0 {
            Some(FaultPlan::flaky(spec.flaky_rate, spec.seed))
        } else {
            None
        };
        // Evaluations are timed against a virtual clock that only injected
        // faults (stalls, latency) and retry backoffs advance: a stall
        // fault trips the watchdog instantly in real time, and the
        // classification never depends on machine load. The config clock
        // stays in charge of campaign restart backoff only.
        let eval_clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let guard = GuardPolicy {
            retry: RetryPolicy {
                max_retries: spec.max_retries,
                seed: spec.seed,
                ..RetryPolicy::default()
            },
            watchdog: config.watchdog,
            validate_configs: true,
        };

        // The observer appends one WAL record per NEW attempt before the
        // search advances; a WAL error (real or simulated kill) is stashed
        // in the side channel and aborts the search at the exact record
        // boundary via a core error.
        let side_channel: Mutex<Option<ServeError>> = Mutex::new(None);
        // Every record the observer logs also lands here, so the
        // in-memory stage history stays in lockstep with the WAL even
        // when the search errors out mid-stage — a restart must resume
        // from the *logged* records, not a stale prefix (replay rejects
        // duplicate attempt indices as corruption).
        let mut appended: Vec<EvalRecord> = Vec::new();
        let mut next_idx = campaign.stages[s].len();
        let mut on_record = |rec: &EvalRecord| -> cets_core::Result<()> {
            let wal_rec = match &rec.value {
                Ok(y) => WalRecord::EvalCompleted {
                    id: spec.id.clone(),
                    stage: s,
                    idx: next_idx,
                    u: rec.u.clone(),
                    y: *y,
                },
                Err(f) => WalRecord::EvalFailed {
                    id: spec.id.clone(),
                    stage: s,
                    idx: next_idx,
                    u: rec.u.clone(),
                    kind: f.kind.as_str().to_string(),
                    message: f.message.clone(),
                },
            };
            let append = lock_wal(wal).and_then(|mut w| w.append(&wal_rec));
            match append {
                Ok(_) => {
                    next_idx += 1;
                    appended.push(rec.clone());
                    Ok(())
                }
                Err(e) => {
                    if let Ok(mut slot) = side_channel.lock() {
                        *slot = Some(e);
                    }
                    Err(CoreError::Checkpoint("WAL append failed".into()))
                }
            }
        };

        let prior = campaign.stages[s].clone();
        let run = match fault_plan {
            Some(plan) => {
                let faulty = FaultyObjective::new(&objective, plan, eval_clock.clone());
                let guarded = ResilientObjective::new(&faulty, guard, eval_clock.clone());
                bo.run_resilient_observed(
                    &sub,
                    |cfg, i| guarded.evaluate_outcome(cfg, i),
                    &policy,
                    prior,
                    &mut on_record,
                )
            }
            None => {
                let guarded = ResilientObjective::new(&objective, guard, eval_clock.clone());
                bo.run_resilient_observed(
                    &sub,
                    |cfg, i| guarded.evaluate_outcome(cfg, i),
                    &policy,
                    prior,
                    &mut on_record,
                )
            }
        };

        let outcome = match run {
            Ok(outcome) => outcome,
            Err(core_err) => {
                // Sync the in-memory history with what reached the WAL
                // before surfacing the error, so a restart resumes from
                // the logged records.
                campaign.stages[s].extend(appended);
                // A stashed WAL error outranks the core wrapper it rode in
                // on (simulated kills must surface as SimulatedCrash).
                if let Ok(mut slot) = side_channel.lock() {
                    if let Some(serve_err) = slot.take() {
                        return Err(serve_err);
                    }
                }
                return Err(ServeError::Core(core_err));
            }
        };

        campaign.stages[s] = outcome.records;
        lock_wal(wal)?.append(&WalRecord::StageAdvanced {
            id: spec.id.clone(),
            stage: s,
        })?;
        campaign.advanced += 1;
        defaults = outcome.outcome.best_config;
    }

    // Terminal fold: best over all stages' successful attempts; the final
    // configuration is the fold of every stage's best (no extra
    // evaluation — the WAL already holds every observation).
    let best_value = campaign
        .stages
        .iter()
        .flatten()
        .filter_map(EvalRecord::y)
        .fold(f64::INFINITY, f64::min);
    if !best_value.is_finite() {
        return Err(ServeError::Core(CoreError::SearchStalled(
            "no successful evaluation in any stage".into(),
        )));
    }
    let hash = config_hash(&defaults);
    lock_wal(wal)?.append(&WalRecord::CampaignFinished {
        id: spec.id.clone(),
        best_value,
        config_hash: hash.clone(),
    })?;
    campaign.terminal = Some(Terminal::Finished {
        best_value,
        config_hash: hash,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_core::VirtualClock;

    fn test_config(name: &str) -> ServeConfig {
        let mut dir = std::env::temp_dir();
        dir.push(format!("cets_serve_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ServeConfig {
            fsync: FsyncPolicy::Never,
            workers: 1,
            clock: Arc::new(VirtualClock::new()),
            ..ServeConfig::new(dir)
        }
    }

    fn staged_spec(id: &str, seed: u64) -> CampaignSpec {
        CampaignSpec {
            stages: vec![vec!["x0".into(), "x1".into()], vec!["x2".into()]],
            max_evals: 6,
            n_init: 3,
            ..CampaignSpec::new(id, "sphere", seed)
        }
    }

    #[test]
    fn clean_campaign_completes_and_survives_reopen() {
        let config = test_config("clean");
        let dir = config.data_dir.clone();
        let summary = {
            let mut svc = Service::open(config).unwrap();
            svc.submit(staged_spec("demo", 11)).unwrap();
            svc.run_until_drained().unwrap()
        };
        assert_eq!(summary.campaigns.len(), 1);
        let c = &summary.campaigns[0];
        assert_eq!(c.phase, CampaignPhase::Completed);
        assert_eq!(c.n_ok, 12); // 6 evals × 2 stages, no failures
        let hash = c.config_hash.clone().unwrap();

        // Reopen: state replays to the identical summary.
        let svc = Service::open(test_config_existing(&dir)).unwrap();
        let replayed = svc.summary();
        assert_eq!(replayed.campaigns[0].config_hash.as_deref(), Some(&*hash));
        assert_eq!(replayed.campaigns[0].phase, CampaignPhase::Completed);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn test_config_existing(dir: &Path) -> ServeConfig {
        ServeConfig {
            fsync: FsyncPolicy::Never,
            workers: 1,
            clock: Arc::new(VirtualClock::new()),
            ..ServeConfig::new(dir.to_path_buf())
        }
    }

    #[test]
    fn flaky_campaign_degrades_but_finishes() {
        let config = test_config("flaky");
        let dir = config.data_dir.clone();
        let mut svc = Service::open(config).unwrap();
        svc.submit(CampaignSpec {
            flaky_rate: 0.3,
            max_retries: 0,
            max_evals: 8,
            ..CampaignSpec::new("shaky", "sphere", 5)
        })
        .unwrap();
        let summary = svc.run_until_drained().unwrap();
        let c = &summary.campaigns[0];
        assert_eq!(c.phase, CampaignPhase::Degraded);
        assert!(c.n_failed > 0, "flaky rate 0.3 produced no failures");
        assert!(c.config_hash.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let config = test_config("dup");
        let dir = config.data_dir.clone();
        let mut svc = Service::open(config).unwrap();
        svc.submit(CampaignSpec::new("same", "sphere", 1)).unwrap();
        assert!(matches!(
            svc.submit(CampaignSpec::new("same", "sphere", 2)),
            Err(ServeError::Spec(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hopeless_campaign_exhausts_restarts_and_fails_alone() {
        let config = test_config("hopeless");
        let dir = config.data_dir.clone();
        let mut svc = Service::open(config).unwrap();
        // flaky_rate 1.0: every evaluation fails deterministically, the
        // stage stalls, restarts replay into the same stall.
        svc.submit(CampaignSpec {
            flaky_rate: 1.0,
            max_retries: 0,
            max_evals: 4,
            ..CampaignSpec::new("doomed", "sphere", 9)
        })
        .unwrap();
        svc.submit(staged_spec("fine", 13)).unwrap();
        let summary = svc.run_until_drained().unwrap();
        assert!(summary.any_failed());
        let doomed = summary.campaigns.iter().find(|c| c.id == "doomed").unwrap();
        assert_eq!(doomed.phase, CampaignPhase::Failed);
        assert_eq!(doomed.restarts, RestartPolicy::default().max_restarts);
        assert!(doomed
            .failure
            .as_deref()
            .unwrap()
            .contains("restart budget"));
        let fine = summary.campaigns.iter().find(|c| c.id == "fine").unwrap();
        assert_eq!(fine.phase, CampaignPhase::Completed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spool_intake_accepts_validates_and_remembers_rejections() {
        let mut config = test_config("spool");
        let dir = config.data_dir.clone();
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(
            spool.join("good.json"),
            r#"{"id":"good","objective":"sphere","seed":3,"max_evals":5}"#,
        )
        .unwrap();
        std::fs::write(
            spool.join("bad.json"),
            r#"{"id":"bad","objective":"warp-drive","seed":3,"max_evals":5}"#,
        )
        .unwrap();
        std::fs::write(spool.join("notes.txt"), "not a spec").unwrap();
        config.spool_dir = Some(spool.clone());
        let mut svc = Service::open(config).unwrap();
        assert_eq!(svc.intake_spool().unwrap(), (1, 1));
        // Re-scan: both outcomes remembered, nothing re-processed.
        assert_eq!(svc.intake_spool().unwrap(), (0, 0));
        assert!(svc.state().campaign("good").is_some());
        assert!(svc.state().is_rejected("bad.json"));
        // The spool itself is never mutated.
        assert!(spool.join("good.json").exists());
        assert!(spool.join("bad.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
