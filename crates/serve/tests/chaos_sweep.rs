//! The crash-recovery acceptance sweep.
//!
//! Runs a 3-campaign service (one single-stage, one staged, one staged +
//! fault-injected) to completion uninterrupted, then replays the same
//! submission killing the process at **every** record count `k` from 0 to
//! the final log length — with the torn-write length varied by `k` so
//! clean kills, torn headers, and torn payloads are all exercised — and
//! asserts the recovered service converges to the bit-identical summary:
//! same phases, same best values (IEEE-754 bit-equal via `{:?}`
//! rendering), same final configuration hashes, same attempt counts.
//!
//! This is the whole durability contract in one test: *there is no record
//! count at which dying loses more than the attempt in flight.*

use cets_serve::sim::{run_service, uninterrupted_baseline};
use cets_serve::spec::CampaignSpec;
use cets_serve::wal::KillSpec;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cets_sweep_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn three_campaigns() -> Vec<CampaignSpec> {
    vec![
        // Single stage over every parameter, clean.
        CampaignSpec {
            max_evals: 5,
            n_init: 3,
            ..CampaignSpec::new("plain", "sphere", 7)
        },
        // Two stages, the first stage's best folded into the second.
        CampaignSpec {
            max_evals: 4,
            n_init: 2,
            stages: vec![vec!["x0".into(), "x1".into()], vec!["x2".into()]],
            ..CampaignSpec::new("staged", "sphere", 19)
        },
        // Staged + deterministic fault injection + retries: the stream
        // carries EvalFailed records and retry decisions too.
        CampaignSpec {
            max_evals: 4,
            n_init: 2,
            stages: vec![vec!["x2".into()], vec!["x0".into(), "x1".into()]],
            flaky_rate: 0.3,
            max_retries: 1,
            ..CampaignSpec::new("shaky", "sphere", 42)
        },
    ]
}

#[test]
fn kill_at_every_record_recovers_bit_identically() {
    let base_dir = tmp_dir("baseline");
    let baseline = uninterrupted_baseline(&base_dir, &three_campaigns()).unwrap();
    let golden = baseline.summary.render();
    assert!(
        baseline.records > 20,
        "baseline too short to be a meaningful sweep: {} records",
        baseline.records
    );
    // Sanity on the golden run itself.
    assert!(
        golden.contains("campaign plain phase=completed"),
        "{golden}"
    );
    assert!(golden.contains("campaign shaky phase=degraded"), "{golden}");

    for k in 0..baseline.records {
        let dir = tmp_dir(&format!("kill_{k}"));
        // Vary the tear across the sweep: clean kill, torn length field,
        // torn checksum, torn payload.
        let kill = KillSpec {
            after_records: k,
            torn_bytes: k % 17,
        };
        let report = run_service(&dir, &three_campaigns(), &[kill]).unwrap();
        assert_eq!(report.crashes, 1, "kill at {k} did not fire");
        assert_eq!(
            report.summary.render(),
            golden,
            "divergence after kill at record {k}"
        );
        assert_eq!(
            report.records, baseline.records,
            "replayed evaluations after kill at record {k}: log lengths differ"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base_dir).ok();
}

#[test]
fn double_kill_with_recovery_between_still_converges() {
    let base_dir = tmp_dir("dbl_baseline");
    let baseline = uninterrupted_baseline(&base_dir, &three_campaigns()).unwrap();
    let golden = baseline.summary.render();
    // Crash during recovery-of-a-crash: the second incarnation dies
    // further into the log than the first.
    for (k1, k2) in [(3, 9), (10, 25), (5, 6)] {
        let dir = tmp_dir(&format!("dbl_{k1}_{k2}"));
        let report = run_service(
            &dir,
            &three_campaigns(),
            &[
                KillSpec {
                    after_records: k1,
                    torn_bytes: 3,
                },
                KillSpec {
                    after_records: k2,
                    torn_bytes: 0,
                },
            ],
        )
        .unwrap();
        assert_eq!(report.crashes, 2);
        assert_eq!(
            report.summary.render(),
            golden,
            "divergence after kills at {k1} then {k2}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base_dir).ok();
}
