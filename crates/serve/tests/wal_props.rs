//! Property-based tests of the WAL robustness contract:
//!
//! 1. **Round-trip**: any record sequence encodes and decodes bit-exactly
//!    (floats included — the vendored JSON layer is shortest-roundtrip).
//! 2. **Prefix-truncation**: chop a valid log at any byte and the reader
//!    returns a *consistent prefix* of the original records, never
//!    panicking and never fabricating a record.
//! 3. **Single-bit corruption**: flip any bit anywhere and the reader
//!    still returns a prefix — the flipped record and everything after it
//!    are dropped (the checksum covers the whole payload, so no altered
//!    record can slip through it).
//! 4. **Totality**: arbitrary junk after the magic never panics.

use cets_serve::spec::CampaignSpec;
use cets_serve::wal::{encode_frame, read_frames, WalRecord, WAL_MAGIC};
use proptest::prelude::*;

/// Small deterministic generator (splitmix64), the repo's idiom for
/// seed-driven structured fuzzing under the vendored proptest.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        match self.below(8) {
            // Hostile but *encodable* values (the WAL never stores NaN —
            // failures are typed records, not poisoned numbers).
            0 => 0.0,
            1 => -0.0,
            2 => 1e-300,
            3 => -1e300,
            4 => f64::MIN_POSITIVE,
            _ => (self.next() as f64 / u64::MAX as f64) * 2000.0 - 1000.0,
        }
    }

    fn name(&mut self) -> String {
        const POOL: &[&str] = &["a", "camp-1", "x.y_z", "A", "longish-campaign-name-0"];
        POOL[self.below(POOL.len())].to_string()
    }

    fn text(&mut self) -> String {
        const POOL: &[&str] = &[
            "boom",
            "",
            "crash at evaluation 8",
            "weird \"quoted\"\nmessage\twith\\escapes",
            "ünïcode 参数 🔥",
        ];
        POOL[self.below(POOL.len())].to_string()
    }

    fn unit_vec(&mut self) -> Vec<f64> {
        (0..1 + self.below(4))
            .map(|_| (self.next() % 1_000_000) as f64 / 1_000_000.0)
            .collect()
    }

    fn record(&mut self) -> WalRecord {
        match self.below(8) {
            0 => WalRecord::CampaignSubmitted {
                spec: CampaignSpec {
                    max_evals: 1 + self.below(50),
                    n_init: 1 + self.below(10),
                    flaky_rate: (self.below(5) as f64) / 10.0,
                    max_retries: self.below(4),
                    stages: if self.below(2) == 0 {
                        Vec::new()
                    } else {
                        vec![vec!["x0".into()], vec!["x1".into(), "x2".into()]]
                    },
                    ..CampaignSpec::new(self.name(), "sphere", self.next())
                },
            },
            1 => WalRecord::SpoolRejected {
                file: format!("{}.json", self.name()),
                reason: self.text(),
            },
            2 => WalRecord::EvalCompleted {
                id: self.name(),
                stage: self.below(4),
                idx: self.below(64),
                u: self.unit_vec(),
                y: self.f64(),
            },
            3 => WalRecord::EvalFailed {
                id: self.name(),
                stage: self.below(4),
                idx: self.below(64),
                u: self.unit_vec(),
                kind: ["crashed", "timeout", "non-finite", "invalid-config"][self.below(4)]
                    .to_string(),
                message: self.text(),
            },
            4 => WalRecord::StageAdvanced {
                id: self.name(),
                stage: self.below(4),
            },
            5 => WalRecord::CampaignRestarted {
                id: self.name(),
                attempt: 1 + self.below(4),
                reason: self.text(),
            },
            6 => WalRecord::CampaignFinished {
                id: self.name(),
                best_value: self.f64(),
                config_hash: format!("fnv1a:{:016x}", self.next()),
            },
            _ => WalRecord::CampaignFailed {
                id: self.name(),
                reason: self.text(),
            },
        }
    }

    fn records(&mut self, max: usize) -> Vec<WalRecord> {
        (0..self.below(max + 1)).map(|_| self.record()).collect()
    }
}

fn log_bytes(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for r in records {
        bytes.extend_from_slice(&encode_frame(r).unwrap());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_is_bit_exact(seed in 0u64..u64::MAX) {
        let records = Mix(seed).records(12);
        let bytes = log_bytes(&records);
        let (back, report) = read_frames(&bytes).unwrap();
        prop_assert_eq!(&back, &records);
        prop_assert!(report.truncated.is_none());
        prop_assert_eq!(report.valid_bytes, bytes.len() as u64);
    }

    #[test]
    fn any_prefix_truncation_recovers_a_consistent_prefix(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let records = {
            let mut r = rng.records(9);
            r.push(rng.record()); // at least one record
            r
        };
        let bytes = log_bytes(&records);
        let cut = rng.below(bytes.len() + 1);
        let truncated = &bytes[..cut];
        // Never panics, never errors on a self-written prefix (a cut
        // inside the magic reads as an empty log).
        let (back, report) = read_frames(truncated).unwrap();
        prop_assert!(back.len() <= records.len());
        prop_assert_eq!(&back[..], &records[..back.len()], "not a prefix");
        prop_assert!(report.valid_bytes as usize <= truncated.len());
        // A cut exactly at a frame boundary is indistinguishable from a
        // clean shorter log (nothing of the next record ever landed);
        // any mid-frame cut must be reported as a truncation.
        if cut >= WAL_MAGIC.len() {
            prop_assert_eq!(
                report.truncated.is_some(),
                (report.valid_bytes as usize) != cut,
                "truncation report disagrees with the consumed length"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_recovers_a_true_prefix(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let records = {
            let mut r = rng.records(9);
            r.push(rng.record());
            r
        };
        let mut bytes = log_bytes(&records);
        let pos = rng.below(bytes.len());
        let bit = rng.below(8);
        bytes[pos] ^= 1 << bit;
        match read_frames(&bytes) {
            // A flip in the magic makes it a foreign file: refused, never
            // repaired. Anywhere else must be recovered.
            Err(_) => prop_assert!(pos < WAL_MAGIC.len(), "refusal outside the magic"),
            Ok((back, report)) => {
                prop_assert!(back.len() <= records.len(), "fabricated records");
                // The payload checksum makes a silently *altered* record
                // impossible: whatever survives is the untouched prefix.
                prop_assert_eq!(&back[..], &records[..back.len()], "altered prefix");
                if pos >= WAL_MAGIC.len() {
                    prop_assert!(
                        report.truncated.is_some() || back.len() == records.len(),
                        "flip at {} lost records silently", pos
                    );
                }
            }
        }
    }

    #[test]
    fn arbitrary_junk_after_magic_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let mut bytes = WAL_MAGIC.to_vec();
        let n = rng.below(256);
        for _ in 0..n {
            bytes.push((rng.next() & 0xff) as u8);
        }
        // Junk can only decode to records by forging a valid length, a
        // matching 64-bit FNV checksum, *and* well-formed record JSON.
        let (back, _) = read_frames(&bytes).unwrap();
        prop_assert!(back.len() <= n);
    }
}
