//! # cets-synthetic
//!
//! The five 20-dimensional synthetic objective functions of the CETS paper
//! (Figure 1 + Table I), exposed as 4-routine [`Objective`]s.
//!
//! The common body is
//!
//! ```text
//! F(x0..x19) = ln|G1| + ln|G2| + ln|G3| + ln|G4|
//!
//! G1 = Σ_{i=0..3} (x_i − x_{i+1})²  + Σ_{i=0..4} A_i      (x0..x4)
//! G2 = Σ_{k=5..8} (x_k − x_{k+1})⁴  + Σ_{k=5..9} A_k      (x5..x9)
//! G3 = case-specific (Table I)                            (x10..x14 [+ x15..x19])
//! G4 = Σ_{v=15..19} 1/x_v + ε                             (x15..x19)
//!
//! A_i = 10·cos(2π·(x_i − 1)) + ε,   x_i ∈ [−50, 50]
//! ```
//!
//! where the five [`SyntheticCase`]s differ only in `G3` — from
//! [`SyntheticCase::Case1`] (Group 4 variables enter `G3` only through a
//! bounded cosine: *very low* influence) to [`SyntheticCase::Case5`]
//! (`Σ (x_u·x_v⁸)²`: *extremely high* influence). This is the paper's
//! instrument for validating that sensitivity analysis detects
//! inter-routine interdependence at graded strengths (its Table II).
//!
//! Two implementation notes, recorded in DESIGN.md:
//!
//! * the log transform is computed as `ln(1 + |·|)` so a raw group value of
//!   zero stays finite (the paper writes `log(|·|)`; the +1 only matters
//!   within ±1 of zero and preserves ordering);
//! * `ε` is seeded, configuration-keyed Gaussian noise
//!   ([`SyntheticFunction::with_noise`]), so experiments are reproducible
//!   while still exercising the noise-robustness the paper intends.

use cets_core::{Objective, Observation};
use cets_space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which Table-I variant of Group 3 is in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticCase {
    /// `Σ x_u + Σ cos(2π·x_v) + ε` — Group 4 influence: very low.
    Case1,
    /// `Σ x_u² + Σ x_v + ε` — low.
    Case2,
    /// `Σ x_u² + Σ x_v² + ε` — medium.
    Case3,
    /// `Σ (x_u · x_v⁴)² + ε` — high (non-orthogonal coupling).
    Case4,
    /// `Σ (x_u · x_v⁸)² + ε` — extremely high.
    Case5,
}

impl SyntheticCase {
    /// All five cases in paper order.
    pub fn all() -> [SyntheticCase; 5] {
        [
            SyntheticCase::Case1,
            SyntheticCase::Case2,
            SyntheticCase::Case3,
            SyntheticCase::Case4,
            SyntheticCase::Case5,
        ]
    }

    /// The paper's qualitative label for Group 4's influence on Group 3.
    pub fn group4_influence(&self) -> &'static str {
        match self {
            SyntheticCase::Case1 => "Very Low",
            SyntheticCase::Case2 => "Low",
            SyntheticCase::Case3 => "Medium",
            SyntheticCase::Case4 => "High",
            SyntheticCase::Case5 => "Extremely High",
        }
    }

    /// Display name ("Case 1"...).
    pub fn name(&self) -> String {
        format!("Case {}", self.index() + 1)
    }

    /// Zero-based index.
    pub fn index(&self) -> usize {
        match self {
            SyntheticCase::Case1 => 0,
            SyntheticCase::Case2 => 1,
            SyntheticCase::Case3 => 2,
            SyntheticCase::Case4 => 3,
            SyntheticCase::Case5 => 4,
        }
    }

    /// Whether the paper's methodology merges Groups 3 and 4 for this case
    /// at the 25% cut-off (Cases 3, 4, 5).
    pub fn expect_merge(&self) -> bool {
        matches!(
            self,
            SyntheticCase::Case3 | SyntheticCase::Case4 | SyntheticCase::Case5
        )
    }

    /// The Group 3 formula as printed in Table I.
    pub fn group3_formula(&self) -> &'static str {
        match self {
            SyntheticCase::Case1 => "Σ_{u=10..14} x_u + Σ_{v=15..19} cos(2π·x_v) + ε",
            SyntheticCase::Case2 => "Σ_{u=10..14} x_u² + Σ_{v=15..19} x_v + ε",
            SyntheticCase::Case3 => "Σ_{u=10..14} x_u² + Σ_{v=15..19} x_v² + ε",
            SyntheticCase::Case4 => "Σ_{u,v} (x_u · x_v⁴)² + ε",
            SyntheticCase::Case5 => "Σ_{u,v} (x_u · x_v⁸)² + ε",
        }
    }
}

/// One synthetic objective instance.
#[derive(Debug, Clone)]
pub struct SyntheticFunction {
    case: SyntheticCase,
    space: SearchSpace,
    noise_sigma: f64,
    seed: u64,
    raw_routines: bool,
}

impl SyntheticFunction {
    /// Build with the paper's domain (`x_i ∈ [−50, 50]`), noise σ = 0.1 and
    /// seed 0.
    pub fn new(case: SyntheticCase) -> Self {
        let mut b = SearchSpace::builder();
        for i in 0..20 {
            b = b.real(format!("x{i}"), -50.0, 50.0);
        }
        SyntheticFunction {
            case,
            space: b.build(),
            noise_sigma: 0.1,
            seed: 0,
            raw_routines: false,
        }
    }

    /// Override the noise magnitude (0 disables noise entirely).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Report per-routine observables on the **raw** (pre-log) scale:
    /// `1 + |G_k|` instead of `ln(1 + |G_k|)`. The total stays the paper's
    /// log-sum either way.
    ///
    /// The paper's Table II variability percentages (up to ~120%) are on
    /// this raw scale — the log compresses relative variability by roughly
    /// an order of magnitude — so the sensitivity/DAG *analysis* phase uses
    /// the raw view (where the paper's 25% cut-off is meaningful), while
    /// search *execution* minimizes the log-scale objective.
    pub fn as_raw(mut self) -> Self {
        self.raw_routines = true;
        self
    }

    /// Override the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The case this instance implements.
    pub fn case(&self) -> SyntheticCase {
        self.case
    }

    /// Parameter→routine ownership, as the paper assigns them: `x0..x4` to
    /// G1, `x5..x9` to G2, `x10..x14` to G3, `x15..x19` to G4.
    pub fn owners() -> Vec<(String, String)> {
        let mut v = Vec::with_capacity(20);
        for i in 0..20 {
            let g = match i {
                0..=4 => "G1",
                5..=9 => "G2",
                10..=14 => "G3",
                _ => "G4",
            };
            v.push((format!("x{i}"), g.to_string()));
        }
        v
    }

    /// [`SyntheticFunction::owners`] with borrowed strings, as
    /// [`cets_core::Methodology::analyze`] expects.
    pub fn owner_pairs(owners: &[(String, String)]) -> Vec<(&str, &str)> {
        owners
            .iter()
            .map(|(p, r)| (p.as_str(), r.as_str()))
            .collect()
    }

    /// Raw (pre-log) group values without noise — exposed for tests and for
    /// verifying the experiment harness against hand computations.
    pub fn raw_groups(&self, x: &[f64]) -> [f64; 4] {
        let a = |xi: f64| 10.0 * (2.0 * std::f64::consts::PI * (xi - 1.0)).cos();
        let g1: f64 = (0..4).map(|i| (x[i] - x[i + 1]).powi(2)).sum::<f64>()
            + (0..5).map(|i| a(x[i])).sum::<f64>();
        let g2: f64 = (5..9).map(|k| (x[k] - x[k + 1]).powi(4)).sum::<f64>()
            + (5..10).map(|k| a(x[k])).sum::<f64>();
        let g3: f64 = match self.case {
            SyntheticCase::Case1 => {
                (10..15).map(|u| x[u]).sum::<f64>()
                    + (15..20)
                        .map(|v| (2.0 * std::f64::consts::PI * x[v]).cos())
                        .sum::<f64>()
            }
            SyntheticCase::Case2 => {
                (10..15).map(|u| x[u] * x[u]).sum::<f64>() + (15..20).map(|v| x[v]).sum::<f64>()
            }
            SyntheticCase::Case3 => {
                (10..15).map(|u| x[u] * x[u]).sum::<f64>()
                    + (15..20).map(|v| x[v] * x[v]).sum::<f64>()
            }
            SyntheticCase::Case4 => (10..15)
                .zip(15..20)
                .map(|(u, v)| (x[u] * x[v].powi(4)).powi(2))
                .sum::<f64>(),
            SyntheticCase::Case5 => (10..15)
                .zip(15..20)
                .map(|(u, v)| (x[u] * x[v].powi(8)).powi(2))
                .sum::<f64>(),
        };
        // 1/x guarded against exact zeros (measure-zero but reachable via
        // bin-center variations).
        let g4: f64 = (15..20)
            .map(|v| {
                let xv = x[v];
                let safe = if xv.abs() < 1e-9 {
                    1e-9_f64.copysign(if xv == 0.0 { 1.0 } else { xv })
                } else {
                    xv
                };
                1.0 / safe
            })
            .sum::<f64>();
        [g1, g2, g3, g4]
    }

    /// Deterministic, configuration-keyed noise draws (one per group).
    fn noise(&self, x: &[f64]) -> [f64; 4] {
        if self.noise_sigma == 0.0 {
            return [0.0; 4];
        }
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &xi in x {
            h = h
                .rotate_left(13)
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(xi.to_bits());
        }
        let mut rng = StdRng::seed_from_u64(h);
        let mut out = [0.0; 4];
        for o in &mut out {
            *o = cets_core::normal::sample(&mut rng, 0.0, self.noise_sigma);
        }
        out
    }
}

impl Objective for SyntheticFunction {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn routine_names(&self) -> Vec<String> {
        vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()]
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
        let raw = self.raw_groups(&x);
        let eps = self.noise(&x);
        let log_groups: Vec<f64> = raw
            .iter()
            .zip(&eps)
            .map(|(&g, &e)| (1.0 + (g + e).abs()).ln())
            .collect();
        let total = log_groups.iter().sum();
        let routines = if self.raw_routines {
            raw.iter()
                .zip(&eps)
                .map(|(&g, &e)| 1.0 + (g + e).abs())
                .collect()
        } else {
            log_groups
        };
        Observation { total, routines }
    }

    fn default_config(&self) -> Config {
        // A fixed, spread-out default — deliberately *not* aligned (equal
        // x_i zero out the chain terms and are near-optimal), so it plays
        // the role of an honest untuned starting point. Values avoid 0
        // (for 1/x) and are deterministic.
        let units: Vec<f64> = (0..self.space.dim())
            .map(|i| 0.15 + 0.7 * (((i * 37 + 11) % 20) as f64 / 19.0))
            .collect();
        // Arity matches by construction, so decode cannot fail.
        self.space.decode(&units).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_core::{routine_sensitivity, VariationPolicy};

    fn x_const(v: f64) -> Vec<f64> {
        vec![v; 20]
    }

    #[test]
    fn space_matches_paper() {
        let f = SyntheticFunction::new(SyntheticCase::Case1);
        assert_eq!(f.space().dim(), 20);
        assert_eq!(f.space().names()[0], "x0");
        assert_eq!(f.space().names()[19], "x19");
        assert_eq!(f.routine_names(), vec!["G1", "G2", "G3", "G4"]);
    }

    #[test]
    fn raw_groups_hand_checked_case3() {
        let f = SyntheticFunction::new(SyntheticCase::Case3).with_noise(0.0);
        // All x = 1: chains are 0, A_i = 10·cos(0) = 10 each.
        let g = f.raw_groups(&x_const(1.0));
        assert!((g[0] - 50.0).abs() < 1e-9, "G1 {}", g[0]);
        assert!((g[1] - 50.0).abs() < 1e-9, "G2 {}", g[1]);
        // G3 = 5·1 + 5·1 = 10.
        assert!((g[2] - 10.0).abs() < 1e-9, "G3 {}", g[2]);
        // G4 = 5·1 = 5.
        assert!((g[3] - 5.0).abs() < 1e-9, "G4 {}", g[3]);
    }

    #[test]
    fn raw_groups_hand_checked_case1_case2_case5() {
        let ones = x_const(1.0);
        // Case 1: G3 = Σ x_u + Σ cos(2π x_v) = 5·1 + 5·cos(2π) = 10.
        let f1 = SyntheticFunction::new(SyntheticCase::Case1).with_noise(0.0);
        assert!((f1.raw_groups(&ones)[2] - 10.0).abs() < 1e-9);
        // Case 2: G3 = Σ x_u² + Σ x_v = 5 + 5 = 10.
        let f2 = SyntheticFunction::new(SyntheticCase::Case2).with_noise(0.0);
        assert!((f2.raw_groups(&ones)[2] - 10.0).abs() < 1e-9);
        // Case 5: pairs (x_u · x_v⁸)² with x=1 -> 5·1 = 5; with x15=2:
        // (1·2⁸)² = 65536 + 4·1.
        let f5 = SyntheticFunction::new(SyntheticCase::Case5).with_noise(0.0);
        assert!((f5.raw_groups(&ones)[2] - 5.0).abs() < 1e-9);
        let mut x = ones.clone();
        x[15] = 2.0;
        assert!((f5.raw_groups(&x)[2] - 65540.0).abs() < 1e-6);
    }

    #[test]
    fn raw_groups_case4_coupling() {
        let f = SyntheticFunction::new(SyntheticCase::Case4).with_noise(0.0);
        let mut x = x_const(1.0);
        // (x10 · x15⁴)² with x10=2, x15=2: (2·16)² = 1024; other pairs (1·1)²=1.
        x[10] = 2.0;
        x[15] = 2.0;
        let g = f.raw_groups(&x);
        assert!((g[2] - (1024.0 + 4.0)).abs() < 1e-9, "G3 {}", g[2]);
    }

    #[test]
    fn evaluate_is_log_of_groups() {
        let f = SyntheticFunction::new(SyntheticCase::Case1).with_noise(0.0);
        let cfg = f.space().decode(&[0.51; 20]).unwrap();
        let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
        let raw = f.raw_groups(&x);
        let obs = f.evaluate(&cfg);
        for (r, o) in raw.iter().zip(&obs.routines) {
            assert!(((1.0 + r.abs()).ln() - o).abs() < 1e-12);
        }
        assert!((obs.total - obs.routines.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_per_config() {
        let f = SyntheticFunction::new(SyntheticCase::Case2);
        let cfg = f.default_config();
        let a = f.evaluate(&cfg);
        let b = f.evaluate(&cfg);
        assert_eq!(a, b);
        // Different seeds give different noise.
        let g = SyntheticFunction::new(SyntheticCase::Case2).with_seed(99);
        assert_ne!(a, g.evaluate(&cfg));
        // Different configs give different noise.
        let cfg2 = f.space().decode(&[0.4; 20]).unwrap();
        assert_ne!(f.evaluate(&cfg2), a);
    }

    #[test]
    fn zero_x_does_not_blow_up_g4() {
        let f = SyntheticFunction::new(SyntheticCase::Case1).with_noise(0.0);
        let mut x = x_const(1.0);
        x[15] = 0.0;
        let g = f.raw_groups(&x);
        assert!(g[3].is_finite());
        let obs = f.evaluate(&f.space().decode(&[0.5; 20]).unwrap());
        assert!(obs.total.is_finite());
    }

    #[test]
    fn owners_cover_all_params() {
        let owners = SyntheticFunction::owners();
        assert_eq!(owners.len(), 20);
        assert_eq!(owners[0], ("x0".to_string(), "G1".to_string()));
        assert_eq!(owners[7].1, "G2");
        assert_eq!(owners[12].1, "G3");
        assert_eq!(owners[19].1, "G4");
    }

    #[test]
    fn case_metadata() {
        assert_eq!(SyntheticCase::all().len(), 5);
        assert_eq!(SyntheticCase::Case3.name(), "Case 3");
        assert_eq!(SyntheticCase::Case5.group4_influence(), "Extremely High");
        assert!(!SyntheticCase::Case1.expect_merge());
        assert!(SyntheticCase::Case3.expect_merge());
        assert!(SyntheticCase::Case1.group3_formula().contains("cos"));
    }

    /// The paper's core claim in miniature (Table II): Group 4 variables'
    /// influence on Group 3's output increases monotonically with the case
    /// index, while Group 1/2 stay uninfluenced by Group 4.
    #[test]
    fn sensitivity_detects_graded_interdependence() {
        let mut g4_on_g3 = Vec::new();
        for case in SyntheticCase::all() {
            let f = SyntheticFunction::new(case).with_noise(0.0);
            let baseline = f.space().decode(&[0.6; 20]).unwrap();
            let scores = routine_sensitivity(
                &f,
                &baseline,
                &VariationPolicy::Multiplicative {
                    count: 20,
                    factor: 0.1,
                },
            )
            .unwrap();
            // Mean influence of x15..x19 on G3.
            let mean_cross: f64 = (15..20)
                .map(|p| scores.score_by_name(&format!("x{p}"), "G3").unwrap())
                .sum::<f64>()
                / 5.0;
            // G1 must not be influenced by Group 4 variables.
            let g1_cross: f64 = (15..20)
                .map(|p| scores.score_by_name(&format!("x{p}"), "G1").unwrap())
                .sum::<f64>()
                / 5.0;
            assert!(g1_cross < 0.01, "{case:?}: G4→G1 leak {g1_cross}");
            g4_on_g3.push(mean_cross);
        }
        // Case 1 cross-influence is tiny; Cases 3-5 substantial; the
        // grading is monotone non-decreasing with the case index.
        assert!(
            g4_on_g3[0] < 0.05,
            "Case 1 cross-influence too high: {g4_on_g3:?}"
        );
        assert!(
            g4_on_g3[2] > 0.05,
            "Case 3 cross-influence too low: {g4_on_g3:?}"
        );
        for w in g4_on_g3.windows(2) {
            assert!(w[1] >= w[0] * 0.9, "grading not monotone: {g4_on_g3:?}");
        }
    }

    /// On the raw routine scale (the paper's Table II view), Case 3's
    /// Group 4→Group 3 influence clears the 25% cut-off that the paper uses
    /// to decide the merge, while Case 1's stays far below it.
    #[test]
    fn raw_scale_matches_paper_cutoff() {
        let cross = |case: SyntheticCase| -> f64 {
            let f = SyntheticFunction::new(case).with_noise(0.0).as_raw();
            let baseline = f.space().decode(&[0.6; 20]).unwrap();
            let scores = routine_sensitivity(
                &f,
                &baseline,
                &VariationPolicy::Multiplicative {
                    count: 20,
                    factor: 0.1,
                },
            )
            .unwrap();
            (15..20)
                .map(|p| scores.score_by_name(&format!("x{p}"), "G3").unwrap())
                .sum::<f64>()
                / 5.0
        };
        assert!(cross(SyntheticCase::Case1) < 0.25);
        assert!(cross(SyntheticCase::Case3) > 0.25);
        assert!(cross(SyntheticCase::Case5) > 0.25);
    }

    #[test]
    fn raw_and_log_totals_agree() {
        let log = SyntheticFunction::new(SyntheticCase::Case4);
        let raw = SyntheticFunction::new(SyntheticCase::Case4).as_raw();
        let cfg = log.default_config();
        let a = log.evaluate(&cfg);
        let b = raw.evaluate(&cfg);
        assert_eq!(a.total, b.total);
        assert_ne!(a.routines, b.routines);
        // raw routines are the exp of log routines (shifted by the +1).
        for (l, r) in a.routines.iter().zip(&b.routines) {
            assert!((l.exp() - r).abs() / r < 1e-12, "{l} vs {r}");
        }
    }
}
