//! Property-based tests for the synthetic objective functions.

use cets_core::Objective;
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use proptest::prelude::*;

fn cases() -> impl Strategy<Value = SyntheticCase> {
    prop_oneof![
        Just(SyntheticCase::Case1),
        Just(SyntheticCase::Case2),
        Just(SyntheticCase::Case3),
        Just(SyntheticCase::Case4),
        Just(SyntheticCase::Case5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evaluate_always_finite(case in cases(), u in proptest::collection::vec(0.0..1.0f64, 20)) {
        let f = SyntheticFunction::new(case);
        let cfg = f.space().decode(&u).unwrap();
        let obs = f.evaluate(&cfg);
        prop_assert!(obs.total.is_finite());
        prop_assert_eq!(obs.routines.len(), 4);
        for r in &obs.routines {
            prop_assert!(r.is_finite());
            // ln(1 + |.|) >= 0.
            prop_assert!(*r >= 0.0);
        }
    }

    #[test]
    fn total_is_sum_of_log_routines(case in cases(), u in proptest::collection::vec(0.0..1.0f64, 20)) {
        let f = SyntheticFunction::new(case).with_noise(0.0);
        let cfg = f.space().decode(&u).unwrap();
        let obs = f.evaluate(&cfg);
        let sum: f64 = obs.routines.iter().sum();
        prop_assert!((obs.total - sum).abs() < 1e-9);
    }

    #[test]
    fn evaluation_deterministic(case in cases(), u in proptest::collection::vec(0.0..1.0f64, 20), seed in 0u64..100) {
        let f = SyntheticFunction::new(case).with_seed(seed);
        let cfg = f.space().decode(&u).unwrap();
        prop_assert_eq!(f.evaluate(&cfg), f.evaluate(&cfg));
    }

    #[test]
    fn g1_g2_independent_of_group34_vars(
        case in cases(),
        u in proptest::collection::vec(0.05..0.95f64, 20),
        delta in proptest::collection::vec(0.0..1.0f64, 10),
    ) {
        // Changing x10..x19 never changes G1 or G2 (noise off).
        let f = SyntheticFunction::new(case).with_noise(0.0);
        let cfg_a = f.space().decode(&u).unwrap();
        let mut u2 = u.clone();
        u2[10..20].copy_from_slice(&delta);
        let cfg_b = f.space().decode(&u2).unwrap();
        let a = f.evaluate(&cfg_a);
        let b = f.evaluate(&cfg_b);
        prop_assert_eq!(a.routines[0], b.routines[0]);
        prop_assert_eq!(a.routines[1], b.routines[1]);
    }

    #[test]
    fn g4_depends_only_on_its_vars(
        case in cases(),
        u in proptest::collection::vec(0.05..0.95f64, 20),
        delta in proptest::collection::vec(0.0..1.0f64, 15),
    ) {
        // Changing x0..x14 never changes G4.
        let f = SyntheticFunction::new(case).with_noise(0.0);
        let cfg_a = f.space().decode(&u).unwrap();
        let mut u2 = u.clone();
        u2[..15].copy_from_slice(&delta);
        let cfg_b = f.space().decode(&u2).unwrap();
        prop_assert_eq!(f.evaluate(&cfg_a).routines[3], f.evaluate(&cfg_b).routines[3]);
    }

    #[test]
    fn group4_vars_do_affect_g3_in_coupled_cases(
        u in proptest::collection::vec(0.2..0.8f64, 20),
        bump in 0.05..0.2f64,
    ) {
        // For Case 4/5 a change in x15 must move G3 (noise off) whenever
        // x10 and x15 are nonzero (guaranteed by the 0.2..0.8 range: x in
        // [-30, 30] \ {0}... strictly x=0 occurs at u=0.5 only).
        for case in [SyntheticCase::Case4, SyntheticCase::Case5] {
            let f = SyntheticFunction::new(case).with_noise(0.0);
            let mut u2 = u.clone();
            u2[15] = (u2[15] + bump).min(0.95);
            // Keep x10 and x15 away from zero.
            let mut ua = u.clone();
            ua[10] = 0.8;
            ua[15] = 0.7;
            let mut ub = ua.clone();
            ub[15] = 0.9;
            let ca = f.space().decode(&ua).unwrap();
            let cb = f.space().decode(&ub).unwrap();
            prop_assert_ne!(f.evaluate(&ca).routines[2], f.evaluate(&cb).routines[2]);
        }
    }

    #[test]
    fn raw_view_preserves_total(case in cases(), u in proptest::collection::vec(0.0..1.0f64, 20)) {
        let log_f = SyntheticFunction::new(case);
        let raw_f = SyntheticFunction::new(case).as_raw();
        let cfg = log_f.space().decode(&u).unwrap();
        prop_assert_eq!(log_f.evaluate(&cfg).total, raw_f.evaluate(&cfg).total);
    }

    #[test]
    fn noise_perturbation_bounded(case in cases(), u in proptest::collection::vec(0.1..0.9f64, 20)) {
        // With sigma = 0.1 noise, group values move but stay finite and
        // close to the noise-free value in log space.
        let clean = SyntheticFunction::new(case).with_noise(0.0);
        let noisy = SyntheticFunction::new(case).with_noise(0.1);
        let cfg = clean.space().decode(&u).unwrap();
        let a = clean.evaluate(&cfg).total;
        let b = noisy.evaluate(&cfg).total;
        prop_assert!(b.is_finite());
        // ln(1+|g+e|) differs from ln(1+|g|) by at most ~|e| = O(1).
        prop_assert!((a - b).abs() < 5.0, "{a} vs {b}");
    }
}
