//! Property-based tests for kernels, GP regression, the sparse (SGPR)
//! tier and Nelder–Mead.

use cets_gp::{
    nelder_mead, Gp, GpConfig, Kernel, KernelKind, NelderMeadOptions, ParConfig, SparseGp,
    Surrogate, SurrogateTier, TierPolicy,
};
use proptest::prelude::*;

fn kinds() -> impl Strategy<Value = KernelKind> {
    prop_oneof![
        Just(KernelKind::SquaredExp),
        Just(KernelKind::Matern32),
        Just(KernelKind::Matern52),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_symmetric_and_bounded(
        kind in kinds(),
        a in proptest::collection::vec(0.0..1.0f64, 3),
        b in proptest::collection::vec(0.0..1.0f64, 3),
        var in 0.1..5.0f64,
        ls in 0.05..2.0f64,
    ) {
        let k = Kernel::with_params(kind, var, vec![ls; 3]);
        let kab = k.eval(&a, &b);
        let kba = k.eval(&b, &a);
        prop_assert!((kab - kba).abs() < 1e-12);
        // 0 < k(a,b) <= k(x,x) = var for stationary kernels.
        prop_assert!(kab > 0.0);
        prop_assert!(kab <= var + 1e-12);
        prop_assert!((k.eval(&a, &a) - var).abs() < 1e-12);
    }

    #[test]
    fn kernel_decreases_with_distance(
        kind in kinds(),
        x in 0.0..0.4f64,
        d1 in 0.01..0.3f64,
        d2 in 0.31..0.6f64,
    ) {
        let k = Kernel::new(kind, 1);
        prop_assert!(k.eval(&[x], &[x + d1]) > k.eval(&[x], &[x + d2]));
    }

    #[test]
    fn log_params_roundtrip(
        kind in kinds(),
        var in 0.1..10.0f64,
        ls in proptest::collection::vec(0.05..5.0f64, 1..4),
    ) {
        let k = Kernel::with_params(kind, var, ls.clone());
        let k2 = Kernel::from_log_params(kind, &k.to_log_params());
        prop_assert!((k2.variance() - var).abs() < 1e-9);
        for (a, b) in k2.lengthscales().iter().zip(&ls) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gp_variance_nonnegative_everywhere(
        probe in proptest::collection::vec(0.0..1.0f64, 2),
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..15)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] + v[1]).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, 2), 1e-6).unwrap();
        let (_, var) = gp.predict(&probe);
        prop_assert!(var >= 0.0);
    }

    #[test]
    fn gp_interpolates_with_tiny_noise(seed in 0u64..100) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Well-separated points so the kernel matrix is far from singular.
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0 + 0.01 * rng.random::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|v| (2.0 * v[0]).sin()).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-9).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            let m = gp.predict_mean(xi);
            prop_assert!((m - yi).abs() < 1e-2, "at {xi:?}: {m} vs {yi}");
        }
    }

    #[test]
    fn gp_prediction_scales_with_targets(scale in 0.5..5.0f64, shift in -3.0..3.0f64) {
        // GP is equivariant under affine target transforms (thanks to
        // internal standardization): predict(a*y+b) == a*predict(y)+b.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).cos()).collect();
        let y2: Vec<f64> = y.iter().map(|&v| scale * v + shift).collect();
        let k = Kernel::new(KernelKind::Matern52, 1);
        let gp1 = Gp::fit(&x, &y, k.clone(), 1e-6).unwrap();
        let gp2 = Gp::fit(&x, &y2, k, 1e-6).unwrap();
        let p = [0.37];
        let (m1, v1) = gp1.predict(&p);
        let (m2, v2) = gp2.predict(&p);
        prop_assert!((m2 - (scale * m1 + shift)).abs() < 1e-6, "{m2} vs {}", scale * m1 + shift);
        prop_assert!((v2 - scale * scale * v1).abs() < 1e-6 * (1.0 + v2));
    }

    #[test]
    fn predict_batch_matches_pointwise(
        seed in 0u64..200,
        m in 1usize..40,
        kind in kinds(),
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..20)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (4.0 * v[0]).sin() + v[1] * v[2]).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(kind, 3), 1e-6).unwrap();
        let probes: Vec<Vec<f64>> = (0..m)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let batch = gp.predict_batch(&probes);
        prop_assert_eq!(batch.len(), m);
        for (p, &(bm, bv)) in probes.iter().zip(&batch) {
            // The batch path fuses 1/ℓ² weights where the scalar path
            // divides by ℓ before squaring — ulp-level agreement only.
            let (sm, sv) = gp.predict(p);
            prop_assert!((bm - sm).abs() <= 1e-9 * (1.0 + sm.abs()), "mean {bm} vs {sm}");
            prop_assert!((bv - sv).abs() <= 1e-9 * (1.0 + sv.abs()), "var {bv} vs {sv}");
        }
    }

    #[test]
    fn predict_batch_is_chunk_invariant(seed in 0u64..200, split in 1usize..15) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..18)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] - 2.0 * v[1]).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, 2), 1e-6).unwrap();
        let probes: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let split = split.min(probes.len());
        let whole = gp.predict_batch(&probes);
        let mut parts = gp.predict_batch(&probes[..split]);
        parts.extend(gp.predict_batch(&probes[split..]));
        // Bit-identical, not merely close: the parallel acquisition
        // scorer's determinism contract rests on this.
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn surrogate_exact_tier_bit_identical_to_gp_train(seed in 0u64..50, n in 5usize..25) {
        // The tier-layer oracle: below the Auto threshold, Surrogate::train
        // must be Gp::train — not merely close, BIT-identical — so enabling
        // the tier layer cannot perturb any existing small-N search.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin() + v[1]).collect();
        let cfg = GpConfig::default(); // TierPolicy::Auto { threshold: 512 }
        let sur = Surrogate::train(&x, &y, &cfg).unwrap();
        prop_assert_eq!(sur.tier(), SurrogateTier::Exact);
        let gp = Gp::train(&x, &y, &cfg).unwrap();
        prop_assert_eq!(sur.evidence(), gp.lml());
        for _ in 0..3 {
            let probe = vec![rng.random::<f64>(), rng.random::<f64>()];
            prop_assert_eq!(sur.predict(&probe), gp.predict(&probe));
        }
    }

    #[test]
    fn sparse_with_full_inducing_set_matches_exact(seed in 0u64..100, kind in kinds()) {
        // Convergence as m → N: with Z = X the variational bound is tight,
        // so SGPR reproduces the exact posterior and the ELBO meets the LML.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 18;
        // Separated along dim 0 so the inducing Gram matrix stays far from
        // singular for every seed.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 + 0.01 * rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (4.0 * v[0]).sin() + 0.5 * v[1]).collect();
        let kernel = Kernel::with_params(kind, 1.0, vec![0.4, 0.4]);
        let noise = 1e-3;
        let exact = Gp::fit(&x, &y, kernel.clone(), noise).unwrap();
        let sparse = SparseGp::fit(&x, &y, x.clone(), kernel, noise).unwrap();
        for _ in 0..4 {
            let probe = vec![rng.random::<f64>(), rng.random::<f64>()];
            let (me, ve) = exact.predict(&probe);
            let (ms, vs) = sparse.predict(&probe);
            prop_assert!((me - ms).abs() < 5e-4, "mean {me} vs {ms}");
            prop_assert!((ve - vs).abs() < 5e-4, "var {ve} vs {vs}");
        }
        prop_assert!(
            (exact.lml() - sparse.elbo()).abs() < 5e-3,
            "lml {} vs elbo {}", exact.lml(), sparse.elbo()
        );
        // And with a proper subset the bound stays a lower bound.
        let idx = cets_gp::select_inducing(&x, 6);
        let z: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let sub = SparseGp::fit(&x, &y, z, exact.kernel().clone(), noise).unwrap();
        prop_assert!(sub.elbo() <= exact.lml() + 1e-6);
    }

    #[test]
    fn sparse_train_trace_is_monotone_nondecreasing(seed in 0u64..60) {
        // The optimizer's running-best ELBO never decreases, and its final
        // value is the ELBO of the model actually returned.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin() + v[1] * v[1]).collect();
        let cfg = GpConfig {
            tier: TierPolicy::Sparse,
            seed,
            ..Default::default()
        };
        let (sp, trace) = SparseGp::train_traced(&x, &y, &cfg).unwrap();
        prop_assert!(!trace.is_empty());
        for w in trace.windows(2) {
            prop_assert!(w[1] >= w[0], "ELBO trace decreased: {} -> {}", w[0], w[1]);
        }
        let last = trace[trace.len() - 1];
        prop_assert!(last.is_finite());
        prop_assert!(
            (last - sp.elbo()).abs() <= 1e-9 * (1.0 + last.abs()),
            "trace best {last} vs fitted elbo {}", sp.elbo()
        );
    }

    #[test]
    fn nelder_mead_never_worse_than_start(
        x0 in proptest::collection::vec(-5.0..5.0f64, 1..4),
        c in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let f = move |v: &[f64]| -> f64 {
            v.iter()
                .enumerate()
                .map(|(i, &x)| (x - c[i % c.len()]).powi(2))
                .sum()
        };
        let f0 = f(&x0);
        let (_, fx) = nelder_mead(&f, &x0, &NelderMeadOptions::default());
        prop_assert!(fx <= f0 + 1e-12);
    }

    #[test]
    fn nelder_mead_finds_shifted_quadratic(c in proptest::collection::vec(-3.0..3.0f64, 2)) {
        let cc = c.clone();
        let f = move |v: &[f64]| (v[0] - cc[0]).powi(2) + (v[1] - cc[1]).powi(2);
        let (x, _) = nelder_mead(&f, &[0.0, 0.0], &NelderMeadOptions {
            max_evals: 2000,
            ..Default::default()
        });
        prop_assert!((x[0] - c[0]).abs() < 1e-2);
        prop_assert!((x[1] - c[1]).abs() < 1e-2);
    }
}

// Full training runs are expensive (six per case); a handful of random
// seeds is plenty to catch a determinism break, which would be systematic
// rather than seed-specific.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_gp_train_is_bit_identical(seed in 0u64..30) {
        // The deterministic-parallelism contract: Gp::train at any worker
        // count returns BIT-identical hyperparameters and predictions —
        // restarts are pre-seeded, partitions are fixed, and the winner
        // fold runs in ascending restart order. n = 3 exercises inputs
        // smaller than every chunk size.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for n in [3usize, 30] {
            let x: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
                .collect();
            let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin() + v[1]).collect();
            let base_cfg = GpConfig { seed, par: ParConfig::fixed(1), ..Default::default() };
            let base = Gp::train(&x, &y, &base_cfg).unwrap();
            let probe = vec![rng.random::<f64>(), rng.random::<f64>()];
            for t in [2usize, 4] {
                let cfg = GpConfig { par: ParConfig::fixed(t), ..base_cfg.clone() };
                let gp = Gp::train(&x, &y, &cfg).unwrap();
                prop_assert_eq!(gp.lml(), base.lml(), "n={} t={}", n, t);
                prop_assert_eq!(gp.noise(), base.noise());
                prop_assert_eq!(gp.kernel().lengthscales(), base.kernel().lengthscales());
                prop_assert_eq!(gp.predict(&probe), base.predict(&probe));
            }
        }
    }

    #[test]
    fn parallel_sparse_train_is_bit_identical(seed in 0u64..12) {
        // Same contract for the sparse tier, including the optimizer's
        // ELBO trace (rebuilt from per-restart sequences in restart order).
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin() + v[1] * v[1]).collect();
        let base_cfg = GpConfig {
            tier: TierPolicy::Sparse,
            seed,
            par: ParConfig::fixed(1),
            ..Default::default()
        };
        let (base, base_trace) = SparseGp::train_traced(&x, &y, &base_cfg).unwrap();
        let probe = vec![rng.random::<f64>(), rng.random::<f64>()];
        for t in [2usize, 4] {
            let cfg = GpConfig { par: ParConfig::fixed(t), ..base_cfg.clone() };
            let (sp, trace) = SparseGp::train_traced(&x, &y, &cfg).unwrap();
            prop_assert_eq!(sp.elbo(), base.elbo(), "t={}", t);
            prop_assert_eq!(sp.noise(), base.noise());
            prop_assert_eq!(sp.kernel().lengthscales(), base.kernel().lengthscales());
            prop_assert_eq!(sp.predict(&probe), base.predict(&probe));
            prop_assert_eq!(trace, base_trace.clone());
        }
    }
}
