//! # cets-gp
//!
//! Gaussian-process regression — the surrogate model behind the CETS
//! Bayesian-optimization engine (the role GPTune's models play in the
//! paper).
//!
//! * [`Kernel`] — squared-exponential and Matérn 3/2 / 5/2 covariance
//!   functions, all with ARD (per-dimension) length-scales;
//! * [`Gp`] — exact GP regression: Cholesky fit (the `O(N^3)` cost the
//!   paper's search-time analysis hinges on), predictive mean/variance, log
//!   marginal likelihood;
//! * [`GpConfig`] / [`Gp::train`] — maximum-likelihood hyperparameter
//!   selection via multi-start Nelder–Mead in log-space;
//! * [`SparseGp`] / [`Surrogate`] — the inducing-point (SGPR) tier and the
//!   tier-selection layer over it: `O(N·m²)` training against the
//!   variational ELBO, `O(m)`/`O(m²)` predictions, automatic escalation
//!   past a configurable training-set size ([`TierPolicy`]);
//! * [`nelder_mead`] — the derivative-free simplex optimizer, exposed for
//!   reuse.
//!
//! Targets are standardized internally (zero mean, unit variance) so kernel
//! hyperparameter priors stay scale-free; predictions are returned in the
//! original units.
//!
//! ```
//! use cets_gp::{Gp, GpConfig};
//!
//! // y = sin(3x) on [0,1]
//! let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin()).collect();
//! let gp = Gp::train(&x, &y, &GpConfig::default()).unwrap();
//! let (mean, var) = gp.predict(&[0.5]);
//! assert!((mean - (1.5f64).sin()).abs() < 0.05);
//! assert!(var >= 0.0);
//! ```

mod gp;
mod kernel;
mod optimize;
mod sparse;

pub use cets_linalg::{ParConfig, Threads};
pub use gp::{Gp, GpConfig, APPEND_CONDITION_LIMIT};
pub use kernel::{Kernel, KernelKind};
pub use optimize::{nelder_mead, NelderMeadOptions};
pub use sparse::{select_inducing, SparseGp, SparseOptions, Surrogate, SurrogateTier, TierPolicy};

/// Errors from GP fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Inconsistent or empty training data.
    BadShape(String),
    /// The kernel matrix could not be factorized even with jitter.
    Factorization(String),
    /// Hyperparameter optimization failed to produce any usable model.
    TrainingFailed(String),
    /// Training data contained a NaN or infinite value. A GP conditioned on
    /// non-finite observations silently poisons every prediction, so the
    /// input is rejected outright; callers should screen or impute failed
    /// evaluations before training (see `cets-core`'s failure policy).
    NonFinite(String),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::BadShape(m) => write!(f, "bad shape: {m}"),
            GpError::Factorization(m) => write!(f, "factorization failed: {m}"),
            GpError::TrainingFailed(m) => write!(f, "training failed: {m}"),
            GpError::NonFinite(m) => write!(f, "non-finite training data: {m}"),
        }
    }
}

impl std::error::Error for GpError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GpError>;
