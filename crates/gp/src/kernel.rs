//! Covariance functions with ARD length-scales.

use cets_linalg::vecops;
use serde::{Deserialize, Serialize};

/// Which covariance family a [`Kernel`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Squared exponential (RBF): infinitely smooth; the default for the
    /// synthetic functions.
    SquaredExp,
    /// Matérn ν = 3/2: once-differentiable; robust for noisy HPC runtimes.
    Matern32,
    /// Matérn ν = 5/2: twice-differentiable; the usual BO default.
    Matern52,
}

/// A stationary ARD kernel `k(a, b) = σ² · g(r)` where
/// `r² = Σ ((a_i − b_i)/ℓ_i)²`.
///
/// Hyperparameters are the signal variance `σ²` and one length-scale per
/// input dimension. [`Kernel::to_log_params`] / [`Kernel::from_log_params`]
/// round-trip them through the unconstrained log-space vector that the
/// Nelder–Mead optimizer works on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    kind: KernelKind,
    variance: f64,
    lengthscales: Vec<f64>,
}

impl Kernel {
    /// A kernel with unit variance and all length-scales `0.3` (a sensible
    /// prior for inputs living in the unit cube).
    pub fn new(kind: KernelKind, dim: usize) -> Self {
        Kernel {
            kind,
            variance: 1.0,
            lengthscales: vec![0.3; dim],
        }
    }

    /// Construct with explicit hyperparameters. Panics on non-positive
    /// values (they are meaningless for stationary kernels).
    pub fn with_params(kind: KernelKind, variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(variance > 0.0, "kernel variance must be positive");
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "length-scales must be positive"
        );
        Kernel {
            kind,
            variance,
            lengthscales,
        }
    }

    /// Covariance family.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Signal variance σ².
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Per-dimension length-scales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Evaluate `k(a, b)`.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2 = vecops::weighted_sq_dist(a, b, &self.lengthscales);
        self.variance * self.profile(r2)
    }

    /// Evaluate `k` from a precomputed scaled squared distance
    /// `r² = Σ w_k (a_k − b_k)²` with `w_k` from
    /// [`Kernel::inv_sq_lengthscales`].
    ///
    /// This is the fused fast path of the GP hot loop: the caller hoists
    /// the per-dimension squared differences out of the O(hundreds) of
    /// likelihood evaluations per [`crate::Gp::train`] and reduces each
    /// kernel entry to one multiply-add pass plus this profile call. Note
    /// `w·d²` and `(d/ℓ)²` (what [`Kernel::eval`] computes) can differ in
    /// the last ulps — callers mixing both paths must not expect
    /// bit-identical covariances.
    #[inline]
    pub fn eval_r2(&self, r2: f64) -> f64 {
        self.variance * self.profile(r2)
    }

    /// Per-dimension weights `w_k = 1/ℓ_k²` for [`Kernel::eval_r2`].
    pub fn inv_sq_lengthscales(&self) -> Vec<f64> {
        self.lengthscales.iter().map(|&l| 1.0 / (l * l)).collect()
    }

    /// `k(x, x)` — for stationary kernels simply σ².
    pub fn diag_value(&self) -> f64 {
        self.variance
    }

    fn profile(&self, r2: f64) -> f64 {
        match self.kind {
            KernelKind::SquaredExp => (-0.5 * r2).exp(),
            KernelKind::Matern32 => {
                let r = r2.sqrt();
                let s = 3.0_f64.sqrt() * r;
                (1.0 + s) * (-s).exp()
            }
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let s = 5.0_f64.sqrt() * r;
                (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }

    /// Pack `[ln σ², ln ℓ_1, ..., ln ℓ_d]` for unconstrained optimization.
    pub fn to_log_params(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(1 + self.dim());
        v.push(self.variance.ln());
        v.extend(self.lengthscales.iter().map(|l| l.ln()));
        v
    }

    /// Rebuild from the log-space vector produced by
    /// [`Kernel::to_log_params`]. Values are clamped to `[e^-8, e^8]` to
    /// keep the kernel matrix numerically sane during optimization.
    pub fn from_log_params(kind: KernelKind, params: &[f64]) -> Self {
        assert!(
            params.len() >= 2,
            "need at least variance + one lengthscale"
        );
        let clamp = |v: f64| v.clamp(-8.0, 8.0).exp();
        Kernel {
            kind,
            variance: clamp(params[0]),
            lengthscales: params[1..].iter().map(|&p| clamp(p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_covariance_is_variance() {
        for kind in [
            KernelKind::SquaredExp,
            KernelKind::Matern32,
            KernelKind::Matern52,
        ] {
            let k = Kernel::with_params(kind, 2.5, vec![0.5, 0.5]);
            let x = [0.3, 0.7];
            assert!((k.eval(&x, &x) - 2.5).abs() < 1e-12);
            assert_eq!(k.diag_value(), 2.5);
        }
    }

    #[test]
    fn decays_with_distance() {
        for kind in [
            KernelKind::SquaredExp,
            KernelKind::Matern32,
            KernelKind::Matern52,
        ] {
            let k = Kernel::new(kind, 1);
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[0.9]);
            assert!(near > far, "{kind:?}: {near} !> {far}");
            assert!(far > 0.0);
        }
    }

    #[test]
    fn symmetry() {
        let k = Kernel::new(KernelKind::Matern52, 3);
        let a = [0.1, 0.5, 0.9];
        let b = [0.4, 0.2, 0.7];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        // Long lengthscale in dim 0 => distance in dim 0 matters less.
        let k = Kernel::with_params(KernelKind::SquaredExp, 1.0, vec![10.0, 0.1]);
        let base = [0.0, 0.0];
        let moved_dim0 = k.eval(&base, &[0.5, 0.0]);
        let moved_dim1 = k.eval(&base, &[0.0, 0.5]);
        assert!(moved_dim0 > moved_dim1);
    }

    #[test]
    fn sqexp_known_value() {
        let k = Kernel::with_params(KernelKind::SquaredExp, 1.0, vec![1.0]);
        // r² = 1 → exp(-0.5)
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn log_param_roundtrip() {
        let k = Kernel::with_params(KernelKind::Matern32, 3.0, vec![0.2, 1.5]);
        let p = k.to_log_params();
        let k2 = Kernel::from_log_params(KernelKind::Matern32, &p);
        assert!((k2.variance() - 3.0).abs() < 1e-12);
        assert!((k2.lengthscales()[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_log_params_clamps_extremes() {
        let k = Kernel::from_log_params(KernelKind::SquaredExp, &[100.0, -100.0]);
        assert!(k.variance() <= 8.0_f64.exp());
        assert!(k.lengthscales()[0] >= (-8.0_f64).exp());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_variance() {
        let _ = Kernel::with_params(KernelKind::SquaredExp, 0.0, vec![1.0]);
    }

    #[test]
    fn matern32_known_value() {
        // k(r) = (1 + √3 r) exp(-√3 r) at r = 1, unit params.
        let k = Kernel::with_params(KernelKind::Matern32, 1.0, vec![1.0]);
        let s = 3.0_f64.sqrt();
        let expect = (1.0 + s) * (-s).exp();
        assert!((k.eval(&[0.0], &[1.0]) - expect).abs() < 1e-12);
    }

    #[test]
    fn matern52_known_value() {
        let k = Kernel::with_params(KernelKind::Matern52, 1.0, vec![1.0]);
        let s = 5.0_f64.sqrt();
        let expect = (1.0 + s + s * s / 3.0) * (-s).exp();
        assert!((k.eval(&[0.0], &[1.0]) - expect).abs() < 1e-12);
    }

    #[test]
    fn matern_kinds_differ() {
        let a = [0.0];
        let b = [0.5];
        let k32 = Kernel::new(KernelKind::Matern32, 1).eval(&a, &b);
        let k52 = Kernel::new(KernelKind::Matern52, 1).eval(&a, &b);
        let rbf = Kernel::new(KernelKind::SquaredExp, 1).eval(&a, &b);
        assert!(k32 != k52 && k52 != rbf);
    }
}
