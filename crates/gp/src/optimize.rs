//! Derivative-free Nelder–Mead simplex minimization.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 400,
            f_tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Minimize `f` from `x0` with the Nelder–Mead simplex method
/// (standard coefficients: reflection 1, expansion 2, contraction ½,
/// shrink ½). Returns `(argmin, min)`.
///
/// Non-finite objective values are treated as `+∞`, so `f` may freely
/// signal infeasible hyperparameters (e.g. a kernel matrix that fails to
/// factorize) by returning `f64::INFINITY` or NaN.
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert!(n > 0, "nelder_mead: empty start point");
    let safe = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
    let evals = std::cell::Cell::new(0usize);
    let eval = |x: &[f64]| {
        evals.set(evals.get() + 1);
        safe(f(x))
    };

    // Initial simplex: x0 plus one step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        xi[i] += opts.initial_step;
        let fi = eval(&xi);
        simplex.push((xi, fi));
    }

    while evals.get() < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() < opts.f_tol && worst.is_finite() {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, &xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }

        let worst_x = simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_x)
            .map(|(&c, &w)| c + (c - w))
            .collect();
        let f_r = eval(&reflect);

        if f_r < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(&c, &w)| c + 2.0 * (c - w))
                .collect();
            let f_e = eval(&expand);
            simplex[n] = if f_e < f_r {
                (expand, f_e)
            } else {
                (reflect, f_r)
            };
        } else if f_r < simplex[n - 1].1 {
            simplex[n] = (reflect, f_r);
        } else {
            // Contraction (outside if reflection improved on worst, else inside).
            let towards: &[f64] = if f_r < simplex[n].1 {
                &reflect
            } else {
                &worst_x
            };
            let contract: Vec<f64> = centroid
                .iter()
                .zip(towards)
                .map(|(&c, &t)| c + 0.5 * (t - c))
                .collect();
            let f_c = eval(&contract);
            if f_c < simplex[n].1.min(f_r) {
                simplex[n] = (contract, f_c);
            } else {
                // Shrink everything towards the best vertex.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best_x
                        .iter()
                        .zip(&entry.0)
                        .map(|(&b, &x)| b + 0.5 * (x - b))
                        .collect();
                    let fs = eval(&shrunk);
                    *entry = (shrunk, fs);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, fx) = simplex.swap_remove(0);
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let (x, fx) = nelder_mead(
            |v| (v[0] - 3.0).powi(2) + (v[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!((x[0] - 3.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-3, "{x:?}");
        assert!(fx < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |v: &[f64]| {
            let (a, b) = (v[0], v[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let opts = NelderMeadOptions {
            max_evals: 4000,
            ..Default::default()
        };
        let (x, _) = nelder_mead(rosen, &[-1.2, 1.0], &opts);
        assert!((x[0] - 1.0).abs() < 0.02, "{x:?}");
        assert!((x[1] - 1.0).abs() < 0.04, "{x:?}");
    }

    #[test]
    fn handles_infinite_regions() {
        // Objective is +inf for x < 0; minimum at x = 1.
        let f = |v: &[f64]| {
            if v[0] < 0.0 {
                f64::INFINITY
            } else {
                (v[0] - 1.0).powi(2)
            }
        };
        let (x, fx) = nelder_mead(f, &[2.0], &NelderMeadOptions::default());
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!(fx.is_finite());
    }

    #[test]
    fn handles_nan_as_infinite() {
        let f = |v: &[f64]| {
            if v[0] > 5.0 {
                f64::NAN
            } else {
                (v[0] - 4.0).powi(2)
            }
        };
        let (x, _) = nelder_mead(f, &[0.0], &NelderMeadOptions::default());
        assert!((x[0] - 4.0).abs() < 1e-2);
    }

    #[test]
    fn respects_eval_budget() {
        use std::cell::Cell;
        let count = Cell::new(0usize);
        let f = |v: &[f64]| {
            count.set(count.get() + 1);
            v[0] * v[0]
        };
        let opts = NelderMeadOptions {
            max_evals: 30,
            f_tol: 0.0,
            ..Default::default()
        };
        let _ = nelder_mead(f, &[10.0], &opts);
        // Budget may be exceeded by at most one in-flight iteration's evals.
        assert!(count.get() <= 35, "used {} evals", count.get());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_start_panics() {
        let _ = nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default());
    }
}
