//! Exact Gaussian-process regression with maximum-likelihood training.

use crate::kernel::{Kernel, KernelKind};
use crate::optimize::{nelder_mead, NelderMeadOptions};
use crate::{GpError, Result};
use cets_linalg::{par, Cholesky, Matrix, ParConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Training configuration for [`Gp::train`].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Covariance family.
    pub kernel: KernelKind,
    /// Number of random restarts for hyperparameter optimization (the first
    /// start is always the default kernel).
    pub n_restarts: usize,
    /// Seed for restart jitter.
    pub seed: u64,
    /// Lower bound on the noise variance (of standardized targets). HPC
    /// runtimes are noisy; a floor keeps the model from interpolating
    /// measurement jitter.
    pub noise_floor: f64,
    /// Also optimize the noise variance (otherwise it stays at the floor).
    pub optimize_noise: bool,
    /// Inner Nelder–Mead options.
    pub nm: NelderMeadOptions,
    /// Surrogate tier policy consulted by [`crate::Surrogate::train`]:
    /// exact GP below a training-set-size threshold, sparse (SGPR) at or
    /// above it, or an explicit override. Direct [`Gp::train`] calls
    /// ignore it.
    pub tier: crate::TierPolicy,
    /// Sparse-tier (SGPR) options, used when the tier policy selects the
    /// sparse surrogate.
    pub sparse: crate::SparseOptions,
    /// Worker budget for training. The budget is split across the two
    /// parallel levels — Nelder–Mead restarts on the outside, kernel
    /// builds and Cholesky panels on the inside — and every split
    /// produces bit-identical hyperparameters (fixed partitioning,
    /// fixed-order winner selection).
    pub par: ParConfig,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            kernel: KernelKind::Matern52,
            n_restarts: 3,
            seed: 0,
            noise_floor: 1e-6,
            optimize_noise: true,
            nm: NelderMeadOptions::default(),
            tier: crate::TierPolicy::default(),
            sparse: crate::SparseOptions::default(),
            par: ParConfig::default(),
        }
    }
}

/// Conditioning ceiling for the incremental-update path: when
/// [`Gp::chol_condition_estimate`] crosses this after a [`Gp::append`],
/// debug builds assert. The value matches the "living off jitter" rule of
/// thumb documented on [`Gp::kernel_condition_number`]; legitimate BO
/// appends stay orders of magnitude below it (the noise floor keeps every
/// pivot at `√noise` or larger).
pub const APPEND_CONDITION_LIMIT: f64 = 1e12;

/// A fitted Gaussian process.
///
/// Fitting cost is one `O(N³)` Cholesky factorization plus `O(N²)` per
/// prediction — the scaling the paper leans on when it argues that joint
/// high-dimensional searches (which need many more evaluations `N`) pay a
/// super-linear search-time penalty.
#[derive(Debug, Clone)]
pub struct Gp {
    x: Vec<Vec<f64>>,
    /// Standardized targets (kept for incremental updates).
    ys: Vec<f64>,
    kernel: Kernel,
    noise: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    lml: f64,
}

impl Gp {
    /// Fit with *fixed* hyperparameters (no optimization).
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: Kernel, noise: f64) -> Result<Self> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(GpError::BadShape(format!(
                "{n} inputs vs {} targets",
                y.len()
            )));
        }
        let d = kernel.dim();
        if x.iter().any(|r| r.len() != d) {
            return Err(GpError::BadShape(format!(
                "input dim mismatch (kernel expects {d})"
            )));
        }
        check_finite(x, y)?;
        let (y_mean, y_std) = standardization(y);
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();

        let mut k = gram(x, &kernel);
        k.add_diag(noise);
        let chol = Cholesky::new_jittered(&k).map_err(|e| GpError::Factorization(e.to_string()))?;
        let alpha = chol.solve_vec(&ys);

        let data_fit: f64 = ys.iter().zip(&alpha).map(|(&a, &b)| a * b).sum();
        let lml = -0.5 * data_fit
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(Gp {
            x: x.to_vec(),
            ys,
            kernel,
            noise,
            chol,
            alpha,
            y_mean,
            y_std,
            lml,
        })
    }

    /// Train with maximum-likelihood hyperparameters: multi-start
    /// Nelder–Mead over `[ln σ², ln ℓ₁.., ln ℓ_d, (ln σ_n²)]`.
    pub fn train(x: &[Vec<f64>], y: &[f64], cfg: &GpConfig) -> Result<Self> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(GpError::BadShape(format!(
                "{n} inputs vs {} targets",
                y.len()
            )));
        }
        let d = x[0].len();
        if d == 0 || x.iter().any(|r| r.len() != d) {
            return Err(GpError::BadShape("ragged or zero-dim inputs".into()));
        }
        check_finite(x, y)?;

        let (y_mean, y_std) = standardization(y);
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        let opt_noise = cfg.optimize_noise;
        let floor = cfg.noise_floor.max(1e-12);

        // The worker budget splits across two levels: independent
        // Nelder–Mead restarts on the outside (near-perfect scaling) and
        // the per-evaluation kernel build / Cholesky inside each restart
        // taking whatever is left over.
        let threads = cfg.par.resolve();
        let starts = cfg.n_restarts.max(1);
        let ow = threads.min(starts);
        let iw = (threads / ow).max(1);

        // The per-dimension pairwise squared differences do not depend on
        // the hyperparameters, so they are computed once here and shared
        // by every likelihood evaluation of every Nelder–Mead restart —
        // each evaluation then builds the kernel matrix with one fused
        // multiply-add pass over the tensor instead of recomputing all
        // O(n²d) distances through the generic kernel entry point.
        let tensor = PairTensor::new_with(x, threads);

        // One restart: Nelder–Mead from `p0` over the negative LML of the
        // standardized targets, with its own factorization scratch so
        // restarts can run concurrently.
        let run_start = |p0: &[f64]| -> (Vec<f64>, f64) {
            let scratch = std::cell::RefCell::new(LmlScratch {
                k: Matrix::zeros(n, n),
                r2: vec![0.0; tensor.n_pairs()],
            });
            let neg_lml = |p: &[f64]| -> f64 {
                let (kp, noise) = if opt_noise {
                    let (kp, np_) = p.split_at(p.len() - 1);
                    (kp, np_[0].clamp(-27.0, 3.0).exp().max(floor))
                } else {
                    (p, floor)
                };
                let kernel = Kernel::from_log_params(cfg.kernel, kp);
                let mut s = scratch.borrow_mut();
                match lml_cached(&tensor, &ys, &kernel, noise, &mut s, iw) {
                    Some(v) => -v,
                    None => f64::INFINITY,
                }
            };
            nelder_mead(neg_lml, p0, &cfg.nm)
        };

        // Start points are pre-drawn from the single RNG stream in restart
        // order (Nelder–Mead itself consumes no randomness), so the draws
        // are identical to the sequential loop's; the winner fold below
        // walks restarts in the same ascending order with the same strict
        // comparison, making the result bit-identical at any worker count.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let p0s: Vec<Vec<f64>> = (0..starts)
            .map(|s| {
                let mut p0 = Kernel::new(cfg.kernel, d).to_log_params();
                if opt_noise {
                    p0.push((1e-3_f64).ln());
                }
                if s > 0 {
                    for v in &mut p0 {
                        *v += rng.random_range(-1.5..1.5);
                    }
                }
                p0
            })
            .collect();
        let mut best: Option<(Vec<f64>, f64)> = None;
        for (p, f) in par::map_indexed(ow, starts, |s| run_start(&p0s[s])) {
            if f.is_finite() && best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                best = Some((p, f));
            }
        }
        let (p, _) = best.ok_or_else(|| {
            GpError::TrainingFailed("no restart produced a finite likelihood".into())
        })?;
        let (kp, noise) = if opt_noise {
            let (kp, np_) = p.split_at(p.len() - 1);
            (kp, np_[0].clamp(-27.0, 3.0).exp().max(floor))
        } else {
            (p.as_slice(), floor)
        };
        let kernel = Kernel::from_log_params(cfg.kernel, kp);
        Self::fit(x, y, kernel, noise)
    }

    /// Predictive mean and variance (original units) at `x_star`.
    pub fn predict(&self, x_star: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.kernel.eval(xi, x_star))
            .collect();
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(&a, &b)| a * b).sum();
        let v = self.chol.solve_lower(&k_star);
        let var_std = (self.kernel.diag_value() + self.noise
            - v.iter().map(|&x| x * x).sum::<f64>())
        .max(0.0);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Predictive mean only (saves the triangular solve).
    pub fn predict_mean(&self, x_star: &[f64]) -> f64 {
        let k_star: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.kernel.eval(xi, x_star))
            .collect();
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(&a, &b)| a * b).sum();
        mean_std * self.y_std + self.y_mean
    }

    /// Predictive mean and variance (original units) at every point of a
    /// batch — the vectorized form of [`Gp::predict`].
    ///
    /// Builds the `n × m` cross-covariance block K★ in one pass, computes
    /// all means with a single row-sweep against `α`, and runs one blocked
    /// multi-column forward solve ([`Cholesky::solve_lower_multi`]) for
    /// the variances — no per-candidate `Vec` allocations. This is what
    /// the BO candidate-scoring loop calls.
    ///
    /// Guarantees:
    /// * **chunk invariance** — every candidate's result is computed by a
    ///   fixed per-column operation sequence, so splitting a batch into
    ///   chunks (in any sizes) and concatenating yields bit-identical
    ///   results. The BO loop's parallel scorer relies on this.
    /// * agreement with [`Gp::predict`] to ulp-level tolerance only: the
    ///   batch path scales squared distances by `1/ℓ²` where the scalar
    ///   path divides by `ℓ` before squaring.
    ///
    /// Every point must have the kernel's input dimensionality — callers
    /// pass active-space points of fixed arity, and a debug assertion
    /// guards it.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let m = xs.len();
        let n = self.x.len();
        if m == 0 {
            return Vec::new();
        }
        debug_assert!(xs.iter().all(|p| p.len() == self.kernel.dim()));
        let w = self.kernel.inv_sq_lengthscales();
        let d = self.kernel.dim();
        // Dimension-major transpose of the queries: the r² accumulation
        // below becomes `d` contiguous element-wise sweeps per training
        // row (independent accumulators, vectorizable) instead of an
        // FP-latency-bound dot product per (i, j) entry.
        let mut qt = vec![0.0; d * m];
        for (j, q) in xs.iter().enumerate() {
            for (k, &v) in q.iter().enumerate() {
                qt[k * m + j] = v;
            }
        }
        let mut kstar = Matrix::zeros(n, m);
        for (i, xi) in self.x.iter().enumerate() {
            let row = kstar.row_mut(i);
            for (k, (&xik, &wk)) in xi.iter().zip(&w).enumerate() {
                let qk = &qt[k * m..(k + 1) * m];
                for (rj, &qv) in row.iter_mut().zip(qk) {
                    let dv = xik - qv;
                    *rj += wk * dv * dv;
                }
            }
            for rj in row.iter_mut() {
                *rj = self.kernel.eval_r2(*rj);
            }
        }
        // Means: one sweep over K★'s rows, ascending i per column.
        let mut mean = vec![0.0; m];
        for (i, &ai) in self.alpha.iter().enumerate() {
            for (mu, &kv) in mean.iter_mut().zip(kstar.row(i)) {
                *mu += ai * kv;
            }
        }
        // Variances: V = L⁻¹ K★ in place, then column sums of squares.
        if self.chol.solve_lower_multi(&mut kstar).is_err() {
            // Unreachable (K★ has n rows by construction); fall back to
            // the scalar path rather than panicking.
            return xs.iter().map(|p| self.predict(p)).collect();
        }
        let mut sq = vec![0.0; m];
        for i in 0..n {
            for (s, &v) in sq.iter_mut().zip(kstar.row(i)) {
                *s += v * v;
            }
        }
        let prior = self.kernel.diag_value() + self.noise;
        let var_scale = self.y_std * self.y_std;
        mean.iter()
            .zip(&sq)
            .map(|(&mu, &s)| {
                (
                    mu * self.y_std + self.y_mean,
                    (prior - s).max(0.0) * var_scale,
                )
            })
            .collect()
    }

    /// Log marginal likelihood of the (standardized) training data.
    pub fn lml(&self) -> f64 {
        self.lml
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The fitted noise variance (standardized-target units).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// Spectral condition number of the (noise-augmented) kernel matrix —
    /// a numerical-health diagnostic. Values above ~1e12 mean the
    /// factorization is living off jitter and predictions near data points
    /// should not be over-trusted; common causes are near-duplicate
    /// observations (an over-exploitative acquisition) or a length-scale
    /// far larger than the data spread.
    pub fn kernel_condition_number(&self) -> f64 {
        let n = self.x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(&self.x[i], &self.x[j]));
        k.add_diag(self.noise);
        match cets_linalg::SymEigen::new(&k) {
            Ok(e) => e.condition_number(),
            Err(_) => f64::INFINITY,
        }
    }

    /// Cheap conditioning estimate from the existing Cholesky factor:
    /// `(max_i L_ii / min_i L_ii)²`. A lower bound on
    /// [`Gp::kernel_condition_number`] at `O(n)` cost instead of the
    /// eigendecomposition's `O(n³)`, so it can run on every incremental
    /// update. It is exactly the quantity [`Gp::append`] degrades: each
    /// near-duplicate observation appends a tiny pivot to the factor's
    /// diagonal, and the ratio explodes long before the factorization
    /// fails outright.
    pub fn chol_condition_estimate(&self) -> f64 {
        let diag = self.chol.l().diag();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for v in diag {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo <= 0.0 {
            return f64::INFINITY;
        }
        let r = hi / lo;
        r * r
    }

    /// Leave-one-out cross-validation residuals, computed in closed form
    /// from the existing factorization (Sundararajan & Keerthi): for each
    /// training point, `mu_i = y_i − α_i / [K⁻¹]_ii` and
    /// `σ²_i = 1 / [K⁻¹]_ii` — no refitting. Returns
    /// `(loo_means, loo_variances)` in original target units.
    ///
    /// Use this to gauge surrogate quality during a search: systematically
    /// poor LOO predictions mean the acquisition is flying blind (e.g. the
    /// budget is too small for the dimensionality — the paper's argument
    /// for capping searches at 10 dimensions).
    pub fn loo_cv(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.x.len();
        let k_diag = self.chol.inv_diag();
        let mut means = Vec::with_capacity(n);
        let mut vars = Vec::with_capacity(n);
        for (i, &kd) in k_diag.iter().enumerate().take(n) {
            let kii = kd.max(1e-300);
            let mu_std = self.ys[i] - self.alpha[i] / kii;
            let var_std = 1.0 / kii;
            means.push(mu_std * self.y_std + self.y_mean);
            vars.push(var_std * self.y_std * self.y_std);
        }
        (means, vars)
    }

    /// LOO-CV pseudo R²: `1 − Σ(y_i − mu_i)² / Σ(y_i − ȳ)²`. `None` when
    /// the targets are constant.
    pub fn loo_r2(&self) -> Option<f64> {
        let (means, _) = self.loo_cv();
        let y: Vec<f64> = self
            .ys
            .iter()
            .map(|&v| v * self.y_std + self.y_mean)
            .collect();
        let ybar = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|&v| (v - ybar) * (v - ybar)).sum();
        if ss_tot <= 0.0 {
            return None;
        }
        let ss_res: f64 = y
            .iter()
            .zip(&means)
            .map(|(&yi, &mi)| (yi - mi) * (yi - mi))
            .sum();
        Some(1.0 - ss_res / ss_tot)
    }

    /// Absorb one new observation in `O(n²)` via a bordered Cholesky
    /// update — the per-iteration path of the BO loop between full
    /// hyperparameter retrainings.
    ///
    /// The target standardization constants are kept from the original
    /// fit (standardization is an affine reparametrization, so predictions
    /// remain exact; the constants are merely slightly stale for numerical
    /// conditioning). Fails when the bordered kernel matrix loses positive
    /// definiteness (e.g. a near-duplicate input); callers should fall
    /// back to a fresh [`Gp::fit`].
    ///
    /// **Refit contract.** Appends accumulate conditioning damage that a
    /// successful return does not signal: each one freezes the
    /// hyperparameters and standardization while adding a row to the
    /// factor, so a run of appends near existing observations shrinks the
    /// smallest Cholesky pivot monotonically. Callers must bound the
    /// number of consecutive appends and refit periodically — the BO
    /// loops do this via their `retrain_every` knob, retraining
    /// hyperparameters from scratch every `retrain_every` observations.
    /// Debug builds enforce the contract with an assertion on
    /// [`Gp::chol_condition_estimate`] (threshold
    /// [`APPEND_CONDITION_LIMIT`]); release builds skip the check, as a
    /// degraded-but-PD factor still predicts, just with less trustworthy
    /// uncertainties.
    pub fn append(&mut self, x_new: Vec<f64>, y_new: f64) -> Result<()> {
        if x_new.len() != self.kernel.dim() {
            return Err(GpError::BadShape(format!(
                "append: input dim {} != {}",
                x_new.len(),
                self.kernel.dim()
            )));
        }
        check_finite(std::slice::from_ref(&x_new), &[y_new])?;
        let col: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.kernel.eval(xi, &x_new))
            .collect();
        let diag = self.kernel.diag_value() + self.noise;
        self.chol
            .append(&col, diag)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        debug_assert!(
            self.chol_condition_estimate() < APPEND_CONDITION_LIMIT,
            "Gp::append: conditioning estimate {:.3e} exceeds {APPEND_CONDITION_LIMIT:.0e} \
             after {} appended observations — the caller is appending past the refit \
             contract (see Gp::append docs; retrain hyperparameters every \
             `retrain_every` observations)",
            self.chol_condition_estimate(),
            self.x.len() + 1,
        );
        self.x.push(x_new);
        self.ys.push((y_new - self.y_mean) / self.y_std);
        self.alpha = self.chol.solve_vec(&self.ys);
        let data_fit: f64 = self.ys.iter().zip(&self.alpha).map(|(&a, &b)| a * b).sum();
        self.lml = -0.5 * data_fit
            - 0.5 * self.chol.log_det()
            - 0.5 * self.x.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(())
    }
}

/// Reject NaN/infinite inputs or targets before they reach a factorization:
/// a single poisoned entry spreads through the Cholesky and every
/// subsequent prediction without tripping any error.
pub(crate) fn check_finite(x: &[Vec<f64>], y: &[f64]) -> Result<()> {
    for (i, row) in x.iter().enumerate() {
        if row.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite(format!(
                "input row {i} contains a non-finite coordinate"
            )));
        }
    }
    for (i, v) in y.iter().enumerate() {
        if !v.is_finite() {
            return Err(GpError::NonFinite(format!("target {i} is {v}")));
        }
    }
    Ok(())
}

pub(crate) fn standardization(y: &[f64]) -> (f64, f64) {
    let mean = cets_linalg::vecops::mean(y);
    let std = cets_linalg::vecops::std_dev(y);
    (mean, if std > 1e-12 { std } else { 1.0 })
}

/// The kernel Gram matrix `K(x, x)` (without noise), built from the lower
/// triangle only and mirrored — stationary kernels are exactly symmetric,
/// so this halves the evaluation count of a full `from_fn` build.
fn gram(x: &[Vec<f64>], kernel: &Kernel) -> Matrix {
    let n = x.len();
    let diag = kernel.diag_value();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..i {
            let v = kernel.eval(&x[i], &x[j]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] = diag;
    }
    k
}

/// Per-dimension pairwise squared differences of the training inputs,
/// laid out dimension-major over the strict lower triangle:
/// `data[k · P + p] = (x_i[k] − x_j[k])²` where `p` enumerates the pairs
/// `(i, j), j < i` in row order and `P = n(n−1)/2`.
///
/// Hyperparameter training evaluates the log marginal likelihood hundreds
/// of times per [`Gp::train`] call; the distances never change across
/// those evaluations, only the length-scale weights do. The
/// dimension-major layout turns the per-evaluation reduction
/// `r²_p = Σ_k w_k · data[k][p]` into `d` contiguous axpy sweeps.
pub(crate) struct PairTensor {
    data: Vec<f64>,
    n: usize,
}

impl PairTensor {
    pub(crate) fn new(x: &[Vec<f64>]) -> Self {
        Self::new_with(x, 1)
    }

    /// Build the tensor with up to `workers` threads. The dimension-major
    /// layout makes each dimension's pair block a disjoint contiguous
    /// slice, so dimensions split across workers with every element
    /// keeping its single-write sequential arithmetic — bit-identical at
    /// any worker count.
    pub(crate) fn new_with(x: &[Vec<f64>], workers: usize) -> Self {
        let n = x.len();
        let d = x.first().map_or(0, |r| r.len());
        let np = n * (n - 1) / 2;
        let mut data = vec![0.0; d * np];
        let block = np.max(1);
        let fill_dim = |dk: &mut [f64], k: usize| {
            let mut p = 0;
            for i in 1..n {
                let xik = x[i][k];
                for xj in x.iter().take(i) {
                    let dv = xik - xj[k];
                    dk[p] = dv * dv;
                    p += 1;
                }
            }
        };
        let w = workers.max(1).min(d.max(1));
        if w <= 1 || np * d < 8192 {
            for (k, dk) in data.chunks_exact_mut(block).enumerate() {
                fill_dim(dk, k);
            }
        } else {
            let per = d.div_ceil(w);
            std::thread::scope(|scope| {
                for (ci, chunk) in data.chunks_mut(block * per).enumerate() {
                    let fill_dim = &fill_dim;
                    scope.spawn(move || {
                        for (kk, dk) in chunk.chunks_exact_mut(block).enumerate() {
                            fill_dim(dk, ci * per + kk);
                        }
                    });
                }
            });
        }
        PairTensor { data, n }
    }

    pub(crate) fn n_pairs(&self) -> usize {
        self.n * (self.n - 1) / 2
    }

    /// `acc[p] = Σ_k w[k] · data[k][p]` — the fused multiply-add pass.
    pub(crate) fn weighted_r2(&self, w: &[f64], acc: &mut [f64]) {
        self.weighted_r2_with(w, acc, 1);
    }

    /// [`PairTensor::weighted_r2`] with up to `workers` threads. Pair
    /// chunks are disjoint in `acc` and each element's accumulation stays
    /// ascending-`k`, so any chunking is bit-identical.
    pub(crate) fn weighted_r2_with(&self, w: &[f64], acc: &mut [f64], workers: usize) {
        let np = acc.len();
        if np == 0 {
            return;
        }
        let sweep = |chunk: &mut [f64], lo: usize| {
            chunk.fill(0.0);
            for (k, &wk) in w.iter().enumerate() {
                let dk = &self.data[k * np + lo..k * np + lo + chunk.len()];
                for (a, &t) in chunk.iter_mut().zip(dk) {
                    *a += wk * t;
                }
            }
        };
        let ww = if np < 8192 { 1 } else { workers.max(1) };
        if ww <= 1 {
            sweep(acc, 0);
            return;
        }
        let per = np.div_ceil(ww);
        std::thread::scope(|scope| {
            for (ci, chunk) in acc.chunks_mut(per).enumerate() {
                let sweep = &sweep;
                scope.spawn(move || sweep(chunk, ci * per));
            }
        });
    }
}

/// Reusable buffers for [`lml_cached`]: the kernel matrix and the packed
/// pairwise `r²` vector survive across likelihood evaluations, so the hot
/// loop performs no allocations besides the Cholesky factor itself.
struct LmlScratch {
    k: Matrix,
    r2: Vec<f64>,
}

/// Log marginal likelihood with the kernel matrix rebuilt from the cached
/// distance tensor (one weighted reduction + one profile pass) instead of
/// O(n²d) fresh distance computations, using up to `workers` threads for
/// the rebuild and the factorization.
///
/// Only the lower triangle and diagonal are written: both Cholesky
/// kernels read nothing above the diagonal, so mirroring would be pure
/// overhead. Row `i`'s pairs are contiguous in the packed `r²` vector
/// (base `i(i−1)/2`), so rows partition cleanly across workers and every
/// entry is one independent profile evaluation — any row partition is
/// bit-identical.
fn lml_cached(
    tensor: &PairTensor,
    ys: &[f64],
    kernel: &Kernel,
    noise: f64,
    scratch: &mut LmlScratch,
    workers: usize,
) -> Option<f64> {
    let n = tensor.n;
    tensor.weighted_r2_with(&kernel.inv_sq_lengthscales(), &mut scratch.r2, workers);
    let k = &mut scratch.k;
    let diag = kernel.diag_value() + noise;
    let r2 = &scratch.r2;
    let fill_rows = |krows: &mut [f64], lo: usize, hi: usize| {
        for i in lo..hi {
            let base = i * i.saturating_sub(1) / 2;
            let row = &mut krows[(i - lo) * n..(i - lo) * n + i + 1];
            for (rj, &t) in row[..i].iter_mut().zip(&r2[base..base + i]) {
                *rj = kernel.eval_r2(t);
            }
            row[i] = diag;
        }
    };
    let w = if n * n < 4096 {
        1
    } else {
        workers.max(1).min(n)
    };
    if w <= 1 {
        fill_rows(k.as_mut_slice(), 0, n);
    } else {
        // Row i costs i + 1 evaluations, so triangular ranges balance
        // the profile work; chunks are whole rows, hence disjoint.
        let mut rest: &mut [f64] = k.as_mut_slice();
        std::thread::scope(|scope| {
            for r in par::triangular_ranges(n, w) {
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * n);
                rest = tail;
                let fill_rows = &fill_rows;
                scope.spawn(move || fill_rows(chunk, r.start, r.end));
            }
        });
    }
    let chol = Cholesky::new_jittered_with(k, workers).ok()?;
    let alpha = chol.solve_vec(ys);
    let data_fit: f64 = ys.iter().zip(&alpha).map(|(&a, &b)| a * b).sum();
    Some(
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_noise_free_data() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| (4.0 * v[0]).sin()).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-8).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-3, "at {xi:?}: {m} vs {yi}");
        }
    }

    #[test]
    fn non_finite_training_data_is_rejected() {
        let x = grid_1d(6);
        let mut y: Vec<f64> = x.iter().map(|v| v[0]).collect();
        y[3] = f64::NAN;
        let cfg = GpConfig::default();
        assert!(matches!(
            Gp::train(&x, &y, &cfg),
            Err(GpError::NonFinite(_))
        ));
        assert!(matches!(
            Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-6),
            Err(GpError::NonFinite(_))
        ));
        let mut bad_x = x.clone();
        bad_x[1][0] = f64::INFINITY;
        let y_ok: Vec<f64> = x.iter().map(|v| v[0]).collect();
        assert!(matches!(
            Gp::train(&bad_x, &y_ok, &cfg),
            Err(GpError::NonFinite(_))
        ));
        // Incremental updates are guarded too.
        let mut gp = Gp::fit(&x, &y_ok, Kernel::new(KernelKind::SquaredExp, 1), 1e-6).unwrap();
        assert!(matches!(
            gp.append(vec![0.55], f64::NAN),
            Err(GpError::NonFinite(_))
        ));
        assert!(matches!(
            gp.append(vec![f64::NEG_INFINITY], 0.5),
            Err(GpError::NonFinite(_))
        ));
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = vec![vec![0.2], vec![0.4]];
        let y = vec![1.0, 2.0];
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, 1), 1e-6).unwrap();
        let (_, v_near) = gp.predict(&[0.3]);
        let (_, v_far) = gp.predict(&[0.95]);
        assert!(v_far > v_near);
        assert!(v_near >= 0.0);
    }

    #[test]
    fn train_recovers_smooth_function() {
        let x = grid_1d(25);
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin()).collect();
        let gp = Gp::train(&x, &y, &GpConfig::default()).unwrap();
        let (m, _) = gp.predict(&[0.33]);
        assert!((m - (0.99_f64).sin()).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn train_beats_default_kernel_lml() {
        let x = grid_1d(20);
        // Rapidly varying function: needs a short lengthscale.
        let y: Vec<f64> = x.iter().map(|v| (20.0 * v[0]).sin()).collect();
        let default_fit = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-6).unwrap();
        let cfg = GpConfig {
            kernel: KernelKind::SquaredExp,
            ..Default::default()
        };
        let trained = Gp::train(&x, &y, &cfg).unwrap();
        assert!(
            trained.lml() > default_fit.lml(),
            "trained {} <= default {}",
            trained.lml(),
            default_fit.lml()
        );
        // The learned lengthscale should be short.
        assert!(trained.kernel().lengthscales()[0] < 0.3);
    }

    #[test]
    fn noisy_data_learns_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = grid_1d(40);
        let y: Vec<f64> = x
            .iter()
            .map(|v| v[0] + 0.3 * (rng.random::<f64>() - 0.5))
            .collect();
        let gp = Gp::train(&x, &y, &GpConfig::default()).unwrap();
        // Should not interpolate: noise well above the floor.
        assert!(gp.noise() > 1e-4, "noise {} too small", gp.noise());
    }

    #[test]
    fn shape_errors() {
        assert!(Gp::fit(&[], &[], Kernel::new(KernelKind::SquaredExp, 1), 1e-6).is_err());
        assert!(Gp::fit(
            &[vec![0.0]],
            &[1.0, 2.0],
            Kernel::new(KernelKind::SquaredExp, 1),
            1e-6
        )
        .is_err());
        assert!(Gp::fit(
            &[vec![0.0, 1.0]],
            &[1.0],
            Kernel::new(KernelKind::SquaredExp, 1),
            1e-6
        )
        .is_err());
    }

    #[test]
    fn constant_targets_are_handled() {
        let x = grid_1d(5);
        let y = vec![2.0; 5];
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern32, 1), 1e-6).unwrap();
        let (m, v) = gp.predict(&[0.5]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!(v >= 0.0);
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let x = vec![vec![0.5], vec![0.5], vec![0.9]];
        let y = vec![1.0, 1.1, 2.0];
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-9).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.05).abs() < 0.2);
    }

    #[test]
    fn predict_mean_matches_predict() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, 1), 1e-6).unwrap();
        let (m, _) = gp.predict(&[0.37]);
        assert!((gp.predict_mean(&[0.37]) - m).abs() < 1e-12);
    }

    #[test]
    fn append_matches_full_refit() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| (4.0 * v[0]).sin()).collect();
        let kernel = Kernel::new(KernelKind::Matern52, 1);
        let mut gp = Gp::fit(&x[..9], &y[..9], kernel.clone(), 1e-6).unwrap();
        gp.append(x[9].clone(), y[9]).unwrap();
        // A full refit re-standardizes the targets, so its effective prior
        // variance differs slightly from the appended model's (the appended
        // GP keeps the 9-point standardization constants); predictions
        // agree to within that small reparametrization effect.
        let full = Gp::fit(&x, &y, kernel, 1e-6).unwrap();
        assert_eq!(gp.n_train(), 10);
        for probe in [[0.05], [0.45], [0.93]] {
            let (m1, v1) = gp.predict(&probe);
            let (m2, v2) = full.predict(&probe);
            assert!((m1 - m2).abs() < 5e-3, "mean {m1} vs {m2}");
            assert!((v1 - v2).abs() < 5e-3, "var {v1} vs {v2}");
        }
        // The appended model interpolates the new observation.
        assert!((gp.predict_mean(&x[9]) - y[9]).abs() < 1e-2);
    }

    #[test]
    fn append_duplicate_point_fails_gracefully() {
        let x = vec![vec![0.5]];
        let y = vec![1.0];
        let mut gp = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 0.0).unwrap();
        // Exact duplicate with zero noise: bordered matrix singular.
        let r = gp.append(vec![0.5], 1.0);
        assert!(r.is_err());
        // GP still usable.
        assert_eq!(gp.n_train(), 1);
        assert!(gp.predict(&[0.5]).0.is_finite());
    }

    #[test]
    fn append_dim_checked() {
        let x = grid_1d(4);
        let y = vec![0.0; 4];
        let mut gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern32, 1), 1e-6).unwrap();
        assert!(matches!(
            gp.append(vec![0.1, 0.2], 1.0),
            Err(GpError::BadShape(_))
        ));
    }

    #[test]
    fn chol_condition_estimate_tracks_conditioning() {
        let kernel = Kernel::new(KernelKind::SquaredExp, 1);
        // Well-separated points: benign estimate, far under the limit.
        let x = grid_1d(6);
        let y: Vec<f64> = x.iter().map(|v| v[0]).collect();
        let good = Gp::fit(&x, &y, kernel.clone(), 1e-4).unwrap();
        let ge = good.chol_condition_estimate();
        assert!(ge < 1e6, "benign estimate {ge}");
        // The O(n) estimate is a lower bound on the O(n³) spectral number.
        assert!(ge <= good.kernel_condition_number() * (1.0 + 1e-9));
        // Near-duplicates with tiny noise: the estimate explodes too.
        let x2 = vec![vec![0.5], vec![0.5 + 1e-7], vec![0.9]];
        let y2 = vec![1.0, 1.0, 2.0];
        let bad = Gp::fit(&x2, &y2, kernel, 1e-12).unwrap();
        let be = bad.chol_condition_estimate();
        assert!(be > 1e6, "degenerate estimate {be}");
        assert!(be <= bad.kernel_condition_number() * (1.0 + 1e-9));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "refit contract")]
    fn append_past_conditioning_limit_asserts_in_debug() {
        // Two well-separated points with near-zero noise factorize
        // cleanly; appending an all-but-duplicate observation leaves the
        // factor PD (so `append` itself succeeds) with a pivot around
        // √1e-13 — an estimate of ~1e13, past APPEND_CONDITION_LIMIT.
        let x = vec![vec![0.2], vec![0.8]];
        let y = vec![1.0, 2.0];
        let mut gp = Gp::fit(&x, &y, Kernel::new(KernelKind::SquaredExp, 1), 1e-13).unwrap();
        let _ = gp.append(vec![0.2 + 1e-8], 1.0);
    }

    #[test]
    fn condition_number_flags_duplicates() {
        let kernel = Kernel::new(KernelKind::SquaredExp, 1);
        // Well-separated points: benign conditioning.
        let x = grid_1d(6);
        let y: Vec<f64> = x.iter().map(|v| v[0]).collect();
        let good = Gp::fit(&x, &y, kernel.clone(), 1e-4).unwrap();
        // Near-duplicate points: conditioning explodes.
        let x2 = vec![vec![0.5], vec![0.5 + 1e-9], vec![0.9]];
        let y2 = vec![1.0, 1.0, 2.0];
        let bad = Gp::fit(&x2, &y2, kernel, 1e-12).unwrap();
        assert!(
            bad.kernel_condition_number() > 100.0 * good.kernel_condition_number(),
            "bad {} vs good {}",
            bad.kernel_condition_number(),
            good.kernel_condition_number()
        );
    }

    #[test]
    fn loo_cv_matches_explicit_refits() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|v| (5.0 * v[0]).sin()).collect();
        let kernel = Kernel::new(KernelKind::SquaredExp, 1);
        let gp = Gp::fit(&x, &y, kernel.clone(), 1e-4).unwrap();
        let (loo_means, loo_vars) = gp.loo_cv();
        // Explicitly refit without point i and compare predictions.
        for i in [0usize, 3, 7] {
            let (mut xi, mut yi) = (x.clone(), y.clone());
            xi.remove(i);
            yi.remove(i);
            // Fit on raw targets with the same standardization as the
            // full model would be ideal; small differences from differing
            // standardization are tolerated below.
            let refit = Gp::fit(&xi, &yi, kernel.clone(), 1e-4).unwrap();
            let (m, v) = refit.predict(&x[i]);
            assert!(
                (m - loo_means[i]).abs() < 0.05,
                "point {i}: closed-form {} vs refit {m}",
                loo_means[i]
            );
            assert!(v > 0.0 && loo_vars[i] > 0.0);
        }
    }

    #[test]
    fn loo_r2_high_for_learnable_function() {
        let x = grid_1d(20);
        let y: Vec<f64> = x.iter().map(|v| (3.0 * v[0]).sin()).collect();
        let gp = Gp::train(&x, &y, &GpConfig::default()).unwrap();
        let r2 = gp.loo_r2().unwrap();
        assert!(r2 > 0.9, "LOO R² {r2}");
        // Constant targets: undefined.
        let gc = Gp::fit(&x, &[1.0; 20], Kernel::new(KernelKind::Matern32, 1), 1e-6).unwrap();
        assert!(gc.loo_r2().is_none());
    }

    #[test]
    fn train_2d_anisotropic() {
        // y depends on dim 0 only; ARD should learn a long lengthscale
        // for dim 1.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (6.0 * v[0]).sin()).collect();
        let gp = Gp::train(&x, &y, &GpConfig::default()).unwrap();
        let ls = gp.kernel().lengthscales();
        assert!(
            ls[1] > 2.0 * ls[0],
            "expected ARD to stretch irrelevant dim: {ls:?}"
        );
    }
}
