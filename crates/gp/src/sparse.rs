//! Sparse (inducing-point) Gaussian-process regression and the surrogate
//! tier-selection layer.
//!
//! [`SparseGp`] implements Titsias' variational SGPR bound: `m` inducing
//! points `Z` summarize `n` observations, hyperparameters are optimized
//! against the **ELBO** (a lower bound on the exact log marginal
//! likelihood) with the same Nelder–Mead driver as [`Gp::train`], and the
//! per-evaluation cost drops from the exact GP's `O(n³)` to `O(n·m²)`:
//!
//! | operation            | exact [`Gp`] | [`SparseGp`]       |
//! |----------------------|--------------|--------------------|
//! | train (per LML eval) | `O(n³)`      | `O(n·m²)`          |
//! | predict mean         | `O(n)`       | `O(m)`             |
//! | predict variance     | `O(n²)`      | `O(m²)`            |
//! | absorb 1 observation | `O(n²)`      | `O(m²)`            |
//! | memory               | `O(n²)`      | `O(n·m)` transient |
//!
//! With `m = n` and `Z = X` the bound is tight and SGPR reproduces the
//! exact posterior (a property the proptests pin down); with `m ≪ n` it
//! breaks the `O(N³)` training wall that caps exact-GP searches at a few
//! hundred points.
//!
//! [`Surrogate`] is the tier-selection layer: [`Surrogate::train`] picks
//! the exact or sparse tier from [`GpConfig::tier`] (`Auto` switches on a
//! configurable training-set size), so search loops can scale past the
//! wall without touching their own logic. Below the threshold the `Auto`
//! policy calls [`Gp::train`] verbatim — results are bit-identical to the
//! pre-tier code path.
//!
//! ## Formulation
//!
//! With `L = chol(K_mm)`, `V = L⁻¹K_mn`, `A = V/σ`, `B = I + AAᵀ`,
//! `L_B = chol(B)`, `g = Aỹ/σ` and `c = L_B⁻¹g` (standardized targets
//! `ỹ`), the collapsed bound is
//!
//! ```text
//! ELBO = −n/2·ln 2π − ½ ln det B − n/2·ln σ² − ½σ⁻²ỹᵀỹ + ½cᵀc
//!        − (1/2σ²)·tr(K_nn − Q_nn)
//! ```
//!
//! and predictions at `x⋆` use `v = L⁻¹k⋆`, `w = L_B⁻¹v`:
//! `mean = wᵀc`, `var = k⋆⋆ − vᵀv + wᵀw` (plus noise, matching the exact
//! path's convention). The hot per-ELBO products `VVᵀ` and `Vỹ` are
//! computed via the symmetric [`Matrix::aat`] kernel and one
//! matrix–vector sweep; `K_mn` itself is rebuilt per evaluation from a
//! dimension-major copy of the training inputs (the cross-block analogue
//! of the cached [`PairTensor`] used for `K_mm`), so no `O(n·m·d)` tensor
//! is ever materialized per hyperparameter step.

use crate::gp::{check_finite, standardization, Gp, GpConfig, PairTensor};
use crate::kernel::Kernel;
use crate::optimize::nelder_mead;
use crate::{GpError, Result};
use cets_linalg::{par, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which surrogate tier [`Surrogate::train`] selects for a given
/// training-set size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// Exact GP below `threshold` training points, sparse at or above it.
    Auto {
        /// Training-set size at which the sparse tier takes over.
        threshold: usize,
    },
    /// Always the exact `O(n³)` GP.
    Exact,
    /// Always the sparse SGPR tier.
    Sparse,
}

impl TierPolicy {
    /// Tier selected for `n` training points.
    pub fn select(&self, n: usize) -> SurrogateTier {
        match *self {
            TierPolicy::Auto { threshold } => {
                if n >= threshold.max(1) {
                    SurrogateTier::Sparse
                } else {
                    SurrogateTier::Exact
                }
            }
            TierPolicy::Exact => SurrogateTier::Exact,
            TierPolicy::Sparse => SurrogateTier::Sparse,
        }
    }

    /// Stable textual tag recorded in checkpoints, so a resumed search can
    /// verify it will re-derive the same tier decisions at every step.
    pub fn tag(&self) -> String {
        match *self {
            TierPolicy::Auto { threshold } => format!("auto:{threshold}"),
            TierPolicy::Exact => "exact".into(),
            TierPolicy::Sparse => "sparse".into(),
        }
    }
}

impl Default for TierPolicy {
    fn default() -> Self {
        // Exact GPs are already impractical well before 512 points
        // (BENCH_bo.json: ~16 s per train at n = 500); every historical
        // code path (searches of ≲100 evaluations) stays exact and
        // bit-identical under this default.
        TierPolicy::Auto { threshold: 512 }
    }
}

/// Options for the sparse (SGPR) tier of [`Surrogate::train`].
#[derive(Debug, Clone)]
pub struct SparseOptions {
    /// Number of inducing points (k-center subset of the training inputs;
    /// clamped to the training-set size).
    pub m_inducing: usize,
    /// Nelder–Mead restarts for ELBO optimization. Fewer than the exact
    /// tier's default: each restart is `O(n·m²)` per evaluation and the
    /// ELBO landscape is smoother than the exact LML's.
    pub n_restarts: usize,
    /// Inner Nelder–Mead options for ELBO optimization.
    pub nm: crate::optimize::NelderMeadOptions,
}

impl Default for SparseOptions {
    fn default() -> Self {
        SparseOptions {
            m_inducing: 48,
            n_restarts: 2,
            nm: crate::optimize::NelderMeadOptions {
                max_evals: 120,
                f_tol: 1e-6,
                initial_step: 0.5,
            },
        }
    }
}

/// A fitted sparse (SGPR) Gaussian process.
///
/// State after fitting is `O(m²)` (plus the `m` inducing inputs); the
/// training inputs themselves are not retained.
#[derive(Debug, Clone)]
pub struct SparseGp {
    /// Inducing inputs.
    z: Vec<Vec<f64>>,
    kernel: Kernel,
    /// Noise variance of standardized targets.
    noise: f64,
    /// `chol(K_mm)` (jittered).
    l_mm: Cholesky,
    /// `chol(I + AAᵀ)`.
    l_b: Cholesky,
    /// `g = Aỹ/σ` — maintained across appends.
    g: Vec<f64>,
    /// `c = L_B⁻¹ g`.
    c: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Observations absorbed.
    n: usize,
    /// `ỹᵀỹ` of the absorbed (standardized) targets.
    yty: f64,
    /// `tr(K_nn − Q_nn)` in standardized units — the ELBO's slack term.
    qtrace: f64,
    elbo: f64,
}

/// Greedy max–min (k-center) selection of `m` inducing points from the
/// training inputs. Deterministic: starts from the point nearest the data
/// centroid, then repeatedly adds the point farthest from the selected
/// set (first index wins ties). Stops early when every remaining point
/// duplicates a selected one, so the returned set never contains exact
/// duplicates. Returns indices into `x`.
pub fn select_inducing(x: &[Vec<f64>], m: usize) -> Vec<usize> {
    let n = x.len();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    let d = x[0].len();
    let sq_dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(&p, &q)| (p - q) * (p - q))
            .sum::<f64>()
    };
    let mut centroid = vec![0.0; d];
    for row in x {
        for (c, &v) in centroid.iter_mut().zip(row) {
            *c += v;
        }
    }
    for c in &mut centroid {
        *c /= n as f64;
    }
    let mut first = 0;
    let mut best = f64::INFINITY;
    for (i, row) in x.iter().enumerate() {
        let dist = sq_dist(row, &centroid);
        if dist < best {
            best = dist;
            first = i;
        }
    }
    let mut selected = vec![first];
    let mut in_set = vec![false; n];
    in_set[first] = true;
    let mut min_d: Vec<f64> = x.iter().map(|row| sq_dist(row, &x[first])).collect();
    while selected.len() < m {
        let mut next = None;
        let mut far = 0.0;
        for (i, &dv) in min_d.iter().enumerate() {
            if !in_set[i] && dv > far {
                far = dv;
                next = Some(i);
            }
        }
        // far == 0 ⇒ every unselected point coincides with a selected one.
        let Some(next) = next else { break };
        selected.push(next);
        in_set[next] = true;
        for (dv, row) in min_d.iter_mut().zip(x) {
            let nd = sq_dist(row, &x[next]);
            if nd < *dv {
                *dv = nd;
            }
        }
    }
    selected
}

/// Factorizations and sufficient statistics of one SGPR model.
struct SgprCore {
    l_mm: Cholesky,
    l_b: Cholesky,
    g: Vec<f64>,
    c: Vec<f64>,
    qtrace: f64,
    elbo: f64,
}

/// Reusable buffers for the hot ELBO evaluations: the `m × n` cross-block
/// and the `m × m` inducing Gram matrix survive across Nelder–Mead steps.
struct SgprScratch {
    kmn: Matrix,
    kmm: Matrix,
    r2_mm: Vec<f64>,
}

/// Training-set views shared by every ELBO evaluation: inducing rows, the
/// cached inducing-pair distance tensor, and a dimension-major copy of
/// the inputs (`xt[k·n + j] = x_j[k]`) so the `K_mn` rebuild is `d`
/// contiguous fused sweeps with an L2-resident working set instead of
/// `O(n·m·d)` strided gathers.
struct SgprData<'a> {
    z: &'a [Vec<f64>],
    z_tensor: &'a PairTensor,
    xt: &'a [f64],
    n: usize,
}

/// Build all SGPR factors for fixed hyperparameters, using up to
/// `workers` threads for the `O(n·m)`/`O(n·m²)` pieces (`K_mn` rebuild,
/// forward solve, `VVᵀ`). `None` when a factorization fails (the
/// optimizer treats that as `+∞`).
fn sgpr_core(
    data: &SgprData<'_>,
    ys: &[f64],
    yty: f64,
    kernel: &Kernel,
    noise: f64,
    scratch: &mut SgprScratch,
    workers: usize,
) -> Option<SgprCore> {
    let m = data.z.len();
    let n = data.n;
    let w = kernel.inv_sq_lengthscales();
    let kdiag = kernel.diag_value();

    // K_mm from the cached inducing-pair tensor (m ≪ n: stays serial).
    data.z_tensor.weighted_r2(&w, &mut scratch.r2_mm);
    let kmm = &mut scratch.kmm;
    let mut p = 0;
    for i in 0..m {
        for j in 0..i {
            let v = kernel.eval_r2(scratch.r2_mm[p]);
            kmm[(i, j)] = v;
            kmm[(j, i)] = v;
            p += 1;
        }
        kmm[(i, i)] = kdiag;
    }
    let l_mm = Cholesky::new_jittered_with(kmm, workers).ok()?;

    // K_mn: d fused multiply-add sweeps over the dimension-major inputs,
    // then one profile pass. Inducing rows are disjoint in the row-major
    // buffer and every entry accumulates ascending-k, so row chunks are
    // bit-identical at any worker count.
    let kmn = &mut scratch.kmn;
    let fill_rows = |rows: &mut [f64], lo: usize| {
        rows.fill(0.0);
        for (k, &wk) in w.iter().enumerate() {
            let xk = &data.xt[k * n..(k + 1) * n];
            for (i, row) in rows.chunks_exact_mut(n).enumerate() {
                let zik = data.z[lo + i][k];
                for (r, &xv) in row.iter_mut().zip(xk) {
                    let dv = zik - xv;
                    *r += wk * dv * dv;
                }
            }
        }
        for r in rows.iter_mut() {
            *r = kernel.eval_r2(*r);
        }
    };
    let ww = if m * n < 16_384 {
        1
    } else {
        workers.max(1).min(m)
    };
    if ww <= 1 {
        fill_rows(kmn.as_mut_slice(), 0);
    } else {
        let rows_per = m.div_ceil(ww);
        std::thread::scope(|scope| {
            for (ci, chunk) in kmn.as_mut_slice().chunks_mut(rows_per * n).enumerate() {
                let fill_rows = &fill_rows;
                scope.spawn(move || fill_rows(chunk, ci * rows_per));
            }
        });
    }

    // V = L⁻¹K_mn in place; B = I + VVᵀ/σ² via the symmetric product.
    l_mm.solve_lower_multi_with(kmn, workers).ok()?;
    let tr_g: f64 = kmn.as_slice().iter().map(|&v| v * v).sum();
    let mut b = kmn.aat_with(workers);
    let inv_noise = 1.0 / noise;
    for v in b.as_mut_slice() {
        *v *= inv_noise;
    }
    b.add_diag(1.0);
    let l_b = Cholesky::new_jittered_with(&b, workers).ok()?;

    // g = Vỹ/σ², c = L_B⁻¹g.
    let mut g = kmn.mat_vec(ys);
    for v in &mut g {
        *v *= inv_noise;
    }
    let c = l_b.solve_lower(&g);
    let cc: f64 = c.iter().map(|&v| v * v).sum();

    let qtrace = (n as f64 * kdiag - tr_g).max(0.0);
    let elbo = -0.5
        * (n as f64 * (2.0 * std::f64::consts::PI).ln()
            + n as f64 * noise.ln()
            + l_b.log_det()
            + yty * inv_noise
            - cc
            + qtrace * inv_noise);
    if !elbo.is_finite() {
        return None;
    }
    Some(SgprCore {
        l_mm,
        l_b,
        g,
        c,
        qtrace,
        elbo,
    })
}

/// Dimension-major copy of the training inputs.
fn dim_major(x: &[Vec<f64>], d: usize) -> Vec<f64> {
    let n = x.len();
    let mut xt = vec![0.0; d * n];
    for (j, row) in x.iter().enumerate() {
        for (k, &v) in row.iter().enumerate() {
            xt[k * n + j] = v;
        }
    }
    xt
}

impl SparseGp {
    /// Fit with *fixed* hyperparameters and explicit inducing inputs (no
    /// optimization). `z` is typically a [`select_inducing`] subset of
    /// `x`; with `z = x` the model reproduces the exact GP posterior.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        z: Vec<Vec<f64>>,
        kernel: Kernel,
        noise: f64,
    ) -> Result<Self> {
        Self::fit_with(x, y, z, kernel, noise, par::global_threads())
    }

    /// [`SparseGp::fit`] with an explicit worker count (bit-identical at
    /// any count).
    fn fit_with(
        x: &[Vec<f64>],
        y: &[f64],
        z: Vec<Vec<f64>>,
        kernel: Kernel,
        noise: f64,
        workers: usize,
    ) -> Result<Self> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(GpError::BadShape(format!(
                "{n} inputs vs {} targets",
                y.len()
            )));
        }
        let d = kernel.dim();
        if x.iter().any(|r| r.len() != d) || z.iter().any(|r| r.len() != d) {
            return Err(GpError::BadShape(format!(
                "input dim mismatch (kernel expects {d})"
            )));
        }
        if z.is_empty() {
            return Err(GpError::BadShape("no inducing points".into()));
        }
        if !(noise.is_finite() && noise > 0.0) {
            return Err(GpError::BadShape(format!("noise {noise} must be > 0")));
        }
        check_finite(x, y)?;
        check_finite(&z, &[])?;
        let (y_mean, y_std) = standardization(y);
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        let yty: f64 = ys.iter().map(|&v| v * v).sum();

        let z_tensor = PairTensor::new(&z);
        let xt = dim_major(x, d);
        let m = z.len();
        let mut scratch = SgprScratch {
            kmn: Matrix::zeros(m, n),
            kmm: Matrix::zeros(m, m),
            r2_mm: vec![0.0; z_tensor.n_pairs()],
        };
        let data = SgprData {
            z: &z,
            z_tensor: &z_tensor,
            xt: &xt,
            n,
        };
        let core =
            sgpr_core(&data, &ys, yty, &kernel, noise, &mut scratch, workers).ok_or_else(|| {
                GpError::Factorization(
                    "SGPR factorization failed for the given hyperparameters".into(),
                )
            })?;
        Ok(SparseGp {
            z,
            kernel,
            noise,
            l_mm: core.l_mm,
            l_b: core.l_b,
            g: core.g,
            c: core.c,
            y_mean,
            y_std,
            n,
            yty,
            qtrace: core.qtrace,
            elbo: core.elbo,
        })
    }

    /// Train with ELBO-maximizing hyperparameters: the sparse analogue of
    /// [`Gp::train`], sharing its parametrization `[ln σ², ln ℓ₁.., ln
    /// ℓ_d, (ln σ_n²)]`, noise handling and restart-jitter scheme, but
    /// driving the `O(n·m²)` variational bound instead of the `O(n³)`
    /// marginal likelihood. Inducing points are a [`select_inducing`]
    /// k-center subset of size [`SparseOptions::m_inducing`].
    pub fn train(x: &[Vec<f64>], y: &[f64], cfg: &GpConfig) -> Result<Self> {
        Self::train_traced(x, y, cfg).map(|(gp, _)| gp)
    }

    /// [`SparseGp::train`] plus the optimizer's ELBO trajectory: entry `k`
    /// is the best bound seen after the `k`-th objective evaluation
    /// (`−∞` until the first successful factorization). The sequence is
    /// non-decreasing by construction — exposed so tests can pin that
    /// property down — and its last entry equals the returned model's
    /// [`SparseGp::elbo`].
    pub fn train_traced(x: &[Vec<f64>], y: &[f64], cfg: &GpConfig) -> Result<(Self, Vec<f64>)> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(GpError::BadShape(format!(
                "{n} inputs vs {} targets",
                y.len()
            )));
        }
        let d = x[0].len();
        if d == 0 || x.iter().any(|r| r.len() != d) {
            return Err(GpError::BadShape("ragged or zero-dim inputs".into()));
        }
        check_finite(x, y)?;

        let (y_mean, y_std) = standardization(y);
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        let yty: f64 = ys.iter().map(|&v| v * v).sum();
        let opt_noise = cfg.optimize_noise;
        let floor = cfg.noise_floor.max(1e-12);

        let idx = select_inducing(x, cfg.sparse.m_inducing.max(1));
        let z: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let m = z.len();
        let z_tensor = PairTensor::new(&z);
        let xt = dim_major(x, d);
        let data = SgprData {
            z: &z,
            z_tensor: &z_tensor,
            xt: &xt,
            n,
        };

        // Worker budget: ELBO restarts on the outside, the O(n·m²)
        // linear algebra inside each restart (see `Gp::train`).
        let threads = cfg.par.resolve();
        let starts = cfg.sparse.n_restarts.max(1);
        let ow = threads.min(starts);
        let iw = (threads / ow).max(1);

        // One restart: Nelder–Mead from `p0` with its own scratch and its
        // own *raw* ELBO sequence, so restarts can run concurrently.
        let run_start = |p0: &[f64]| -> ((Vec<f64>, f64), Vec<f64>) {
            let scratch = std::cell::RefCell::new(SgprScratch {
                kmn: Matrix::zeros(m, n),
                kmm: Matrix::zeros(m, m),
                r2_mm: vec![0.0; z_tensor.n_pairs()],
            });
            let raw = std::cell::RefCell::new(Vec::new());
            let neg_elbo = |p: &[f64]| -> f64 {
                let (kp, noise) = if opt_noise {
                    let (kp, np_) = p.split_at(p.len() - 1);
                    (kp, np_[0].clamp(-27.0, 3.0).exp().max(floor))
                } else {
                    (p, floor)
                };
                let kernel = Kernel::from_log_params(cfg.kernel, kp);
                let mut s = scratch.borrow_mut();
                let value = match sgpr_core(&data, &ys, yty, &kernel, noise, &mut s, iw) {
                    Some(core) => -core.elbo,
                    None => f64::INFINITY,
                };
                raw.borrow_mut().push(-value);
                value
            };
            let out = nelder_mead(neg_elbo, p0, &cfg.sparse.nm);
            (out, raw.into_inner())
        };

        // Start points are pre-drawn in restart order from the single RNG
        // stream (Nelder–Mead consumes no randomness), and the public
        // trace is rebuilt below as the running best over raw per-restart
        // sequences concatenated in restart order — exactly what the
        // shared sequential trace recorded. Both the trace and the winner
        // fold are therefore bit-identical at any worker count.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let p0s: Vec<Vec<f64>> = (0..starts)
            .map(|s| {
                let mut p0 = Kernel::new(cfg.kernel, d).to_log_params();
                if opt_noise {
                    p0.push((1e-3_f64).ln());
                }
                if s > 0 {
                    for v in &mut p0 {
                        *v += rng.random_range(-1.5..1.5);
                    }
                }
                p0
            })
            .collect();
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut trace: Vec<f64> = Vec::new();
        for ((p, f), raw) in par::map_indexed(ow, starts, |s| run_start(&p0s[s])) {
            for v in raw {
                let prev = trace.last().copied().unwrap_or(f64::NEG_INFINITY);
                trace.push(prev.max(v));
            }
            if f.is_finite() && best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                best = Some((p, f));
            }
        }
        let (p, _) = best
            .ok_or_else(|| GpError::TrainingFailed("no restart produced a finite ELBO".into()))?;
        let (kp, noise) = if opt_noise {
            let (kp, np_) = p.split_at(p.len() - 1);
            (kp, np_[0].clamp(-27.0, 3.0).exp().max(floor))
        } else {
            (p.as_slice(), floor)
        };
        let kernel = Kernel::from_log_params(cfg.kernel, kp);
        let gp = Self::fit_with(x, y, z, kernel, noise, threads)?;
        Ok((gp, trace))
    }

    /// Predictive mean and variance (original units) at `x_star`.
    pub fn predict(&self, x_star: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self
            .z
            .iter()
            .map(|zi| self.kernel.eval(zi, x_star))
            .collect();
        let v = self.l_mm.solve_lower(&k_star);
        let w = self.l_b.solve_lower(&v);
        let mean_std: f64 = w.iter().zip(&self.c).map(|(&a, &b)| a * b).sum();
        let vv: f64 = v.iter().map(|&a| a * a).sum();
        let ww: f64 = w.iter().map(|&a| a * a).sum();
        let var_std = (self.kernel.diag_value() + self.noise - vv + ww).max(0.0);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Predictive mean only.
    pub fn predict_mean(&self, x_star: &[f64]) -> f64 {
        self.predict(x_star).0
    }

    /// Batched prediction — the sparse analogue of [`Gp::predict_batch`],
    /// with the same **chunk-invariance** guarantee: every candidate's
    /// result comes from a fixed per-column operation sequence, so any
    /// split of a batch concatenates to bit-identical results (the BO
    /// loop's parallel scorer relies on this).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let q = xs.len();
        let m = self.z.len();
        if q == 0 {
            return Vec::new();
        }
        debug_assert!(xs.iter().all(|p| p.len() == self.kernel.dim()));
        let w = self.kernel.inv_sq_lengthscales();
        let d = self.kernel.dim();
        let qt = dim_major(xs, d);
        let mut kstar = Matrix::zeros(m, q);
        for (i, zi) in self.z.iter().enumerate() {
            let row = kstar.row_mut(i);
            for (k, (&zik, &wk)) in zi.iter().zip(&w).enumerate() {
                let qk = &qt[k * q..(k + 1) * q];
                for (rj, &qv) in row.iter_mut().zip(qk) {
                    let dv = zik - qv;
                    *rj += wk * dv * dv;
                }
            }
            for rj in row.iter_mut() {
                *rj = self.kernel.eval_r2(*rj);
            }
        }
        // V = L⁻¹K⋆, then W = L_B⁻¹V, both in place.
        if self.l_mm.solve_lower_multi(&mut kstar).is_err() {
            return xs.iter().map(|p| self.predict(p)).collect();
        }
        let mut vv = vec![0.0; q];
        for i in 0..m {
            for (s, &v) in vv.iter_mut().zip(kstar.row(i)) {
                *s += v * v;
            }
        }
        if self.l_b.solve_lower_multi(&mut kstar).is_err() {
            return xs.iter().map(|p| self.predict(p)).collect();
        }
        let mut mean = vec![0.0; q];
        let mut ww = vec![0.0; q];
        for (i, &ci) in self.c.iter().enumerate() {
            for ((mu, s), &v) in mean.iter_mut().zip(ww.iter_mut()).zip(kstar.row(i)) {
                *mu += ci * v;
                *s += v * v;
            }
        }
        let prior = self.kernel.diag_value() + self.noise;
        let var_scale = self.y_std * self.y_std;
        mean.iter()
            .zip(vv.iter().zip(&ww))
            .map(|(&mu, (&sv, &sw))| {
                (
                    mu * self.y_std + self.y_mean,
                    (prior - sv + sw).max(0.0) * var_scale,
                )
            })
            .collect()
    }

    /// Absorb one new observation in `O(m²)`: the new column of `A` is
    /// `a = L⁻¹k(Z, x)/σ`, `B ← B + aaᵀ` via a plane-rotation rank-one
    /// Cholesky update, `g ← g + a·ỹ/σ`, and `c` is one triangular solve.
    /// The inducing set, hyperparameters and target standardization stay
    /// fixed — like [`Gp::append`], this is the between-retrains fast
    /// path, not a substitute for periodic refits.
    pub fn append(&mut self, x_new: Vec<f64>, y_new: f64) -> Result<()> {
        if x_new.len() != self.kernel.dim() {
            return Err(GpError::BadShape(format!(
                "append: input dim {} != {}",
                x_new.len(),
                self.kernel.dim()
            )));
        }
        check_finite(std::slice::from_ref(&x_new), &[y_new])?;
        let k_new: Vec<f64> = self
            .z
            .iter()
            .map(|zi| self.kernel.eval(zi, &x_new))
            .collect();
        let v = self.l_mm.solve_lower(&k_new);
        let sigma = self.noise.sqrt();
        let a: Vec<f64> = v.iter().map(|&t| t / sigma).collect();
        self.l_b
            .rank_one_update(&a)
            .map_err(|e| GpError::Factorization(e.to_string()))?;
        let y_std = (y_new - self.y_mean) / self.y_std;
        for (gi, &ai) in self.g.iter_mut().zip(&a) {
            *gi += ai * y_std / sigma;
        }
        self.c = self.l_b.solve_lower(&self.g);
        self.n += 1;
        self.yty += y_std * y_std;
        let vv: f64 = v.iter().map(|&t| t * t).sum();
        self.qtrace += (self.kernel.diag_value() - vv).max(0.0);
        let cc: f64 = self.c.iter().map(|&t| t * t).sum();
        let inv_noise = 1.0 / self.noise;
        self.elbo = -0.5
            * (self.n as f64 * (2.0 * std::f64::consts::PI).ln()
                + self.n as f64 * self.noise.ln()
                + self.l_b.log_det()
                + self.yty * inv_noise
                - cc
                + self.qtrace * inv_noise);
        Ok(())
    }

    /// The evidence lower bound of the absorbed observations — the sparse
    /// tier's counterpart of [`Gp::lml`] (always `≤` the exact LML on the
    /// same data and hyperparameters; equal when `Z = X`).
    pub fn elbo(&self) -> f64 {
        self.elbo
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The fitted noise variance (standardized-target units).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Number of observations absorbed (training set plus appends).
    pub fn n_train(&self) -> usize {
        self.n
    }

    /// Number of inducing points.
    pub fn n_inducing(&self) -> usize {
        self.z.len()
    }

    /// The inducing inputs.
    pub fn inducing(&self) -> &[Vec<f64>] {
        &self.z
    }
}

/// Which tier a [`Surrogate`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateTier {
    /// Exact `O(n³)` GP.
    Exact,
    /// Sparse `O(n·m²)` SGPR.
    Sparse,
}

/// The tier-selection layer over [`Gp`] and [`SparseGp`]: one surrogate
/// type for search loops, with the tier picked per training call from
/// [`GpConfig::tier`].
///
/// When the policy resolves to the exact tier, [`Surrogate::train`] calls
/// [`Gp::train`] with the unmodified config — predictions are
/// **bit-identical** to using `Gp` directly (the proptest oracle pins
/// this down), so enabling the tier layer cannot perturb existing small-N
/// searches.
#[derive(Debug, Clone)]
pub enum Surrogate {
    /// Exact tier.
    Exact(Gp),
    /// Sparse tier.
    Sparse(SparseGp),
}

impl Surrogate {
    /// Train the tier selected by `cfg.tier` for `x.len()` points.
    pub fn train(x: &[Vec<f64>], y: &[f64], cfg: &GpConfig) -> Result<Self> {
        match cfg.tier.select(x.len()) {
            SurrogateTier::Exact => Gp::train(x, y, cfg).map(Surrogate::Exact),
            SurrogateTier::Sparse => SparseGp::train(x, y, cfg).map(Surrogate::Sparse),
        }
    }

    /// The active tier.
    pub fn tier(&self) -> SurrogateTier {
        match self {
            Surrogate::Exact(_) => SurrogateTier::Exact,
            Surrogate::Sparse(_) => SurrogateTier::Sparse,
        }
    }

    /// Refit on `x`/`y` keeping the current tier and hyperparameters
    /// (fresh factorization, no optimizer) — the fallback when
    /// [`Surrogate::append`] loses definiteness. The sparse tier
    /// re-derives its inducing set from the new inputs with the same
    /// inducing count.
    pub fn refit(&self, x: &[Vec<f64>], y: &[f64]) -> Result<Self> {
        match self {
            Surrogate::Exact(gp) => {
                Gp::fit(x, y, gp.kernel().clone(), gp.noise()).map(Surrogate::Exact)
            }
            Surrogate::Sparse(sp) => {
                let idx = select_inducing(x, sp.n_inducing().max(1));
                let z: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
                SparseGp::fit(x, y, z, sp.kernel().clone(), sp.noise()).map(Surrogate::Sparse)
            }
        }
    }

    /// Predictive mean and variance (original units).
    pub fn predict(&self, x_star: &[f64]) -> (f64, f64) {
        match self {
            Surrogate::Exact(gp) => gp.predict(x_star),
            Surrogate::Sparse(sp) => sp.predict(x_star),
        }
    }

    /// Predictive mean only.
    pub fn predict_mean(&self, x_star: &[f64]) -> f64 {
        match self {
            Surrogate::Exact(gp) => gp.predict_mean(x_star),
            Surrogate::Sparse(sp) => sp.predict_mean(x_star),
        }
    }

    /// Batched prediction (chunk-invariant on both tiers).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        match self {
            Surrogate::Exact(gp) => gp.predict_batch(xs),
            Surrogate::Sparse(sp) => sp.predict_batch(xs),
        }
    }

    /// Absorb one observation incrementally (`O(n²)` exact, `O(m²)`
    /// sparse); on failure fall back to [`Surrogate::refit`].
    pub fn append(&mut self, x_new: Vec<f64>, y_new: f64) -> Result<()> {
        match self {
            Surrogate::Exact(gp) => gp.append(x_new, y_new),
            Surrogate::Sparse(sp) => sp.append(x_new, y_new),
        }
    }

    /// Number of observations the surrogate has absorbed.
    pub fn n_train(&self) -> usize {
        match self {
            Surrogate::Exact(gp) => gp.n_train(),
            Surrogate::Sparse(sp) => sp.n_train(),
        }
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        match self {
            Surrogate::Exact(gp) => gp.kernel(),
            Surrogate::Sparse(sp) => sp.kernel(),
        }
    }

    /// The fitted noise variance (standardized-target units).
    pub fn noise(&self) -> f64 {
        match self {
            Surrogate::Exact(gp) => gp.noise(),
            Surrogate::Sparse(sp) => sp.noise(),
        }
    }

    /// Model-evidence proxy: exact log marginal likelihood or the sparse
    /// tier's ELBO.
    pub fn evidence(&self) -> f64 {
        match self {
            Surrogate::Exact(gp) => gp.lml(),
            Surrogate::Sparse(sp) => sp.elbo(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v: &Vec<f64>| {
                (3.0 * v[0]).sin() + v.iter().skip(1).map(|&t| 0.5 * t * t).sum::<f64>()
            })
            .collect();
        (x, y)
    }

    #[test]
    fn select_inducing_is_deterministic_and_spread_out() {
        let (x, _) = dataset(60, 2, 1);
        let a = select_inducing(&x, 10);
        let b = select_inducing(&x, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // No repeats.
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn select_inducing_stops_at_duplicates() {
        let x = vec![vec![0.1], vec![0.1], vec![0.9], vec![0.9]];
        let idx = select_inducing(&x, 4);
        assert_eq!(idx.len(), 2, "only two distinct sites: {idx:?}");
    }

    #[test]
    fn sparse_with_all_points_matches_exact_gp() {
        let (x, y) = dataset(20, 2, 7);
        let kernel = Kernel::with_params(KernelKind::SquaredExp, 1.3, vec![0.4, 0.6]);
        let noise = 1e-4;
        let exact = Gp::fit(&x, &y, kernel.clone(), noise).unwrap();
        let sparse = SparseGp::fit(&x, &y, x.clone(), kernel, noise).unwrap();
        for probe in [[0.25, 0.5], [0.7, 0.1], [0.9, 0.9]] {
            let (me, ve) = exact.predict(&probe);
            let (ms, vs) = sparse.predict(&probe);
            assert!((me - ms).abs() < 1e-5, "mean {me} vs {ms}");
            assert!((ve - vs).abs() < 1e-5, "var {ve} vs {vs}");
        }
        // The bound is tight at Z = X.
        assert!(
            (exact.lml() - sparse.elbo()).abs() < 1e-4,
            "lml {} vs elbo {}",
            exact.lml(),
            sparse.elbo()
        );
    }

    #[test]
    fn elbo_lower_bounds_exact_lml() {
        let (x, y) = dataset(40, 2, 3);
        let kernel = Kernel::with_params(KernelKind::Matern52, 1.0, vec![0.3, 0.3]);
        let noise = 1e-3;
        let exact = Gp::fit(&x, &y, kernel.clone(), noise).unwrap();
        let idx = select_inducing(&x, 12);
        let z: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let sparse = SparseGp::fit(&x, &y, z, kernel, noise).unwrap();
        assert!(
            sparse.elbo() <= exact.lml() + 1e-6,
            "elbo {} above lml {}",
            sparse.elbo(),
            exact.lml()
        );
    }

    #[test]
    fn train_recovers_smooth_function() {
        let (x, y) = dataset(120, 2, 11);
        let cfg = GpConfig {
            tier: TierPolicy::Sparse,
            ..Default::default()
        };
        let sp = SparseGp::train(&x, &y, &cfg).unwrap();
        // Prediction error well under the data spread on held-out probes.
        let (probes, truth) = dataset(20, 2, 99);
        let mut mse = 0.0;
        for (p, t) in probes.iter().zip(&truth) {
            let m = sp.predict_mean(p);
            mse += (m - t) * (m - t);
        }
        mse /= probes.len() as f64;
        assert!(mse < 0.05, "MSE {mse}");
    }

    #[test]
    fn append_matches_fresh_fit() {
        let (x, y) = dataset(30, 2, 5);
        let kernel = Kernel::with_params(KernelKind::SquaredExp, 1.0, vec![0.4, 0.4]);
        let noise = 1e-3;
        let idx = select_inducing(&x[..29], 10);
        let z: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let mut inc = SparseGp::fit(&x[..29], &y[..29], z.clone(), kernel.clone(), noise).unwrap();
        inc.append(x[29].clone(), y[29]).unwrap();
        assert_eq!(inc.n_train(), 30);
        // A fresh fit with the same inducing set and the same
        // standardization constants would match exactly; the fresh fit
        // re-standardizes on all 30 targets, so tolerances are loose in
        // the same way Gp::append's are.
        let fresh = SparseGp::fit(&x, &y, z, kernel, noise).unwrap();
        for probe in [[0.2, 0.3], [0.6, 0.8]] {
            let (mi, vi) = inc.predict(&probe);
            let (mf, vf) = fresh.predict(&probe);
            assert!((mi - mf).abs() < 5e-2, "mean {mi} vs {mf}");
            assert!((vi - vf).abs() < 5e-2, "var {vi} vs {vf}");
        }
        // ELBO bookkeeping stays consistent with a from-scratch model when
        // the standardization constants agree: re-fit on the first 29 with
        // the 30th appended twice gives identical state transitions.
        assert!(inc.elbo().is_finite());
    }

    #[test]
    fn predict_batch_matches_scalar_and_is_chunk_invariant() {
        let (x, y) = dataset(50, 3, 13);
        let cfg = GpConfig {
            tier: TierPolicy::Sparse,
            ..Default::default()
        };
        let sp = SparseGp::train(&x, &y, &cfg).unwrap();
        let (probes, _) = dataset(17, 3, 42);
        let batch = sp.predict_batch(&probes);
        for (p, &(mb, vb)) in probes.iter().zip(&batch) {
            let (ms, vs) = sp.predict(p);
            assert!((mb - ms).abs() < 1e-8, "mean {mb} vs {ms}");
            assert!((vb - vs).abs() < 1e-8, "var {vb} vs {vs}");
        }
        // Chunk invariance: any split concatenates bit-identically.
        let (head, tail) = probes.split_at(5);
        let mut split = sp.predict_batch(head);
        split.extend(sp.predict_batch(tail));
        assert_eq!(batch, split);
    }

    #[test]
    fn surrogate_auto_tier_switches_on_threshold() {
        let (x, y) = dataset(40, 2, 17);
        let cfg = GpConfig {
            tier: TierPolicy::Auto { threshold: 30 },
            ..Default::default()
        };
        let below = Surrogate::train(&x[..20], &y[..20], &cfg).unwrap();
        assert_eq!(below.tier(), SurrogateTier::Exact);
        let above = Surrogate::train(&x, &y, &cfg).unwrap();
        assert_eq!(above.tier(), SurrogateTier::Sparse);
    }

    #[test]
    fn surrogate_exact_tier_is_bit_identical_to_gp_train() {
        let (x, y) = dataset(25, 2, 23);
        let cfg = GpConfig::default(); // Auto { threshold: 512 } ⇒ exact
        let sur = Surrogate::train(&x, &y, &cfg).unwrap();
        let gp = Gp::train(&x, &y, &cfg).unwrap();
        assert_eq!(sur.tier(), SurrogateTier::Exact);
        for probe in [[0.2, 0.4], [0.8, 0.1]] {
            let (ms, vs) = sur.predict(&probe);
            let (mg, vg) = gp.predict(&probe);
            assert_eq!(ms, mg);
            assert_eq!(vs, vg);
        }
    }

    #[test]
    fn surrogate_refit_preserves_tier_and_hyperparameters() {
        let (x, y) = dataset(60, 2, 29);
        let cfg = GpConfig {
            tier: TierPolicy::Sparse,
            ..Default::default()
        };
        let sur = Surrogate::train(&x, &y, &cfg).unwrap();
        let re = sur.refit(&x, &y).unwrap();
        assert_eq!(re.tier(), SurrogateTier::Sparse);
        assert_eq!(re.noise(), sur.noise());
        assert_eq!(re.kernel().lengthscales(), sur.kernel().lengthscales());
    }

    #[test]
    fn bad_shapes_rejected() {
        let kernel = Kernel::new(KernelKind::SquaredExp, 2);
        assert!(SparseGp::fit(&[], &[], vec![vec![0.0, 0.0]], kernel.clone(), 1e-4).is_err());
        assert!(
            SparseGp::fit(&[vec![0.0, 0.0]], &[1.0], Vec::new(), kernel.clone(), 1e-4).is_err()
        );
        assert!(SparseGp::fit(
            &[vec![0.0, 0.0]],
            &[1.0],
            vec![vec![0.0]],
            kernel.clone(),
            1e-4
        )
        .is_err());
        assert!(
            SparseGp::fit(&[vec![0.0, 0.0]], &[1.0], vec![vec![0.0, 0.0]], kernel, 0.0).is_err()
        );
    }

    #[test]
    fn non_finite_rejected() {
        let kernel = Kernel::new(KernelKind::SquaredExp, 1);
        let x = vec![vec![0.1], vec![0.9]];
        assert!(
            SparseGp::fit(&x, &[1.0, f64::NAN], vec![vec![0.1]], kernel.clone(), 1e-4).is_err()
        );
        let mut sp = SparseGp::fit(&x, &[1.0, 2.0], x.clone(), kernel, 1e-4).unwrap();
        assert!(sp.append(vec![f64::INFINITY], 0.0).is_err());
        assert!(sp.append(vec![0.5], f64::NAN).is_err());
    }
}
