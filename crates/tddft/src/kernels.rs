//! Cost models for the five tunable CUDA kernels of the Slater-determinant
//! offload (paper Section V-A).

use crate::gpu::GpuArch;

/// The five custom kernels (plus cuFFT, modelled in [`GpuArch`]).
///
/// Paper-reported share of GPU compute time at defaults: cuFFT 61.4%,
/// cuZcopy 14.2%, cuVec2Zvec 12.4%, cuPairwise 4.9%, cuDscal 4.2%,
/// cuZvec2Vec 2.9%. The per-kernel byte multipliers below reproduce that
/// ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// `cuVec2Zvec` — moves data from one domain structure to the other.
    Vec2Zvec,
    /// `cuZcopy` — matrix transpose & padding copies (used in Groups 1 & 3).
    Zcopy,
    /// `cuDscal` — coefficient scaling for cuFFT.
    Dscal,
    /// `cuPairwise` — pairwise multiplication.
    Pairwise,
    /// `cuZvec2Vec` — inverse domain move.
    Zvec2Vec,
}

impl KernelId {
    /// Short name used in parameter identifiers (`u_vec`, `tb_zcopy`, ...).
    pub fn short(&self) -> &'static str {
        match self {
            KernelId::Vec2Zvec => "vec",
            KernelId::Zcopy => "zcopy",
            KernelId::Dscal => "dscal",
            KernelId::Pairwise => "pair",
            KernelId::Zvec2Vec => "zvec",
        }
    }

    /// All five kernels.
    pub fn all() -> [KernelId; 5] {
        [
            KernelId::Vec2Zvec,
            KernelId::Zcopy,
            KernelId::Dscal,
            KernelId::Pairwise,
            KernelId::Zvec2Vec,
        ]
    }

    /// Bytes moved per double-complex element processed (reads + writes,
    /// including padding overheads). Calibrated to the paper's compute-time
    /// shares.
    pub fn bytes_per_element(&self) -> f64 {
        match self {
            // Transpose & padding: strided read + padded write.
            KernelId::Zcopy => 20.0,    // ×2 call sites ≈ 14.2% share
            KernelId::Vec2Zvec => 35.0, // scatter into zvec layout, 12.4%
            KernelId::Pairwise => 14.0, // two reads, one write, 4.9%
            KernelId::Dscal => 12.0,    // read-modify-write, 4.2%
            KernelId::Zvec2Vec => 8.0,  // gather, 2.9%
        }
    }

    /// The unroll factor at which this kernel's inner loop saturates the
    /// load/store units (differs per kernel because of their access
    /// patterns).
    pub fn optimal_unroll(&self) -> u32 {
        match self {
            KernelId::Vec2Zvec => 4,
            KernelId::Zcopy => 2,
            KernelId::Dscal => 4,
            KernelId::Pairwise => 2,
            KernelId::Zvec2Vec => 4,
        }
    }
}

/// One kernel's tuning parameters (paper Table IV: `u`, `tb`, `tb_sm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Loop unrolling factor ∈ {1, 2, 4, 8}.
    pub unroll: u32,
    /// Threadblock size ∈ {32, 64, ..., 1024}.
    pub tb: u32,
    /// Target active threadblocks per SM ∈ 1..=32.
    pub tb_sm: u32,
}

/// Cost model for one kernel under given parameters.
#[derive(Debug, Clone)]
pub struct KernelCost<'a> {
    gpu: &'a GpuArch,
    kernel: KernelId,
    params: KernelParams,
}

impl<'a> KernelCost<'a> {
    /// Bind a kernel and its parameters to an architecture.
    pub fn new(gpu: &'a GpuArch, kernel: KernelId, params: KernelParams) -> Self {
        KernelCost {
            gpu,
            kernel,
            params,
        }
    }

    /// Unroll efficiency: a log-distance penalty around the kernel's
    /// optimal unroll, plus a register-pressure penalty when
    /// `unroll × tb` exceeds the register-file comfort zone.
    pub fn unroll_efficiency(&self) -> f64 {
        let u = self.params.unroll.max(1) as f64;
        let opt = self.kernel.optimal_unroll() as f64;
        let mismatch = (u.log2() - opt.log2()).abs();
        let base = 1.0 / (1.0 + 0.12 * mismatch);
        let pressure = (u * self.params.tb as f64) / 4096.0;
        let reg_penalty = if pressure > 1.0 {
            1.0 / (1.0 + 0.15 * (pressure - 1.0))
        } else {
            1.0
        };
        base * reg_penalty
    }

    /// Execution time in seconds for `elements` double-complex elements.
    pub fn time(&self, elements: usize) -> f64 {
        let occ = self.gpu.occupancy(self.params.tb, self.params.tb_sm);
        let eff = self.gpu.occupancy_efficiency(occ) * self.unroll_efficiency();
        let bytes = elements as f64 * self.kernel.bytes_per_element();
        self.gpu.launch_overhead + bytes / (self.gpu.mem_bw * eff.max(1e-3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuArch {
        GpuArch::a100()
    }

    fn params(u: u32, tb: u32, tb_sm: u32) -> KernelParams {
        KernelParams {
            unroll: u,
            tb,
            tb_sm,
        }
    }

    #[test]
    fn short_names_unique() {
        let names: std::collections::BTreeSet<&str> =
            KernelId::all().iter().map(|k| k.short()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn higher_occupancy_is_faster() {
        let g = gpu();
        let k = KernelId::Zcopy;
        let slow = KernelCost::new(&g, k, params(2, 64, 1)).time(1 << 22);
        let fast = KernelCost::new(&g, k, params(2, 64, 32)).time(1 << 22);
        assert!(fast < slow, "{fast} !< {slow}");
    }

    #[test]
    fn optimal_unroll_is_fastest() {
        let g = gpu();
        for k in KernelId::all() {
            let opt = k.optimal_unroll();
            let t_opt = KernelCost::new(&g, k, params(opt, 128, 16)).time(1 << 22);
            for u in [1u32, 2, 4, 8] {
                let t = KernelCost::new(&g, k, params(u, 128, 16)).time(1 << 22);
                assert!(
                    t >= t_opt - 1e-15,
                    "{k:?}: unroll {u} ({t}) beat optimal {opt} ({t_opt})"
                );
            }
        }
    }

    #[test]
    fn register_pressure_penalizes_big_unroll_with_big_blocks() {
        let g = gpu();
        let k = KernelId::Dscal;
        // tb = 1024, unroll 8 → pressure 2.0 (penalized). Keep occupancy
        // equal: 1024×2 and 1024×2.
        let gentle = KernelCost::new(&g, k, params(4, 512, 4));
        let pressured = KernelCost::new(&g, k, params(8, 1024, 2));
        // Same occupancy (2048 threads), same mismatch magnitude from
        // optimal (4→4 = 0 vs 8→4 = 1)... pressured must be slower.
        assert!(pressured.time(1 << 22) > gentle.time(1 << 22));
        assert!(pressured.unroll_efficiency() < gentle.unroll_efficiency());
    }

    #[test]
    fn byte_weights_reproduce_paper_share_ordering() {
        // At equal parameters, per-element cost ordering should be
        // zcopy(×2 sites) > vec > pair > dscal > zvec, matching the
        // paper's 14.2 / 12.4 / 4.9 / 4.2 / 2.9 percent shares
        // (zcopy appears twice so its single-call weight may be below
        // vec's; compare doubled).
        let g = gpu();
        let t = |k: KernelId| KernelCost::new(&g, k, params(2, 128, 16)).time(1 << 22);
        assert!(2.0 * t(KernelId::Zcopy) > t(KernelId::Vec2Zvec));
        assert!(t(KernelId::Vec2Zvec) > t(KernelId::Pairwise));
        assert!(t(KernelId::Pairwise) > t(KernelId::Dscal));
        assert!(t(KernelId::Dscal) > t(KernelId::Zvec2Vec));
    }

    #[test]
    fn launch_overhead_floors_small_kernels() {
        let g = gpu();
        let t = KernelCost::new(&g, KernelId::Zvec2Vec, params(4, 256, 8)).time(1);
        assert!(t >= g.launch_overhead);
    }

    #[test]
    fn time_scales_linearly_in_elements() {
        let g = gpu();
        let c = KernelCost::new(&g, KernelId::Pairwise, params(2, 256, 8));
        let t1 = c.time(1 << 20) - g.launch_overhead;
        let t4 = c.time(1 << 22) - g.launch_overhead;
        assert!((t4 / t1 - 4.0).abs() < 1e-6);
    }
}
