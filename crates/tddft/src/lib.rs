//! # cets-tddft
//!
//! A discrete **performance simulator** of the paper's GPU-offloaded
//! RT-TDDFT application (QBox-based, Section V): the recurrent Slater
//! Determinant computation with five tunable CUDA kernels, a batched 3D
//! cuFFT, CUDA-stream overlap, host↔device transfers, and a 3-dimensional
//! MPI grid — 20 tuning parameters in total (paper Table IV).
//!
//! ## Why a simulator (substitution note, see DESIGN.md §2)
//!
//! The paper measures on Perlmutter A100 nodes. This crate replaces the
//! machine with an analytic cost model that exhibits the *same qualitative
//! sensitivity structure* the paper reports (Tables V & VI), which is all
//! the methodology consumes:
//!
//! * `nbatches` dominates the per-invocation time of every GPU kernel
//!   group (it scales the work per launch) — paper: 320-357% variability;
//! * `nstb` dominates the Slater-region time (it sets the local band count
//!   and hence the loop trip count);
//! * the occupancy rule `tb · tb_sm ≤ 2048` constrains every kernel;
//! * Group 2's `tb_PAIR`/`tb_sm_PAIR` influence **Group 3** through an L2
//!   cache-residency interference term — the paper's "unexpected"
//!   interdependence attributed to GPU-cache effects;
//! * the MPI grid contributes load imbalance (non-divisor decompositions)
//!   and a log-P reduction cost.
//!
//! ## Structure
//!
//! * [`GpuArch`] — A100-like occupancy/bandwidth model ([`gpu`]);
//! * [`KernelId`], kernel cost models ([`kernels`]);
//! * [`CaseStudy`] — the two material systems of Section VII;
//! * [`TddftSimulator`] — the [`Objective`] implementation, exposing the
//!   routine observables `G1`, `G2`, `G3` (mean per-invocation group
//!   times), `Slater` (the full region) and `MPI` (total application
//!   time).

pub mod cpu;
pub mod gpu;
pub mod kernels;

pub use cpu::{CpuArch, CpuBreakdown, CpuQbox};
pub use gpu::GpuArch;
pub use kernels::{KernelCost, KernelId, KernelParams};

use cets_core::{Objective, Observation};
use cets_space::{Config, Constraint, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A physical system to simulate (paper Section VII).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// Display name.
    pub name: String,
    /// Number of spin channels.
    pub nspin: usize,
    /// Number of k-points.
    pub nkpoints: usize,
    /// Number of electron bands.
    pub nbands: usize,
    /// FFT size in double-complex elements per band.
    pub fft_size: usize,
    /// Maximum MPI ranks (paper: 10 nodes × 4 GPU-bound ranks).
    pub max_ranks: usize,
}

impl CaseStudy {
    /// Case Study 1: magnesium-porphyrin molecule — 1 spin, 1 k-point,
    /// 64 bands, 3M-element FFT.
    pub fn case1() -> Self {
        CaseStudy {
            name: "Case Study 1 (Mg-porphyrin)".into(),
            nspin: 1,
            nkpoints: 1,
            nbands: 64,
            fft_size: 3_000_000,
            max_ranks: 40,
        }
    }

    /// Case Study 2: 4×4 hexagonal boron-nitride slab — 1 spin, 36
    /// k-points, 64 bands, 620k-element FFT.
    pub fn case2() -> Self {
        CaseStudy {
            name: "Case Study 2 (hBN slab)".into(),
            nspin: 1,
            nkpoints: 36,
            nbands: 64,
            fft_size: 620_000,
            max_ranks: 40,
        }
    }
}

/// The RT-TDDFT application simulator.
#[derive(Debug, Clone)]
pub struct TddftSimulator {
    case: CaseStudy,
    gpu: GpuArch,
    space: SearchSpace,
    noise_sigma: f64,
    seed: u64,
    rt_iterations: usize,
    scf_iterations: usize,
}

/// The five custom kernels in space order, with their routine group.
const KERNELS: [(KernelId, &str); 5] = [
    (KernelId::Dscal, "G3"),
    (KernelId::Pairwise, "G2"),
    (KernelId::Zcopy, "G1"), // shared with G3; reassigned by step 5
    (KernelId::Vec2Zvec, "G1"),
    (KernelId::Zvec2Vec, "G3"),
];

impl TddftSimulator {
    /// Build the simulator for a case study with default noise (2%).
    pub fn new(case: CaseStudy) -> Self {
        let space = Self::build_space(&case, false);
        TddftSimulator {
            case,
            gpu: GpuArch::a100(),
            space,
            noise_sigma: 0.02,
            seed: 0,
            rt_iterations: 1,
            scf_iterations: 1,
        }
    }

    /// Simulate the full outer loops of the pseudo-code (`rtiterations` ×
    /// SCF iterations) instead of the single pass the paper uses during
    /// tuning ("to optimize computational resources during the tuning
    /// search, a single iteration of the outer loop is executed"). Total
    /// and Slater times scale accordingly; per-invocation group times do
    /// not change.
    pub fn with_outer_loops(mut self, rt_iterations: usize, scf_iterations: usize) -> Self {
        self.rt_iterations = rt_iterations.max(1);
        self.scf_iterations = scf_iterations.max(1);
        self
    }

    /// Apply the paper's expert constraints: `nstb` restricted to divisors
    /// of the band count, `nkpb` to divisors of the k-point count, and
    /// `nspb` to divisors of the spin count (work balance; Section VIII).
    pub fn with_expert_constraints(mut self) -> Self {
        self.space = Self::build_space(&self.case, true);
        self
    }

    /// Override measurement-noise magnitude (0 disables noise).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Override the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The simulated case study.
    pub fn case(&self) -> &CaseStudy {
        &self.case
    }

    /// The GPU architecture model.
    pub fn gpu(&self) -> &GpuArch {
        &self.gpu
    }

    /// Parameter→routine ownership for the methodology:
    /// kernel parameters to their group (cuZcopy initially to G1 — it is
    /// *shared* with G3 and is expected to be reassigned by methodology
    /// step 5), `nbatches`/`nstreams` to the Slater region, MPI grid
    /// parameters to the application level.
    pub fn owners() -> Vec<(String, String)> {
        let mut v = Vec::new();
        for (name, group) in [
            ("nstb", "MPI"),
            ("nkpb", "MPI"),
            ("nspb", "MPI"),
            ("nbatches", "Slater"),
            ("nstreams", "Slater"),
        ] {
            v.push((name.to_string(), group.to_string()));
        }
        for (k, group) in KERNELS {
            for field in ["u", "tb", "tb_sm"] {
                v.push((format!("{field}_{}", k.short()), group.to_string()));
            }
        }
        v
    }

    /// The paper's shared kernel (used in several routines, must keep one
    /// value everywhere): cuZcopy appears in both Group 1 and Group 3, so
    /// its three parameters form one shared group that methodology step 5
    /// reassigns as a unit.
    pub fn shared_params() -> Vec<Vec<String>> {
        vec![vec![
            "u_zcopy".to_string(),
            "tb_zcopy".to_string(),
            "tb_sm_zcopy".to_string(),
        ]]
    }

    fn build_space(case: &CaseStudy, expert: bool) -> SearchSpace {
        let mut b = SearchSpace::builder();
        if expert {
            b = b
                .ordinal("nstb", divisors(case.nbands))
                .ordinal("nkpb", divisors(case.nkpoints))
                .ordinal("nspb", divisors(case.nspin));
        } else {
            b = b
                .integer("nstb", 1, case.nbands as i64)
                .integer("nkpb", 1, case.nkpoints as i64)
                .integer("nspb", 1, case.nspin as i64);
        }
        b = b.integer("nbatches", 1, 32).integer("nstreams", 1, 32);
        for (k, _) in KERNELS {
            let s = k.short();
            b = b
                .ordinal(format!("u_{s}"), vec![1.0, 2.0, 4.0, 8.0])
                .ordinal(
                    format!("tb_{s}"),
                    (1..=32).map(|w| (w * 32) as f64).collect(),
                )
                .integer(format!("tb_sm_{s}"), 1, 32);
        }
        let max_ranks = case.max_ranks as i64;
        b = b.constraint(Constraint::new(
            "mpi-ranks",
            "nstb·nkpb·nspb <= allocated ranks",
            move |s, c| {
                s.get_i64(c, "nstb").unwrap_or(i64::MAX)
                    * s.get_i64(c, "nkpb").unwrap_or(1)
                    * s.get_i64(c, "nspb").unwrap_or(1)
                    <= max_ranks
            },
        ));
        for (k, _) in KERNELS {
            let s = k.short();
            let (tb, tbsm) = (format!("tb_{s}"), format!("tb_sm_{s}"));
            b = b.constraint(Constraint::new(
                format!("occupancy-{s}"),
                format!("{tb}·{tbsm} <= max active threads per SM"),
                move |sp, c| {
                    sp.get_i64(c, &tb).unwrap_or(i64::MAX) * sp.get_i64(c, &tbsm).unwrap_or(1)
                        <= 2048
                },
            ));
        }
        b.build()
    }

    /// Decode the kernel parameters of `k` from a config.
    pub fn kernel_params(&self, cfg: &Config, k: KernelId) -> KernelParams {
        let s = k.short();
        KernelParams {
            unroll: self.space.get_f64(cfg, &format!("u_{s}")).unwrap() as u32,
            tb: self.space.get_f64(cfg, &format!("tb_{s}")).unwrap() as u32,
            tb_sm: self.space.get_i64(cfg, &format!("tb_sm_{s}")).unwrap() as u32,
        }
    }

    /// Deterministic simulation of one configuration, returning
    /// `(g1, g2, g3, slater, total)` in seconds — `g1..g3` are mean
    /// per-invocation group times, `slater` the per-rank region time,
    /// `total` the application time including MPI communication.
    pub fn simulate(&self, cfg: &Config) -> SimBreakdown {
        let sp = &self.space;
        let gpu = &self.gpu;
        let nstb = sp.get_i64(cfg, "nstb").unwrap().max(1) as usize;
        let nkpb = sp.get_i64(cfg, "nkpb").unwrap().max(1) as usize;
        let nspb = sp.get_i64(cfg, "nspb").unwrap().max(1) as usize;
        let nbatches = sp.get_i64(cfg, "nbatches").unwrap().max(1) as usize;
        let nstreams = sp.get_i64(cfg, "nstreams").unwrap().max(1) as usize;

        // ---- MPI decomposition: ceil-split => max local counts drive time.
        let local_bands = self.case.nbands.div_ceil(nstb);
        let local_kpoints = self.case.nkpoints.div_ceil(nkpb);
        let local_spins = self.case.nspin.div_ceil(nspb);
        let ranks = nstb * nkpb * nspb;

        // ---- Per-kernel per-invocation costs for a full batch.
        let n = self.case.fft_size;
        let pair = self.kernel_params(cfg, KernelId::Pairwise);
        // Group 2's L2 interference on Group 3 (the paper's cache effect):
        // the pairwise kernel's resident working set scales with its active
        // threads per SM; what it evicts, Group 3 kernels reload.
        let pair_occ = gpu.occupancy(pair.tb, pair.tb_sm);
        let g3_cache_penalty = 1.0 + 0.9 * pair_occ;

        let kt = |k: KernelId, batch: usize, cache_penalty: f64| -> f64 {
            let params = self.kernel_params(cfg, k);
            KernelCost::new(gpu, k, params).time(n * batch) * cache_penalty
        };

        // FFT: only nbatches (work size / batching efficiency) matters
        // (paper: "the only tuning parameters impacting the cuFFT routine
        // are nbatches and nstreams").
        let fft = |batch: usize| -> f64 { gpu.fft_3d_time(n, batch) };
        // Host<->device transfer of a batch (double complex, both ways
        // accounted separately).
        let h2d = |batch: usize| -> f64 { (n * batch * 16) as f64 / gpu.pcie_bw };

        let group_times = |batch: usize| -> [f64; 3] {
            // Group 1: memcpy-in + cuVec2Zvec + 3D-FFT backward + cuZcopy
            // + FFT backward xy.
            let g1 = kt(KernelId::Vec2Zvec, batch, 1.0)
                + fft(batch)
                + kt(KernelId::Zcopy, batch, 1.0)
                + fft(batch);
            // Group 2: pairwise multiplication.
            let g2 = kt(KernelId::Pairwise, batch, 1.0);
            // Group 3: FFT fwd + cuDscal + cuZcopy + FFT fwd + cuZvec2Vec.
            // The whole group (FFTs included) suffers the pairwise L2
            // interference: cuPairwise runs immediately before and evicts
            // the lines Group 3 reloads. The forward transpose (cuZcopy
            // here) moves padded data, so it is ~2x heavier than the
            // backward one in Group 1 — which is why the paper assigns the
            // shared kernel to Group 3 ("the region with highest impact").
            let g3 = (fft(batch)
                + kt(KernelId::Dscal, batch, 1.0)
                + 2.0 * kt(KernelId::Zcopy, batch, 1.0)
                + fft(batch)
                + kt(KernelId::Zvec2Vec, batch, 1.0))
                * g3_cache_penalty;
            [g1, g2, g3]
        };

        // ---- Loop structure: every (spin, kpoint) computes its bands in
        // batch-sized invocations; the last batch may be partial.
        let full_batches = local_bands / nbatches;
        let tail = local_bands % nbatches;
        let invocation_time = |batch: usize| -> f64 {
            let g = group_times(batch);
            let compute: f64 = g.iter().sum();
            let transfer = 2.0 * h2d(batch);
            // CUDA streams overlap transfers with compute (interior-optimum
            // curve: contention beyond a handful of streams).
            let overlap = gpu.stream_overlap(nstreams);
            let stream_overhead = 2e-6 * nstreams as f64;
            compute + transfer * overlap + stream_overhead
        };
        // Every (spin, kpoint) iteration has the same invocation profile,
        // so compute the two distinct invocation costs once.
        let per_sk = full_batches as f64 * invocation_time(nbatches)
            + if tail > 0 { invocation_time(tail) } else { 0.0 };
        let slater = (local_spins * local_kpoints) as f64 * per_sk;
        // Group observables: the per-invocation kernel-group times of a
        // *full* batch (what a profiler reports per kernel launch). Using
        // the full-batch time keeps MPI decomposition out of the per-kernel
        // observables, matching the paper's Tables V/VI where MPI
        // parameters do not appear among the GPU groups' top influences.
        let g_means = group_times(nbatches);

        // ---- MPI communication: per-(spin,kpoint) reduction of the
        // density contribution across the band ranks, plus a final
        // allreduce across everything.
        let reduce_bytes = (n * 16) as f64;
        let p = ranks.max(1) as f64;
        let allreduce = p.log2().ceil().max(0.0) * gpu.net_latency + reduce_bytes / gpu.net_bw;
        let comm = (local_spins * local_kpoints) as f64 * allreduce;

        // Idle-rank waste: ranks beyond the problem's parallelism do
        // nothing but still synchronize (captured as pure loss via the
        // ceil-splits above — e.g. nkpb > nkpoints leaves local_kpoints at
        // 1 while ranks grow, wasting allocation but not time; the paper's
        // balance constraints exist to avoid exactly this).
        // Outer loops: every rt iteration runs the SCF cycle, each cycle
        // one Slater-determinant pass + reduction.
        let outer = (self.rt_iterations * self.scf_iterations) as f64;
        let slater = slater * outer;
        let comm = comm * outer;
        let total = slater + comm;

        SimBreakdown {
            g1: g_means[0],
            g2: g_means[1],
            g3: g_means[2],
            slater,
            total,
        }
    }

    /// Configuration-keyed multiplicative noise factor.
    fn noise_factor(&self, cfg: &Config, salt: u64) -> f64 {
        if self.noise_sigma == 0.0 {
            return 1.0;
        }
        let mut h = self.seed ^ salt ^ 0xD6E8_FEB8_6659_FD93;
        for v in cfg {
            h = h
                .rotate_left(17)
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(v.as_f64().to_bits());
        }
        let mut rng = StdRng::seed_from_u64(h);
        (1.0 + cets_core::normal::sample(&mut rng, 0.0, self.noise_sigma)).max(0.5)
    }
}

/// Per-region simulated times in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Mean per-invocation Group 1 time (cuVec2Zvec, FFTs, cuZcopy).
    pub g1: f64,
    /// Mean per-invocation Group 2 time (cuPairwise).
    pub g2: f64,
    /// Mean per-invocation Group 3 time (FFTs, cuDscal, cuZcopy, cuZvec2Vec).
    pub g3: f64,
    /// Slater-determinant region time on the critical rank.
    pub slater: f64,
    /// Total application time (Slater + MPI communication).
    pub total: f64,
}

impl Objective for TddftSimulator {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn routine_names(&self) -> Vec<String> {
        vec![
            "G1".into(),
            "G2".into(),
            "G3".into(),
            "Slater".into(),
            "MPI".into(),
        ]
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        let b = self.simulate(cfg);
        let noisy = |v: f64, salt: u64| v * self.noise_factor(cfg, salt);
        let total = noisy(b.total, 4);
        Observation {
            total,
            routines: vec![
                noisy(b.g1, 0),
                noisy(b.g2, 1),
                noisy(b.g3, 2),
                noisy(b.slater, 3),
                total,
            ],
        }
    }

    /// Constructive constrained sampling: draw each kernel's `tb` first and
    /// then `tb_sm` within the occupancy headroom, and the MPI grid by
    /// rejection over just its three dimensions — every draw is valid, so
    /// full-space sampling works where blind rejection starves (see the
    /// `exp_highdim_infeasible` experiment).
    fn sample_valid(&self, rng: &mut dyn rand::Rng) -> Option<Config> {
        use rand::RngExt;
        let sp = &self.space;
        let mut pairs: Vec<(String, f64)> = Vec::with_capacity(20);
        // MPI grid: rejection over 3 dims only (high acceptance).
        for _ in 0..1000 {
            let draw = |def: &cets_space::ParamDef, rng: &mut dyn rand::Rng| -> f64 {
                def.decode(rng.random::<f64>()).as_f64()
            };
            let nstb = draw(sp.def_of("nstb").unwrap(), rng);
            let nkpb = draw(sp.def_of("nkpb").unwrap(), rng);
            let nspb = draw(sp.def_of("nspb").unwrap(), rng);
            if (nstb * nkpb * nspb) as usize <= self.case.max_ranks {
                pairs.push(("nstb".into(), nstb));
                pairs.push(("nkpb".into(), nkpb));
                pairs.push(("nspb".into(), nspb));
                break;
            }
        }
        if pairs.is_empty() {
            return None;
        }
        pairs.push(("nbatches".into(), rng.random_range(1..=32) as f64));
        pairs.push(("nstreams".into(), rng.random_range(1..=32) as f64));
        for (k, _) in KERNELS {
            let s = k.short();
            let u = [1.0, 2.0, 4.0, 8.0][rng.random_range(0..4usize)];
            let tb = (rng.random_range(1..=32) * 32) as f64;
            let max_tb_sm = ((2048.0 / tb) as i64).clamp(1, 32);
            let tb_sm = rng.random_range(1..=max_tb_sm) as f64;
            pairs.push((format!("u_{s}"), u));
            pairs.push((format!("tb_{s}"), tb));
            pairs.push((format!("tb_sm_{s}"), tb_sm));
        }
        let borrowed: Vec<(&str, f64)> = pairs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let cfg = sp.config_from_pairs(&borrowed).ok()?;
        sp.is_valid(&cfg).then_some(cfg)
    }

    fn default_config(&self) -> Config {
        let mut pairs: Vec<(String, f64)> = vec![
            ("nstb".into(), 1.0),
            ("nkpb".into(), 1.0),
            ("nspb".into(), 1.0),
            ("nbatches".into(), 8.0),
            ("nstreams".into(), 1.0),
        ];
        for (k, _) in KERNELS {
            let s = k.short();
            pairs.push((format!("u_{s}"), 1.0));
            pairs.push((format!("tb_{s}"), 64.0));
            pairs.push((format!("tb_sm_{s}"), 1.0));
        }
        let borrowed: Vec<(&str, f64)> = pairs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        self.space
            .config_from_pairs(&borrowed)
            .expect("default config is valid")
    }
}

/// All positive divisors of `n`, ascending (expert MPI-grid values).
pub fn divisors(n: usize) -> Vec<f64> {
    (1..=n)
        .filter(|d| n.is_multiple_of(*d))
        .map(|d| d as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_core::{routine_sensitivity, VariationPolicy};

    #[test]
    fn space_matches_table_iv() {
        let sim = TddftSimulator::new(CaseStudy::case1());
        // 3 MPI + 2 iteration + 5 kernels × 3 = 20 parameters.
        assert_eq!(sim.space().dim(), 20);
        // GPU sub-space cardinality: (4·32·32)^5 × 32 × 32 = 41,943,040 ×
        // ... the paper counts 4·32·32 per kernel and 32×32 for
        // streams/batches: check per-kernel counts.
        assert_eq!(sim.space().def_of("u_vec").unwrap().cardinality(), Some(4));
        assert_eq!(
            sim.space().def_of("tb_pair").unwrap().cardinality(),
            Some(32)
        );
        assert_eq!(
            sim.space().def_of("tb_sm_zcopy").unwrap().cardinality(),
            Some(32)
        );
        assert_eq!(
            sim.space().def_of("nbatches").unwrap().cardinality(),
            Some(32)
        );
    }

    #[test]
    fn occupancy_constraint_enforced() {
        let sim = TddftSimulator::new(CaseStudy::case1());
        let mut cfg = sim.default_config();
        let sp = sim.space();
        cfg = sp
            .with_value(&cfg, "tb_pair", cets_space::ParamValue::Real(1024.0))
            .unwrap();
        cfg = sp
            .with_value(&cfg, "tb_sm_pair", cets_space::ParamValue::Int(32))
            .unwrap();
        assert!(!sp.is_valid(&cfg));
    }

    #[test]
    fn mpi_rank_constraint_enforced() {
        let sim = TddftSimulator::new(CaseStudy::case2());
        let sp = sim.space();
        let mut cfg = sim.default_config();
        cfg = sp
            .with_value(&cfg, "nstb", cets_space::ParamValue::Int(8))
            .unwrap();
        cfg = sp
            .with_value(&cfg, "nkpb", cets_space::ParamValue::Int(6))
            .unwrap();
        // 8 × 6 × 1 = 48 > 40 ranks.
        assert!(!sp.is_valid(&cfg));
    }

    #[test]
    fn expert_constraints_restrict_to_divisors() {
        let sim = TddftSimulator::new(CaseStudy::case2()).with_expert_constraints();
        let def = sim.space().def_of("nkpb").unwrap();
        assert_eq!(def.cardinality(), Some(9)); // divisors of 36
        let nstb = sim.space().def_of("nstb").unwrap();
        assert_eq!(nstb.cardinality(), Some(7)); // divisors of 64
    }

    #[test]
    fn simulate_is_deterministic_and_finite() {
        let sim = TddftSimulator::new(CaseStudy::case1());
        let cfg = sim.default_config();
        let a = sim.simulate(&cfg);
        let b = sim.simulate(&cfg);
        assert_eq!(a, b);
        for v in [a.g1, a.g2, a.g3, a.slater, a.total] {
            assert!(v.is_finite() && v > 0.0, "{a:?}");
        }
        // Slater dominates the total; groups are per-invocation so much
        // smaller.
        assert!(a.total >= a.slater);
        assert!(a.slater > a.g1 + a.g2 + a.g3);
    }

    #[test]
    fn nbatches_scales_group_times() {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let sp = sim.space();
        let base = sim.default_config();
        let big = sp
            .with_value(&base, "nbatches", cets_space::ParamValue::Int(32))
            .unwrap();
        let small = sp
            .with_value(&base, "nbatches", cets_space::ParamValue::Int(1))
            .unwrap();
        let b_big = sim.simulate(&big);
        let b_small = sim.simulate(&small);
        // Per-invocation group times grow strongly with the batch size.
        assert!(b_big.g1 > 8.0 * b_small.g1);
        assert!(b_big.g2 > 8.0 * b_small.g2);
        assert!(b_big.g3 > 8.0 * b_small.g3);
    }

    #[test]
    fn nstb_reduces_slater_time() {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let sp = sim.space();
        let base = sim.default_config(); // nstb = 1
        let split = sp
            .with_value(&base, "nstb", cets_space::ParamValue::Int(8))
            .unwrap();
        let t1 = sim.simulate(&base).slater;
        let t8 = sim.simulate(&split).slater;
        assert!(
            t8 < t1 / 4.0,
            "8-way band split should cut Slater time: {t1} -> {t8}"
        );
    }

    #[test]
    fn pairwise_occupancy_perturbs_group3() {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let sp = sim.space();
        let base = sim.default_config(); // tb_pair=64, tb_sm_pair=1 (low occ)
        let hot = sp
            .with_value(&base, "tb_sm_pair", cets_space::ParamValue::Int(32))
            .unwrap();
        let b0 = sim.simulate(&base);
        let b1 = sim.simulate(&hot);
        // Group 3 suffers; Group 1 does not (cache effect is directional).
        assert!(b1.g3 > 1.2 * b0.g3, "{} vs {}", b1.g3, b0.g3);
        assert!((b1.g1 - b0.g1).abs() < 1e-3 * b0.g1.max(1e-12));
    }

    #[test]
    fn streams_overlap_reduces_slater() {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let sp = sim.space();
        let base = sim.default_config(); // nstreams = 1
        let s4 = sp
            .with_value(&base, "nstreams", cets_space::ParamValue::Int(4))
            .unwrap();
        let s32 = sp
            .with_value(&base, "nstreams", cets_space::ParamValue::Int(32))
            .unwrap();
        let t1 = sim.simulate(&base).slater;
        let t4 = sim.simulate(&s4).slater;
        let t32 = sim.simulate(&s32).slater;
        assert!(t4 < t1, "4 streams should beat 1: {t4} vs {t1}");
        // Diminishing returns / contention: 32 streams not better than 4.
        assert!(t32 >= t4 * 0.98, "{t32} vs {t4}");
    }

    #[test]
    fn observation_matches_simulation_without_noise() {
        let sim = TddftSimulator::new(CaseStudy::case2()).with_noise(0.0);
        let cfg = sim.default_config();
        let b = sim.simulate(&cfg);
        let obs = sim.evaluate(&cfg);
        assert_eq!(obs.total, b.total);
        assert_eq!(obs.routines, vec![b.g1, b.g2, b.g3, b.slater, b.total]);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let sim = TddftSimulator::new(CaseStudy::case1());
        let cfg = sim.default_config();
        let a = sim.evaluate(&cfg);
        let b = sim.evaluate(&cfg);
        assert_eq!(a, b);
        let clean = TddftSimulator::new(CaseStudy::case1())
            .with_noise(0.0)
            .evaluate(&cfg);
        assert!((a.total / clean.total - 1.0).abs() < 0.2);
    }

    #[test]
    fn owners_cover_all_params() {
        let sim = TddftSimulator::new(CaseStudy::case1());
        let owners = TddftSimulator::owners();
        assert_eq!(owners.len(), 20);
        for name in sim.space().names() {
            assert!(
                owners.iter().any(|(p, _)| p == name),
                "missing owner for {name}"
            );
        }
    }

    /// The headline sensitivity structure of paper Tables V/VI, on Case
    /// Study 1: nbatches dominates the GPU groups, nstb dominates the
    /// Slater region, and pairwise parameters cross into Group 3.
    #[test]
    fn sensitivity_structure_matches_paper() {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let baseline = sim.default_config();
        let scores =
            routine_sensitivity(&sim, &baseline, &VariationPolicy::Spread { count: 5 }).unwrap();

        let s = |p: &str, r: &str| scores.score_by_name(p, r).unwrap();
        // nbatches dominates per-invocation group times.
        for g in ["G1", "G2", "G3"] {
            assert!(
                s("nbatches", g) > 0.5,
                "nbatches→{g} = {}",
                s("nbatches", g)
            );
        }
        // nstb dominates the Slater region.
        assert!(
            s("nstb", "Slater") > 0.3,
            "nstb→Slater = {}",
            s("nstb", "Slater")
        );
        // Cross-influence: pairwise params on Group 3, above the paper's
        // 10% cut-off; and far above their (zero) effect on Group 1.
        assert!(
            s("tb_sm_pair", "G3") > 0.10,
            "tb_sm_pair→G3 = {}",
            s("tb_sm_pair", "G3")
        );
        assert!(s("tb_sm_pair", "G1") < 0.01);
        // Group 1 params do not influence Group 2 (weak interdependence).
        assert!(s("u_vec", "G2") < 0.01);
        // MPI params do not influence per-invocation kernel times.
        assert!(s("nstb", "G1") < 0.01);
    }

    #[test]
    fn outer_loops_scale_region_times_not_groups() {
        let one = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let ten = TddftSimulator::new(CaseStudy::case1())
            .with_noise(0.0)
            .with_outer_loops(5, 2);
        let cfg = one.default_config();
        let a = one.simulate(&cfg);
        let b = ten.simulate(&cfg);
        assert!((b.slater / a.slater - 10.0).abs() < 1e-9);
        assert!((b.total / a.total - 10.0).abs() < 1e-9);
        assert_eq!(a.g1, b.g1);
        assert_eq!(a.g3, b.g3);
    }

    #[test]
    fn divisors_helper() {
        assert_eq!(divisors(64).len(), 7);
        assert_eq!(
            divisors(36),
            vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 12.0, 18.0, 36.0]
        );
        assert_eq!(divisors(1), vec![1.0]);
    }
}
