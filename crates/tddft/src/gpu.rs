//! A100-like GPU architecture model: occupancy, bandwidth, FFT throughput,
//! stream overlap, interconnect.

/// Architectural constants and derived performance curves.
///
/// Values approximate an NVIDIA A100-SXM4 on a Perlmutter GPU node (paper
/// Section VII): 108 SMs, 2048 resident threads/SM, ≤32 resident blocks/SM,
/// ≤32 warps (1024 threads) per block, ~1.5 TB/s HBM2e, PCIe 4.0 x16 host
/// link, Slingshot-class interconnect. Absolute numbers only set the time
/// scale; the tuning landscape comes from the *shapes* (occupancy curve,
/// batching amortization, overlap saturation).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident threadblocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block (32 warps × 32 lanes).
    pub max_threads_per_block: u32,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Host↔device PCIe bandwidth, bytes/s.
    pub pcie_bw: f64,
    /// Effective FFT throughput, flop/s (cuFFT sustained, not peak).
    pub fft_flops: f64,
    /// Kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// FFT plan/launch overhead per invocation, seconds.
    pub fft_overhead: f64,
    /// Network point-to-point latency, seconds.
    pub net_latency: f64,
    /// Network per-rank bandwidth, bytes/s.
    pub net_bw: f64,
}

impl GpuArch {
    /// The A100 model used throughout the reproduction.
    pub fn a100() -> Self {
        GpuArch {
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            mem_bw: 1.555e12,
            pcie_bw: 25.0e9,
            // Sustained batched double-complex 3D-FFT throughput, NOT peak
            // FP64: calibrated so that at default tuning values the
            // compute-side shares match the paper's profile (cuFFT 61.4%,
            // cuZcopy 14.2%, cuVec2Zvec 12.4%, ...) and host transfers
            // account for ~40-50% of the region, as the paper reports for
            // communication.
            fft_flops: 0.45e12,
            launch_overhead: 5.0e-6,
            fft_overhead: 20.0e-6,
            net_latency: 5.0e-6,
            net_bw: 10.0e9,
        }
    }

    /// Fraction of the SM's thread capacity kept resident by a kernel with
    /// block size `tb` and `tb_sm` requested blocks per SM. The hardware
    /// caps blocks at `max_blocks_per_sm` and at what fits below
    /// `max_threads_per_sm`.
    pub fn occupancy(&self, tb: u32, tb_sm: u32) -> f64 {
        if tb == 0 || tb_sm == 0 {
            return 0.0;
        }
        let tb = tb.min(self.max_threads_per_block);
        let blocks = tb_sm
            .min(self.max_blocks_per_sm)
            .min(self.max_threads_per_sm / tb);
        (blocks * tb) as f64 / self.max_threads_per_sm as f64
    }

    /// Memory-throughput efficiency as a function of occupancy: the usual
    /// saturating curve — low occupancy cannot cover memory latency, high
    /// occupancy plateaus.
    pub fn occupancy_efficiency(&self, occ: f64) -> f64 {
        let occ = occ.clamp(0.0, 1.0);
        // 1.25·occ/(occ+0.25): 0 at 0, ~0.71 at 0.25, 1.0 at 1.0.
        1.25 * occ / (occ + 0.25)
    }

    /// Batched 3D-FFT time for `n`-element transforms, `batch` at a time:
    /// `5·n·log2(n)` flops per transform with a batching-amortized
    /// efficiency (cuFFT performs poorly on single small batches).
    pub fn fft_3d_time(&self, n: usize, batch: usize) -> f64 {
        let batch = batch.max(1);
        let flops = 5.0 * (n as f64) * (n as f64).log2() * batch as f64;
        let batch_eff = batch as f64 / (batch as f64 + 3.0); // →1 as batch grows
        self.fft_overhead + flops / (self.fft_flops * batch_eff)
    }

    /// Effective fraction of transfer time that remains *exposed* (not
    /// hidden behind compute) with `nstreams` CUDA streams. One stream
    /// exposes everything; a handful of streams hide most of it (floor =
    /// PCIe serialization); far too many streams *lose* ground again to
    /// scheduling/synchronization contention, so the curve has an interior
    /// optimum (~6 streams) — which is why `nstreams` is worth tuning at
    /// all.
    pub fn stream_overlap(&self, nstreams: usize) -> f64 {
        let s = nstreams.max(1) as f64;
        (0.25 + 0.75 / s + 0.015 * (s - 1.0)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_basic() {
        let g = GpuArch::a100();
        // 64 threads × 32 blocks = 2048 threads = full occupancy.
        assert!((g.occupancy(64, 32) - 1.0).abs() < 1e-12);
        // 1024 threads × 2 blocks = full.
        assert!((g.occupancy(1024, 2) - 1.0).abs() < 1e-12);
        // 1024 × 1 = half.
        assert!((g.occupancy(1024, 1) - 0.5).abs() < 1e-12);
        // Requesting more blocks than fit is capped, not an error.
        assert!((g.occupancy(1024, 32) - 1.0).abs() < 1e-12);
        assert_eq!(g.occupancy(0, 4), 0.0);
    }

    #[test]
    fn occupancy_efficiency_monotone_saturating() {
        let g = GpuArch::a100();
        let lo = g.occupancy_efficiency(0.1);
        let mid = g.occupancy_efficiency(0.5);
        let hi = g.occupancy_efficiency(1.0);
        assert!(lo < mid && mid < hi);
        assert!((hi - 1.0).abs() < 1e-12);
        // Marginal gain shrinks (concavity).
        assert!(mid - lo > hi - mid);
    }

    #[test]
    fn fft_batching_amortizes() {
        let g = GpuArch::a100();
        let n = 1 << 20;
        let t1 = g.fft_3d_time(n, 1);
        let t8 = g.fft_3d_time(n, 8);
        // Per-transform time shrinks with batch.
        assert!(t8 / 8.0 < t1, "{} vs {}", t8 / 8.0, t1);
        // But total grows.
        assert!(t8 > t1);
    }

    #[test]
    fn stream_overlap_curve_has_interior_optimum() {
        let g = GpuArch::a100();
        assert!((g.stream_overlap(1) - 1.0).abs() < 1e-12);
        assert!(g.stream_overlap(4) < 0.6);
        // Interior minimum: some s in 2..32 beats both endpoints.
        let (best_s, best_v) = (1..=32)
            .map(|s| (s, g.stream_overlap(s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(best_s > 1 && best_s < 32, "optimum at edge: {best_s}");
        assert!(g.stream_overlap(32) > best_v, "no contention penalty");
        // Never exceeds full exposure.
        assert!((1..=32).all(|s| g.stream_overlap(s) <= 1.0));
    }
}
