//! Model of the *original* CPU/MPI QBox Slater-determinant computation
//! (paper Section V, Figure 3 top) — the version the GPU offload replaces.
//!
//! In the CPU code the wavefunction is distributed over a 4-dimensional
//! MPI grid `nspb × nkpb × nstb × ngb`; each band's 3D FFT is computed as
//! 2D FFTs + a **distributed matrix transpose (all-to-all over the `ngb`
//! ranks)** + 1D FFTs. The paper's profiling attributes 40-50% of the
//! runtime to communication, most of it in this transpose&padding step —
//! the number this model is calibrated to reproduce, and the motivation
//! for replacing the distributed FFT with a single-rank GPU 3D FFT
//! (`ngb = 1` in the GPU version).

use serde::{Deserialize, Serialize};

/// CPU-node and interconnect constants (Perlmutter-like CPU partition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuArch {
    /// Sustained per-rank FFT throughput, flop/s (one EPYC core group with
    /// its OpenMP helpers).
    pub fft_flops: f64,
    /// Sustained per-rank streaming bandwidth for local packing, bytes/s.
    pub mem_bw: f64,
    /// Network point-to-point latency, seconds.
    pub net_latency: f64,
    /// Per-rank network bandwidth, bytes/s.
    pub net_bw: f64,
}

impl Default for CpuArch {
    fn default() -> Self {
        CpuArch {
            fft_flops: 25.0e9,
            mem_bw: 20.0e9,
            net_latency: 2.0e-6,
            net_bw: 6.0e9,
        }
    }
}

/// Per-region breakdown of one CPU Slater-determinant pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBreakdown {
    /// Local FFT + pairwise compute time (per rank, seconds).
    pub compute: f64,
    /// Communication time: transpose all-to-alls + reductions (seconds).
    pub comm: f64,
    /// Total region time.
    pub total: f64,
}

impl CpuBreakdown {
    /// Fraction of the runtime spent communicating — the paper reports
    /// 40-50% for realistic configurations.
    pub fn comm_fraction(&self) -> f64 {
        if self.total > 0.0 {
            self.comm / self.total
        } else {
            0.0
        }
    }
}

/// The CPU QBox Slater-determinant model.
#[derive(Debug, Clone, Default)]
pub struct CpuQbox {
    /// Architecture constants.
    pub arch: CpuArch,
}

impl CpuQbox {
    /// Simulate one Slater-determinant pass.
    ///
    /// * `fft_size` — double-complex elements per band;
    /// * `nbands`, `nkpoints`, `nspin` — problem shape;
    /// * `nstb`, `nkpb`, `nspb`, `ngb` — the 4D MPI grid (Figure 3).
    ///
    /// Work per (spin, kpoint, band): forward + backward 3D FFT split as
    /// 2D+1D with two distributed transposes over the `ngb` plane-wave
    /// ranks, plus the pairwise multiplication.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        fft_size: usize,
        nbands: usize,
        nkpoints: usize,
        nspin: usize,
        nstb: usize,
        nkpb: usize,
        nspb: usize,
        ngb: usize,
    ) -> CpuBreakdown {
        let a = &self.arch;
        let (nstb, nkpb, nspb, ngb) = (nstb.max(1), nkpb.max(1), nspb.max(1), ngb.max(1));
        let local_bands = nbands.div_ceil(nstb);
        let local_kpoints = nkpoints.div_ceil(nkpb);
        let local_spins = nspin.div_ceil(nspb);
        let iterations = (local_spins * local_kpoints * local_bands) as f64;

        let n = fft_size as f64;
        // FFT flops split across the ngb ranks; 4 FFT passes per band
        // (2D bwd, 1D bwd, 1D fwd, 2D fwd).
        let fft_per_band = 4.0 * 5.0 * n * n.log2() / (ngb as f64 * a.fft_flops);
        // Pairwise multiplication: one read-modify-write sweep.
        let pair_per_band = n * 16.0 * 2.0 / (ngb as f64 * a.mem_bw);
        let compute = iterations * (fft_per_band + pair_per_band);

        // Two distributed transposes per band: each rank exchanges its
        // slab (n/ngb elements, 16 B each) with the other ngb-1 ranks,
        // plus a local packing/padding pass.
        let slab_bytes = n * 16.0 / ngb as f64;
        // All-to-all congestion: effective bandwidth degrades ~log2(p) as
        // the exchange pattern saturates the injection links.
        let congestion = (ngb as f64).log2().max(1.0);
        let transpose = if ngb > 1 {
            2.0 * ((ngb - 1) as f64 * a.net_latency + slab_bytes * congestion / a.net_bw)
                + 2.0 * slab_bytes / a.mem_bw
        } else {
            // Single rank: the transpose degenerates to a local copy.
            2.0 * slab_bytes / a.mem_bw
        };
        // Per-kpoint reduction across band ranks.
        let p = (nstb * nkpb * nspb * ngb) as f64;
        let reduce = p.log2().ceil().max(0.0) * a.net_latency + slab_bytes / a.net_bw;
        let comm = iterations * transpose + (local_spins * local_kpoints) as f64 * reduce;

        CpuBreakdown {
            compute,
            comm,
            total: compute + comm,
        }
    }

    /// The communication fraction across a sweep of `ngb` values — used by
    /// the motivation experiment to reproduce the paper's "40-50% of the
    /// runtime is attributed to communication primitives" observation.
    #[allow(clippy::too_many_arguments)]
    pub fn comm_fraction_sweep(
        &self,
        fft_size: usize,
        nbands: usize,
        nkpoints: usize,
        nspin: usize,
        nstb: usize,
        ngb_values: &[usize],
    ) -> Vec<(usize, f64)> {
        ngb_values
            .iter()
            .map(|&ngb| {
                let b = self.simulate(fft_size, nbands, nkpoints, nspin, nstb, 1, 1, ngb);
                (ngb, b.comm_fraction())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qbox() -> CpuQbox {
        CpuQbox::default()
    }

    #[test]
    fn breakdown_finite_positive() {
        let b = qbox().simulate(3_000_000, 64, 1, 1, 4, 1, 1, 8);
        assert!(b.compute > 0.0 && b.comm > 0.0);
        assert!((b.total - (b.compute + b.comm)).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&b.comm_fraction()));
    }

    #[test]
    fn realistic_configs_hit_paper_comm_fraction() {
        // Case-Study-1-like problem on a typical CPU decomposition: the
        // communication fraction lands in the paper's 40-50% band for some
        // realistic ngb.
        let q = qbox();
        let sweep = q.comm_fraction_sweep(3_000_000, 64, 1, 1, 4, &[4, 8, 16, 32, 64]);
        let in_band = sweep
            .iter()
            .filter(|(_, f)| (0.35..=0.55).contains(f))
            .count();
        assert!(
            in_band >= 1,
            "no ngb gives the paper's 40-50% comm fraction: {sweep:?}"
        );
    }

    #[test]
    fn comm_fraction_grows_with_ngb() {
        // More plane-wave ranks shrink local FFT work but add all-to-all
        // partners: the comm fraction rises monotonically past small ngb.
        let q = qbox();
        let f8 = q.simulate(3_000_000, 64, 1, 1, 4, 1, 1, 8).comm_fraction();
        let f64_ = q.simulate(3_000_000, 64, 1, 1, 4, 1, 1, 64).comm_fraction();
        assert!(f64_ > f8, "{f64_} !> {f8}");
    }

    #[test]
    fn single_gb_rank_has_minimal_comm() {
        let q = qbox();
        let b = q.simulate(3_000_000, 64, 1, 1, 4, 1, 1, 1);
        assert!(
            b.comm_fraction() < 0.2,
            "ngb=1 should be compute-dominated: {}",
            b.comm_fraction()
        );
    }

    #[test]
    fn more_band_ranks_cut_time() {
        let q = qbox();
        let t1 = q.simulate(620_000, 64, 36, 1, 1, 1, 1, 8).total;
        let t8 = q.simulate(620_000, 64, 36, 1, 8, 1, 1, 8).total;
        assert!(t8 < t1 / 4.0);
    }
}
