//! Property-based tests for the RT-TDDFT performance simulator.

use cets_core::Objective;
use cets_tddft::{CaseStudy, GpuArch, TddftSimulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occupancy_in_unit_interval(tb in 1u32..2048, tb_sm in 1u32..64) {
        let g = GpuArch::a100();
        let occ = g.occupancy(tb, tb_sm);
        prop_assert!((0.0..=1.0).contains(&occ), "occ = {occ}");
    }

    #[test]
    fn occupancy_monotone_in_blocks(tb in 32u32..1024, tb_sm in 1u32..31) {
        let g = GpuArch::a100();
        prop_assert!(g.occupancy(tb, tb_sm + 1) >= g.occupancy(tb, tb_sm));
    }

    #[test]
    fn fft_time_positive_and_monotone_in_batch(n in 1024usize..4_000_000, batch in 1usize..31) {
        let g = GpuArch::a100();
        let t1 = g.fft_3d_time(n, batch);
        let t2 = g.fft_3d_time(n, batch + 1);
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1, "total FFT time must grow with batch");
        // Per-transform time shrinks (batching amortization).
        prop_assert!(t2 / (batch + 1) as f64 <= t1 / batch as f64 + 1e-15);
    }

    #[test]
    fn simulate_valid_configs_finite_positive(seed in 0u64..2000) {
        let sim = TddftSimulator::new(CaseStudy::case2());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.sample_valid(&mut rng).unwrap();
        prop_assert!(sim.space().is_valid(&cfg), "constructive sample invalid");
        let b = sim.simulate(&cfg);
        for v in [b.g1, b.g2, b.g3, b.slater, b.total] {
            prop_assert!(v.is_finite() && v > 0.0, "{b:?}");
        }
        prop_assert!(b.total >= b.slater);
    }

    #[test]
    fn observation_matches_routine_layout(seed in 0u64..500) {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.sample_valid(&mut rng).unwrap();
        let obs = sim.evaluate(&cfg);
        prop_assert_eq!(obs.routines.len(), sim.routine_names().len());
        let b = sim.simulate(&cfg);
        prop_assert_eq!(obs.routines[0], b.g1);
        prop_assert_eq!(obs.routines[3], b.slater);
        prop_assert_eq!(obs.total, b.total);
    }

    #[test]
    fn noise_deterministic_and_multiplicative(seed in 0u64..500) {
        let sim = TddftSimulator::new(CaseStudy::case1()).with_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.sample_valid(&mut rng).unwrap();
        let a = sim.evaluate(&cfg);
        prop_assert_eq!(a.clone(), sim.evaluate(&cfg));
        let clean = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let c = clean.evaluate(&cfg);
        // 2% noise stays well within ±25% (5 sigma + clip margin).
        prop_assert!((a.total / c.total - 1.0).abs() < 0.25);
    }

    #[test]
    fn more_band_ranks_never_slower_slater(seed in 0u64..300) {
        // Slater time is driven by local band count: doubling nstb (when
        // it divides) cannot make the per-rank region slower, holding the
        // rest fixed and noise off.
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = {
            // Sample, then force an MPI grid with room to double nstb.
            let mut cfg = sim.sample_valid(&mut rng).unwrap();
            cfg = sim.space().with_value(&cfg, "nstb", cets_space::ParamValue::Int(2)).unwrap();
            cfg = sim.space().with_value(&cfg, "nkpb", cets_space::ParamValue::Int(1)).unwrap();
            cfg = sim.space().with_value(&cfg, "nspb", cets_space::ParamValue::Int(1)).unwrap();
            cfg
        };
        let doubled = sim
            .space()
            .with_value(&base, "nstb", cets_space::ParamValue::Int(4))
            .unwrap();
        let t2 = sim.simulate(&base).slater;
        let t4 = sim.simulate(&doubled).slater;
        prop_assert!(t4 <= t2 + 1e-12, "{t4} > {t2}");
    }

    #[test]
    fn pair_occupancy_never_helps_g3(seed in 0u64..300) {
        // The cache-interference term is monotone: raising the pairwise
        // kernel's occupancy can only hurt Group 3 (noise off).
        let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = sim.sample_valid(&mut rng).unwrap();
        cfg = sim.space().with_value(&cfg, "tb_pair", cets_space::ParamValue::Real(64.0)).unwrap();
        let lo = sim
            .space()
            .with_value(&cfg, "tb_sm_pair", cets_space::ParamValue::Int(1))
            .unwrap();
        let hi = sim
            .space()
            .with_value(&cfg, "tb_sm_pair", cets_space::ParamValue::Int(32))
            .unwrap();
        prop_assert!(sim.simulate(&hi).g3 >= sim.simulate(&lo).g3);
        // ...and Group 1 is untouched by it.
        prop_assert_eq!(sim.simulate(&hi).g1, sim.simulate(&lo).g1);
    }

    #[test]
    fn expert_space_subset_of_general(seed in 0u64..300) {
        // Every config valid in the expert-constrained space corresponds
        // to valid MPI values in the general space.
        let expert = TddftSimulator::new(CaseStudy::case2()).with_expert_constraints();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = expert.sample_valid(&mut rng).unwrap();
        let nstb = expert.space().get_f64(&cfg, "nstb").unwrap();
        let nkpb = expert.space().get_f64(&cfg, "nkpb").unwrap();
        prop_assert_eq!(64.0 % nstb, 0.0);
        prop_assert_eq!(36.0 % nkpb, 0.0);
    }
}
