//! End-to-end fixture tests: every acceptance-criteria code is detected in
//! a real plan file loaded from disk, and the clean exemplar plan passes.

use cets_lint::{lint, load_path, render_human, render_json, Report, Severity};
use std::path::PathBuf;

fn fixture(name: &str) -> Report {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let bundle = load_path(&path).unwrap_or_else(|e| panic!("{name} should load: {e}"));
    lint(&bundle)
}

fn assert_code(report: &Report, code: &str, severity: Severity) {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code}, got:\n{}", render_human(report)));
    assert_eq!(d.severity, severity, "{code} severity");
}

#[test]
fn duplicate_param_is_s001() {
    let r = fixture("dup_param.json");
    assert_code(&r, "S001", Severity::Error);
}

#[test]
fn inverted_bounds_is_s002() {
    let r = fixture("inverted_bounds.json");
    assert_code(&r, "S002", Severity::Error);
    // Both the inverted integer and the inverted real are reported.
    assert_eq!(r.diagnostics.iter().filter(|d| d.code == "S002").count(), 2);
}

#[test]
fn default_out_of_bounds_is_s003() {
    let r = fixture("default_oob.json");
    assert_code(&r, "S003", Severity::Error);
}

#[test]
fn unsatisfiable_constraint_is_s004() {
    let r = fixture("unsat_constraint.json");
    assert_code(&r, "S004", Severity::Warning);
}

#[test]
fn unknown_references_are_s005() {
    let r = fixture("unknown_ref.json");
    assert_code(&r, "S005", Severity::Error);
    // Both the constraint's `ghost` and the plan's `phantom` are caught.
    assert!(r.diagnostics.iter().filter(|d| d.code == "S005").count() >= 2);
}

#[test]
fn dag_cycle_is_g001() {
    let r = fixture("cycle.json");
    assert_code(&r, "G001", Severity::Error);
}

#[test]
fn orphaned_param_is_g002() {
    let r = fixture("orphan.json");
    assert_code(&r, "G002", Severity::Warning);
}

#[test]
fn dim_cap_violation_is_g003() {
    let r = fixture("dim_cap.json");
    assert_code(&r, "G003", Severity::Error);
}

#[test]
fn shared_param_in_two_searches_is_g004() {
    let r = fixture("shared_twice.json");
    assert_code(&r, "G004", Severity::Error);
}

#[test]
fn fragile_kernel_is_n001() {
    let r = fixture("kernel_fragile.json");
    assert_code(&r, "N001", Severity::Warning);
}

#[test]
fn negative_cutoff_is_n002() {
    let r = fixture("negative_cutoff.json");
    assert_code(&r, "N002", Severity::Error);
}

#[test]
fn zero_variance_is_n003() {
    let r = fixture("zero_variance.json");
    assert_code(&r, "N003", Severity::Warning);
    assert_eq!(r.diagnostics.iter().filter(|d| d.code == "N003").count(), 2);
}

#[test]
fn exemplar_plan_is_clean() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/plans/tddft_plan.json");
    let bundle = load_path(&path).expect("exemplar plan loads");
    let report = lint(&bundle);
    assert!(
        report.is_clean(),
        "exemplar should be clean:\n{}",
        render_human(&report)
    );
}

#[test]
fn json_rendering_of_fixture_parses() {
    let r = fixture("cycle.json");
    let json = render_json(&r);
    let v = serde_json::parse_value(&json).expect("valid JSON");
    assert!(v.get_field("errors").as_u64().unwrap() >= 1);
}
