//! End-to-end fixture tests for the abstract-interpretation analysis
//! codes (A001–A005): every code is detected in a real plan file loaded
//! from disk, and the contracted exemplar stays deny-warnings clean.

use cets_lint::{
    analyze, analyze_space, analyze_space_with, lint, load_path, load_str, render_human,
    rewrite_contracted, AnalysisOptions, ConstraintClass, Domain, RelationKind, Report, Severity,
};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/absint")
        .join(name)
}

fn fixture(name: &str) -> Report {
    let bundle =
        load_path(&fixture_path(name)).unwrap_or_else(|e| panic!("{name} should load: {e}"));
    analyze(&bundle)
}

fn assert_code(report: &Report, code: &str, severity: Severity) {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code}, got:\n{}", render_human(report)));
    assert_eq!(d.severity, severity, "{code} severity");
}

#[test]
fn proved_unsat_constraint_is_a001() {
    let r = fixture("unsat.json");
    assert_code(&r, "A001", Severity::Error);
}

#[test]
fn jointly_unsat_conjunction_is_a001_at_plan_level() {
    let r = fixture("jointly_unsat.json");
    assert_code(&r, "A001", Severity::Error);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "A001")
        .expect("A001 present");
    assert_eq!(
        d.location.kind(),
        "plan",
        "joint emptiness is a plan-level fact"
    );
}

#[test]
fn tautological_constraint_is_a002() {
    let r = fixture("tautology.json");
    assert_code(&r, "A002", Severity::Warning);
}

#[test]
fn thin_feasible_fraction_is_a003() {
    let r = fixture("contractible.json");
    assert_code(&r, "A003", Severity::Warning);
}

#[test]
fn contractible_bounds_are_a004() {
    let r = fixture("contractible.json");
    assert_code(&r, "A004", Severity::Warning);
    // Both `buf` (via `buf <= 9`) and `tb` (via `tb * 64 <= 49152`) narrow.
    assert_eq!(r.diagnostics.iter().filter(|d| d.code == "A004").count(), 2);
}

#[test]
fn fixpoint_cap_is_a005() {
    let r = fixture("nonconverging.json");
    assert_code(&r, "A005", Severity::Info);
}

#[test]
fn analysis_codes_ride_on_top_of_structural_lints() {
    // `analyze` is a strict superset of `lint`: same bundle, same
    // structural diagnostics, plus the A-family.
    let bundle = load_path(&fixture_path("contractible.json")).expect("loads");
    let lint_report = lint(&bundle);
    let analyze_report = analyze(&bundle);
    for d in &lint_report.diagnostics {
        assert!(
            analyze_report.diagnostics.iter().any(|a| a.code == d.code),
            "structural {} missing from analyze output",
            d.code
        );
    }
    assert!(analyze_report.diagnostics.len() >= lint_report.diagnostics.len());
}

#[test]
fn space_analysis_classifies_fixture_constraints() {
    let bundle = load_path(&fixture_path("tautology.json")).expect("loads");
    let s = analyze_space(&bundle);
    assert!(s.analyzed);
    assert!(s
        .constraints
        .iter()
        .any(|c| c.class == ConstraintClass::Tautology));
    assert!(!s.proved_empty);
}

#[test]
fn contracted_fixture_reanalyzes_without_a004_on_same_params() {
    // Rewriting the contractible fixture bakes the tightened bounds in;
    // a second analysis over the rewritten plan finds nothing left to
    // tighten (the fixpoint is idempotent).
    let src = std::fs::read_to_string(fixture_path("contractible.json")).expect("read");
    let bundle = load_str(&src).expect("loads");
    let analysis = analyze_space(&bundle);
    assert!(analysis.any_narrowed());
    let rewritten = rewrite_contracted(&src, &analysis).expect("rewrite succeeds");
    let bundle2 = load_str(&rewritten).expect("rewritten plan loads");
    let analysis2 = analyze_space(&bundle2);
    assert!(
        !analysis2.any_narrowed(),
        "second pass should find nothing to tighten"
    );
}

#[test]
fn exemplar_contracts_strictly_in_at_least_one_dimension() {
    // Acceptance criterion: the shipped exemplar's contracted box is
    // strictly smaller than the declared one in at least one dimension.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/plans/tddft_plan.json");
    let src = std::fs::read_to_string(path).expect("exemplar readable");
    let bundle = load_str(&src).expect("exemplar loads");
    let analysis = analyze_space(&bundle);
    assert!(analysis.analyzed && !analysis.proved_empty);
    assert!(
        analysis.params.iter().any(|p| p.tightened.is_some()),
        "exemplar should have at least one contractible parameter"
    );

    // And the rewritten exemplar is deny-warnings clean under `analyze`.
    // Info-level findings are allowed: the contracted plan still carries
    // the two-parameter residency constraint, so the octagon closure
    // keeps inferring its relational bound (A006) — that is advice about
    // structure per-parameter bounds cannot express, not residual
    // contractibility.
    let rewritten = rewrite_contracted(&src, &analysis).expect("rewrite succeeds");
    let bundle2 = load_str(&rewritten).expect("contracted exemplar loads");
    let report = analyze(&bundle2);
    assert!(
        report.errors() == 0 && report.warnings() == 0,
        "contracted exemplar must be deny-warnings clean:\n{}",
        render_human(&report)
    );
    assert!(
        report.diagnostics.iter().all(|d| d.code == "A006"),
        "only inferred-relation infos expected:\n{}",
        render_human(&report)
    );
}

#[test]
fn exemplar_octagon_infers_relational_residency_bound() {
    // Acceptance criterion: the octagon closure proves the exemplar's
    // two-parameter residency product constraint implies a *relational*
    // sum bound (≈ 544) far below the box-implied 1024 — structure no
    // per-parameter interval can express.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/plans/tddft_plan.json");
    let src = std::fs::read_to_string(path).expect("exemplar readable");
    let bundle = load_str(&src).expect("exemplar loads");
    let analysis = analyze_space(&bundle);
    let rel = analysis
        .relations
        .iter()
        .find(|r| r.inferred && r.kind == RelationKind::Sum && r.upper)
        .expect("an inferred sum upper bound");
    assert!(
        (rel.bound - 544.0).abs() < 1.0,
        "expected sum bound ≈ 544, got {}",
        rel.bound
    );
    // Box reasoning alone would only give hi(a) + hi(b) = 512 + 512.
    assert!(rel.bound < 1024.0);
}

#[test]
fn disjunctive_fixture_recovers_both_slabs() {
    let bundle = load_path(&fixture_path("disjunctive.json")).expect("loads");
    let analysis = analyze_space(&bundle);
    let p = &analysis.params[0];
    assert_eq!(p.slabs.len(), 2, "slabs: {:?}", p.slabs);
    assert_eq!((p.slabs[0].lo, p.slabs[0].hi), (0.0, 1.0));
    assert_eq!((p.slabs[1].lo, p.slabs[1].hi), (9.0, 10.0));
    // The hull spans the declared box; the slab union carries the point.
    assert_eq!((p.contracted.lo, p.contracted.hi), (0.0, 10.0));
    // 4 of 11 integer values are feasible.
    let frac = analysis.feasible_fraction;
    assert!((frac - 4.0 / 11.0).abs() < 0.05, "fraction {frac}");
    // The report narrates the union as A007.
    let r = fixture("disjunctive.json");
    assert_code(&r, "A007", Severity::Info);
}

#[test]
fn octagon_unsat_fixture_is_denied_only_relationally() {
    // x − y ≤ −10 ∧ y − x ≤ −10 is empty, but each constraint alone
    // admits the full box: only the relational closure sees the cycle.
    let bundle = load_path(&fixture_path("octagon_unsat.json")).expect("loads");
    let oct = analyze_space(&bundle);
    assert!(oct.proved_empty, "octagon proves joint emptiness");
    let r = analyze(&bundle);
    assert_code(&r, "A001", Severity::Error);
    assert!(r.errors() > 0, "analyze must deny the empty plan");

    let interval = analyze_space_with(
        &bundle,
        &AnalysisOptions {
            domain: Domain::Interval,
            ..Default::default()
        },
    );
    assert!(
        !interval.proved_empty,
        "interval HC4 alone cannot close the difference cycle over a wide box"
    );
}

#[test]
fn congruence_unsat_fixture_is_denied_only_by_the_product() {
    // n ≡ 1 (mod 6) forces n odd while n ≡ 0 (mod 4) forces n even: the
    // CRT meet in the congruence domain is ⊥. Neither interval iteration
    // (the box is 10⁹ wide) nor the octagon closure (no two-parameter
    // relation exists) can prove the conflict.
    let bundle = load_path(&fixture_path("congruence_unsat.json")).expect("loads");
    let product = analyze_space(&bundle);
    assert!(
        product.proved_empty,
        "congruence CRT proves joint emptiness"
    );
    let r = analyze(&bundle);
    assert_code(&r, "A001", Severity::Error);
    assert!(r.errors() > 0, "analyze must deny the empty plan");

    let octagon = analyze_space_with(
        &bundle,
        &AnalysisOptions {
            domain: Domain::Octagon,
            ..Default::default()
        },
    );
    assert!(
        !octagon.proved_empty,
        "octagon + interval alone cannot see the modular conflict"
    );
}

#[test]
fn forced_fixture_reports_a011_for_the_single_surviving_option() {
    let bundle = load_path(&fixture_path("forced.json")).expect("loads");
    let analysis = analyze_space(&bundle);
    let mode = analysis
        .params
        .iter()
        .find(|p| p.name == "mode")
        .expect("mode analyzed");
    assert_eq!(mode.kept.as_deref(), Some(&[2usize][..]));
    let r = fixture("forced.json");
    assert_code(&r, "A011", Severity::Warning);
    assert!(
        !r.has_code("A010"),
        "A011 subsumes A010 for a singleton survivor set"
    );
}

#[test]
fn hpl_exemplar_emits_stride_and_dead_option_findings() {
    // Acceptance criteria for the shipped HPL-style exemplar: the
    // congruence domain reports the block-alignment stride on `n` (A009)
    // and the finite-set domain finds the dead broadcast variants (A010).
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/plans/hpl_plan.json");
    let src = std::fs::read_to_string(path).expect("exemplar readable");
    let bundle = load_str(&src).expect("exemplar loads");
    let analysis = analyze_space(&bundle);
    assert!(analysis.analyzed && !analysis.proved_empty);
    let n = analysis
        .params
        .iter()
        .find(|p| p.name == "n")
        .expect("n analyzed");
    assert_eq!(n.stride, Some((64, 0)), "block-aligned stride on n");
    let bcast = analysis
        .params
        .iter()
        .find(|p| p.name == "bcast")
        .expect("bcast analyzed");
    let kept = bcast.kept.as_deref().expect("bcast has a survivor set");
    assert_eq!(kept, &[0, 1, 2, 3], "Lng/LnM are dead under bcast <= 3");

    let r = analyze(&bundle);
    assert_code(&r, "A009", Severity::Info);
    assert_code(&r, "A010", Severity::Warning);
    assert!(
        r.errors() == 0,
        "exemplar must not be denied:\n{}",
        render_human(&r)
    );

    // `--contract` bakes the findings in and is idempotent: the rewritten
    // plan re-analyzes with nothing left to prune.
    let rewritten = rewrite_contracted(&src, &analysis).expect("rewrite succeeds");
    let bundle2 = load_str(&rewritten).expect("contracted exemplar loads");
    let analysis2 = analyze_space(&bundle2);
    let rewritten2 = rewrite_contracted(&rewritten, &analysis2).expect("second rewrite succeeds");
    assert_eq!(rewritten, rewritten2, "--contract must be idempotent");
}

#[test]
fn octagon_pair_fixture_tightens_beyond_intervals() {
    // a + b ≤ 10 ∧ a − b ≤ 2 ⇒ 2a ≤ 12 ⇒ a ≤ 6; HC4 on either atom
    // alone leaves a at 10.
    let bundle = load_path(&fixture_path("octagon_pair.json")).expect("loads");
    let oct = analyze_space(&bundle);
    let a_oct = &oct.params[0];
    assert_eq!(a_oct.contracted.hi, 6.0, "octagon bound: {:?}", a_oct);

    let interval = analyze_space_with(
        &bundle,
        &AnalysisOptions {
            domain: Domain::Interval,
            ..Default::default()
        },
    );
    assert_eq!(interval.params[0].contracted.hi, 10.0);
}
