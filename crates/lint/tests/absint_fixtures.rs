//! End-to-end fixture tests for the abstract-interpretation analysis
//! codes (A001–A005): every code is detected in a real plan file loaded
//! from disk, and the contracted exemplar stays deny-warnings clean.

use cets_lint::{
    analyze, analyze_space, lint, load_path, load_str, render_human, rewrite_contracted,
    ConstraintClass, Report, Severity,
};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/absint")
        .join(name)
}

fn fixture(name: &str) -> Report {
    let bundle =
        load_path(&fixture_path(name)).unwrap_or_else(|e| panic!("{name} should load: {e}"));
    analyze(&bundle)
}

fn assert_code(report: &Report, code: &str, severity: Severity) {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code}, got:\n{}", render_human(report)));
    assert_eq!(d.severity, severity, "{code} severity");
}

#[test]
fn proved_unsat_constraint_is_a001() {
    let r = fixture("unsat.json");
    assert_code(&r, "A001", Severity::Error);
}

#[test]
fn jointly_unsat_conjunction_is_a001_at_plan_level() {
    let r = fixture("jointly_unsat.json");
    assert_code(&r, "A001", Severity::Error);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "A001")
        .expect("A001 present");
    assert_eq!(
        d.location.kind(),
        "plan",
        "joint emptiness is a plan-level fact"
    );
}

#[test]
fn tautological_constraint_is_a002() {
    let r = fixture("tautology.json");
    assert_code(&r, "A002", Severity::Warning);
}

#[test]
fn thin_feasible_fraction_is_a003() {
    let r = fixture("contractible.json");
    assert_code(&r, "A003", Severity::Warning);
}

#[test]
fn contractible_bounds_are_a004() {
    let r = fixture("contractible.json");
    assert_code(&r, "A004", Severity::Warning);
    // Both `buf` (via `buf <= 9`) and `tb` (via `tb * 64 <= 49152`) narrow.
    assert_eq!(r.diagnostics.iter().filter(|d| d.code == "A004").count(), 2);
}

#[test]
fn fixpoint_cap_is_a005() {
    let r = fixture("nonconverging.json");
    assert_code(&r, "A005", Severity::Info);
}

#[test]
fn analysis_codes_ride_on_top_of_structural_lints() {
    // `analyze` is a strict superset of `lint`: same bundle, same
    // structural diagnostics, plus the A-family.
    let bundle = load_path(&fixture_path("contractible.json")).expect("loads");
    let lint_report = lint(&bundle);
    let analyze_report = analyze(&bundle);
    for d in &lint_report.diagnostics {
        assert!(
            analyze_report.diagnostics.iter().any(|a| a.code == d.code),
            "structural {} missing from analyze output",
            d.code
        );
    }
    assert!(analyze_report.diagnostics.len() >= lint_report.diagnostics.len());
}

#[test]
fn space_analysis_classifies_fixture_constraints() {
    let bundle = load_path(&fixture_path("tautology.json")).expect("loads");
    let s = analyze_space(&bundle);
    assert!(s.analyzed);
    assert!(s
        .constraints
        .iter()
        .any(|c| c.class == ConstraintClass::Tautology));
    assert!(!s.proved_empty);
}

#[test]
fn contracted_fixture_reanalyzes_without_a004_on_same_params() {
    // Rewriting the contractible fixture bakes the tightened bounds in;
    // a second analysis over the rewritten plan finds nothing left to
    // tighten (the fixpoint is idempotent).
    let src = std::fs::read_to_string(fixture_path("contractible.json")).expect("read");
    let bundle = load_str(&src).expect("loads");
    let analysis = analyze_space(&bundle);
    assert!(analysis.any_narrowed());
    let rewritten = rewrite_contracted(&src, &analysis).expect("rewrite succeeds");
    let bundle2 = load_str(&rewritten).expect("rewritten plan loads");
    let analysis2 = analyze_space(&bundle2);
    assert!(
        !analysis2.any_narrowed(),
        "second pass should find nothing to tighten"
    );
}

#[test]
fn exemplar_contracts_strictly_in_at_least_one_dimension() {
    // Acceptance criterion: the shipped exemplar's contracted box is
    // strictly smaller than the declared one in at least one dimension.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/plans/tddft_plan.json");
    let src = std::fs::read_to_string(path).expect("exemplar readable");
    let bundle = load_str(&src).expect("exemplar loads");
    let analysis = analyze_space(&bundle);
    assert!(analysis.analyzed && !analysis.proved_empty);
    assert!(
        analysis.params.iter().any(|p| p.tightened.is_some()),
        "exemplar should have at least one contractible parameter"
    );

    // And the rewritten exemplar is deny-warnings clean under `analyze`.
    let rewritten = rewrite_contracted(&src, &analysis).expect("rewrite succeeds");
    let bundle2 = load_str(&rewritten).expect("contracted exemplar loads");
    let report = analyze(&bundle2);
    assert!(
        report.is_clean(),
        "contracted exemplar must be clean:\n{}",
        render_human(&report)
    );
}
