//! Property-based tests for the linter's core guarantees:
//!
//! 1. **Totality** — `lint` never panics, whatever hostile bundle it is
//!    handed (NaN scores, inverted bounds, duplicate names, dangling
//!    references, degenerate plans).
//! 2. **Determinism** — the same bundle renders to the same report, byte
//!    for byte, in both output formats.
//! 3. **Reporter integrity** — the JSON rendering is always parseable and
//!    its counters match the diagnostic list, even for adversarial names.
//! 4. **Expression totality** — the constraint-expression parser never
//!    panics on arbitrary input.
//!
//! The bundles are generated from a seed via an inline SplitMix64 so every
//! pathological field combination is reachable without fighting strategy
//! combinators.

use cets_lint::{
    lint, render_human, render_json, ConstraintSpec, KernelSpec, ParamSpec, PlanBundle, PlanSpec,
    SearchSpec, Severity, UnresolvedRef,
};
use cets_space::ParamDef;
use proptest::prelude::*;

/// Deterministic 64-bit mixer (same scheme the S004 prober uses).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Mix of ordinary and hostile floating-point values.
    fn f64(&mut self) -> f64 {
        match self.below(10) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -1.0,
            4 => 0.0,
            5 => 1e300,
            _ => (self.next() % 2000) as f64 / 100.0 - 5.0,
        }
    }

    fn name(&mut self) -> String {
        const POOL: &[&str] = &[
            "a",
            "b",
            "tb",
            "zc_tb",
            "p0",
            "p1",
            "dup",
            "dup",
            "",
            "weird \"name\"\nwith\tescapes",
            "ünïcode-参数",
            "ghost",
        ];
        POOL[self.below(POOL.len())].to_string()
    }

    fn names(&mut self, max: usize) -> Vec<String> {
        (0..self.below(max + 1)).map(|_| self.name()).collect()
    }
}

fn arbitrary_def(rng: &mut Mix) -> ParamDef {
    match rng.below(4) {
        0 => ParamDef::Real {
            lo: rng.f64(),
            hi: rng.f64(),
        },
        1 => ParamDef::Integer {
            lo: (rng.next() % 64) as i64 - 32,
            hi: (rng.next() % 64) as i64 - 32,
        },
        2 => ParamDef::Ordinal {
            values: (0..rng.below(4)).map(|_| rng.f64()).collect(),
        },
        _ => ParamDef::Categorical {
            options: rng.names(3),
        },
    }
}

fn arbitrary_bundle(seed: u64) -> PlanBundle {
    let mut rng = Mix(seed);
    let params: Vec<ParamSpec> = (0..rng.below(7))
        .map(|_| ParamSpec {
            name: rng.name(),
            def: arbitrary_def(&mut rng),
            default: if rng.below(2) == 0 {
                Some(rng.f64())
            } else {
                None
            },
        })
        .collect();

    const EXPRS: &[&str] = &[
        "a + b <= 10",
        "tb * tb <= 2048",
        "a >= 10 and b >= 10",
        "ghost + 1 <= 0",
        "((",
        "a +",
        "1 <=",
        "not an expression at all",
        "",
        "-a * (b + 2) < 7 or a == b",
    ];
    let constraints: Vec<ConstraintSpec> = (0..rng.below(4))
        .map(|_| ConstraintSpec {
            name: rng.name(),
            expr: EXPRS[rng.below(EXPRS.len())].to_string(),
        })
        .collect();

    let graph = if rng.below(3) > 0 {
        let routines = rng.names(3);
        let pnames: Vec<String> = params.iter().map(|p| p.name.clone()).collect();
        let mut g = cets_graph::InfluenceGraph::new(routines.clone(), pnames.clone());
        for _ in 0..rng.below(6) {
            let p = rng.name();
            let r = rng.name();
            let s = rng.f64();
            let _ = g.set_score(&p, &r, s); // dangling names simply fail
            let _ = g.set_owner(&p, &r);
        }
        for p in &pnames {
            for r in &routines {
                if rng.below(2) == 0 {
                    let s = rng.f64();
                    let _ = g.set_score(p, r, s);
                }
            }
        }
        Some(g)
    } else {
        None
    };

    let plan = if rng.below(2) == 0 {
        Some(PlanSpec {
            stages: (0..rng.below(4))
                .map(|_| {
                    (0..rng.below(3))
                        .map(|_| SearchSpec {
                            name: rng.name(),
                            params: rng.names(12),
                            routines: rng.names(3),
                        })
                        .collect()
                })
                .collect(),
        })
    } else {
        None
    };

    PlanBundle {
        params,
        constraints,
        graph,
        cutoff: rng.f64(),
        max_dims: rng.below(14),
        precedence: rng.names(3),
        shared_params: (0..rng.below(3)).map(|_| rng.names(3)).collect(),
        kernel: if rng.below(2) == 0 {
            Some(KernelSpec {
                noise_floor: rng.f64(),
                length_scales: (0..rng.below(4)).map(|_| rng.f64()).collect(),
                signal_variance: if rng.below(2) == 0 {
                    Some(rng.f64())
                } else {
                    None
                },
            })
        } else {
            None
        },
        plan,
        unresolved: (0..rng.below(3))
            .map(|_| UnresolvedRef {
                context: rng.name(),
                name: rng.name(),
            })
            .collect(),
        spans: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lint_is_total_on_hostile_bundles(seed in 0u64..u64::MAX) {
        let bundle = arbitrary_bundle(seed);
        let report = lint(&bundle); // must not panic
        // Counters are consistent with the diagnostic list.
        let errors = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        prop_assert_eq!(report.errors(), errors);
        prop_assert_eq!(report.warnings(), warnings);
        prop_assert_eq!(report.is_clean(), report.diagnostics.is_empty());
    }

    #[test]
    fn lint_is_deterministic(seed in 0u64..u64::MAX) {
        let bundle = arbitrary_bundle(seed);
        let a = lint(&bundle);
        let b = lint(&bundle);
        prop_assert_eq!(render_human(&a), render_human(&b));
        prop_assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn json_rendering_always_parses(seed in 0u64..u64::MAX) {
        let bundle = arbitrary_bundle(seed);
        let report = lint(&bundle);
        let json = render_json(&report);
        let v = serde_json::parse_value(&json)
            .map_err(|e| format!("unparseable report JSON: {e}\n{json}"))?;
        prop_assert_eq!(
            v.get_field("errors").as_u64().map_err(|e| e.to_string())?,
            report.errors() as u64
        );
        prop_assert_eq!(
            v.get_field("diagnostics")
                .as_array()
                .map_err(|e| e.to_string())?
                .len(),
            report.diagnostics.len()
        );
    }

    #[test]
    fn expr_parser_is_total(seed in 0u64..u64::MAX) {
        // Random byte soup over an expression-flavoured alphabet.
        let mut rng = Mix(seed);
        const ALPHABET: &[u8] = b"abx01 +-*/()<>=!&|.eand or not\t";
        let len = rng.below(40);
        let s: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len())] as char)
            .collect();
        let _ = cets_lint::expr::parse(&s); // must not panic
        if let Ok(e) = cets_lint::expr::parse(&s) {
            // Evaluation is total too, whatever the variable bindings.
            let _ = e.eval(&|_| Some(1.0));
            let _ = e.eval(&|_| None);
            let _ = e.eval(&|_| Some(f64::NAN));
        }
    }
}
