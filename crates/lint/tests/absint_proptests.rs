//! Property-based soundness tests for the abstract-interpretation engine:
//!
//! 1. **Forward enclosure** — the interval evaluation of a random
//!    expression over a box encloses the concrete evaluation at every
//!    sampled point of that box (NaN results are predicted by the
//!    `maybe_nan` flag).
//! 2. **Contraction soundness** — the contracted box is a subset of the
//!    original box, and *no constraint-satisfying point is excluded*: any
//!    sampled point that concretely satisfies every constraint still lies
//!    inside every contracted interval. When the contraction proves the
//!    box empty, no sampled point satisfies the conjunction.
//! 3. **Totality & determinism** — the analysis registry (`analyze`) and
//!    the space analysis never panic on hostile bundles and are
//!    byte-for-byte deterministic.
//!
//! Expressions and boxes are generated from a seed via an inline
//! SplitMix64 (the same scheme as `proptests.rs`) so that pathological
//! shapes — division by zero-spanning intervals, `Rem`, nested boolean
//! operators — are all reachable.

use cets_lint::absint::{analyze_space, contract, eval_expr, initial_interval, Interval};
use cets_lint::expr::{BinOp, Expr};
use cets_lint::Congruence;
use cets_lint::{analyze, render_human, ConstraintSpec, ParamSpec, PlanBundle};
use cets_space::ParamDef;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic 64-bit mixer (same scheme the S004 prober uses).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const NAMES: &[&str] = &["a", "b", "c", "d"];

/// A random *valid* domain (this suite tests soundness over well-formed
/// boxes; totality over malformed ones is covered separately).
fn valid_def(rng: &mut Mix) -> ParamDef {
    match rng.below(4) {
        0 => {
            let lo = (rng.below(2001) as f64) / 10.0 - 100.0;
            let w = (rng.below(1000) as f64) / 10.0 + 0.1;
            ParamDef::Real { lo, hi: lo + w }
        }
        1 => {
            let lo = rng.below(200) as i64 - 100;
            let w = rng.below(100) as i64;
            ParamDef::Integer { lo, hi: lo + w }
        }
        2 => {
            let mut values: Vec<f64> = (0..rng.below(4) + 1)
                .map(|_| rng.below(64) as f64 - 32.0)
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values.dedup();
            ParamDef::Ordinal { values }
        }
        _ => ParamDef::Categorical {
            options: (0..rng.below(3) + 1).map(|i| format!("opt{i}")).collect(),
        },
    }
}

/// Sample one concrete value from a domain, on the numeric scale the
/// interval analysis uses (ordinals by value, categoricals by index).
fn sample_value(def: &ParamDef, rng: &mut Mix) -> f64 {
    match def {
        ParamDef::Real { lo, hi } => lo + rng.unit() * (hi - lo),
        ParamDef::Integer { lo, hi } => {
            let span = (hi - lo) as u64 + 1;
            (lo + (rng.next() % span) as i64) as f64
        }
        ParamDef::Ordinal { values } => values[rng.below(values.len())],
        ParamDef::Categorical { options } => rng.below(options.len()) as f64,
    }
}

/// A random expression tree over `names`, mixing arithmetic, comparison
/// and boolean nodes. Depth-bounded; leaves are variables and constants
/// (including 0, to reach division-by-zero territory).
fn arbitrary_expr(rng: &mut Mix, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            Expr::Var(NAMES[rng.below(NAMES.len())].to_string())
        } else {
            let consts = [-8.0, -1.0, 0.0, 0.5, 1.0, 2.0, 10.0, 100.0];
            Expr::Num(consts[rng.below(consts.len())])
        };
    }
    if rng.below(8) == 0 {
        return Expr::Neg(Box::new(arbitrary_expr(rng, depth - 1)));
    }
    const OPS: &[BinOp] = &[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Le,
        BinOp::Ge,
        BinOp::Lt,
        BinOp::Gt,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::And,
        BinOp::Or,
    ];
    Expr::Bin(
        OPS[rng.below(OPS.len())],
        Box::new(arbitrary_expr(rng, depth - 1)),
        Box::new(arbitrary_expr(rng, depth - 1)),
    )
}

/// A random well-formed box over `NAMES`.
fn arbitrary_box(rng: &mut Mix) -> Vec<(String, ParamDef)> {
    NAMES
        .iter()
        .map(|n| (n.to_string(), valid_def(rng)))
        .collect()
}

/// Comparison-flavoured constraint expressions (the realistic shape) plus
/// a few exotic ones.
fn arbitrary_constraint(rng: &mut Mix) -> Expr {
    let lhs = arbitrary_expr(rng, 2);
    let consts = [-50.0, 0.0, 1.0, 10.0, 100.0, 2048.0];
    let rhs = Expr::Num(consts[rng.below(consts.len())]);
    const CMPS: &[BinOp] = &[BinOp::Le, BinOp::Ge, BinOp::Lt, BinOp::Gt, BinOp::Eq];
    match rng.below(6) {
        0 => arbitrary_expr(rng, 3), // anything goes
        _ => Expr::Bin(CMPS[rng.below(CMPS.len())], Box::new(lhs), Box::new(rhs)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Forward enclosure: interval evaluation encloses concrete evaluation
    /// at every sampled point of the box.
    #[test]
    fn forward_eval_encloses_concrete_eval(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let params = arbitrary_box(&mut rng);
        let expr = arbitrary_expr(&mut rng, 3);

        let env: BTreeMap<String, _> = params
            .iter()
            .map(|(n, d)| (n.clone(), initial_interval(d).expect("valid def")))
            .collect();
        let iv = eval_expr(&expr, &env);

        for _ in 0..32 {
            let point: BTreeMap<String, f64> = params
                .iter()
                .map(|(n, d)| (n.clone(), sample_value(d, &mut rng)))
                .collect();
            let v = expr
                .eval(&|n| point.get(n).copied())
                .expect("all variables bound");
            if v.is_nan() {
                prop_assert!(iv.maybe_nan, "concrete NaN not predicted: {expr:?} at {point:?}");
            } else {
                prop_assert!(
                    iv.contains(v),
                    "concrete {v} outside {iv} for {expr:?} at {point:?}"
                );
            }
        }
    }

    /// Contraction soundness: contracted ⊆ original, and no point that
    /// satisfies every constraint is excluded from the contracted box.
    #[test]
    fn contraction_excludes_no_satisfying_point(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let params = arbitrary_box(&mut rng);
        let constraints: Vec<Expr> = (0..rng.below(3) + 1)
            .map(|_| arbitrary_constraint(&mut rng))
            .collect();

        let param_refs: Vec<(&str, &ParamDef)> =
            params.iter().map(|(n, d)| (n.as_str(), d)).collect();
        let expr_refs: Vec<&Expr> = constraints.iter().collect();
        let c = contract(&param_refs, &expr_refs);

        // Contracted ⊆ original.
        for (n, d) in &params {
            let orig = initial_interval(d).expect("valid def");
            let got = c.env.get(n).expect("every param present");
            if !got.is_empty_range() {
                prop_assert!(
                    got.lo >= orig.lo && got.hi <= orig.hi,
                    "{n}: contracted {got} escapes original {orig}"
                );
            }
        }

        // No satisfying point excluded.
        for _ in 0..64 {
            let point: BTreeMap<String, f64> = params
                .iter()
                .map(|(n, d)| (n.clone(), sample_value(d, &mut rng)))
                .collect();
            let sat = constraints.iter().all(|e| {
                e.satisfied(&|n| point.get(n).copied()).unwrap_or(false)
            });
            if !sat {
                continue;
            }
            prop_assert!(
                !c.proved_empty,
                "box proved empty but {point:?} satisfies all of {constraints:?}"
            );
            for (n, v) in &point {
                let iv = c.env.get(n).expect("param present");
                prop_assert!(
                    iv.contains(*v),
                    "satisfying point {point:?} excluded: {n}={v} outside {iv} \
                     (constraints {constraints:?})"
                );
            }
        }
    }

    /// The analysis registry is total and deterministic on hostile
    /// bundles (invalid domains, unparseable constraints, NaN defaults).
    #[test]
    fn analysis_is_total_and_deterministic_on_hostile_bundles(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let hostile_f64 = |rng: &mut Mix| match rng.below(8) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 1e300,
            _ => rng.below(2000) as f64 / 10.0 - 100.0,
        };
        let params: Vec<ParamSpec> = (0..rng.below(5))
            .map(|_| ParamSpec {
                name: ["a", "b", "dup", "dup", ""][rng.below(5)].to_string(),
                def: match rng.below(3) {
                    0 => ParamDef::Real {
                        lo: hostile_f64(&mut rng),
                        hi: hostile_f64(&mut rng),
                    },
                    1 => ParamDef::Integer {
                        lo: rng.below(64) as i64 - 32,
                        hi: rng.below(64) as i64 - 32,
                    },
                    _ => ParamDef::Ordinal {
                        values: (0..rng.below(3)).map(|_| hostile_f64(&mut rng)).collect(),
                    },
                },
                default: (rng.below(2) == 0).then(|| hostile_f64(&mut rng)),
            })
            .collect();
        const EXPRS: &[&str] = &[
            "a / 0 <= 1",
            "a % 0 == a",
            "a * 1e300 * 1e300 <= 0",
            "a - a == 0",
            "a + b <= 10 and a - b >= 0",
            "((",
            "ghost <= 1",
            "1 <= 2",
            "a != a",
        ];
        let constraints: Vec<ConstraintSpec> = (0..rng.below(4))
            .map(|_| ConstraintSpec {
                name: ["c1", "c2", "dead"][rng.below(3)].to_string(),
                expr: EXPRS[rng.below(EXPRS.len())].to_string(),
            })
            .collect();
        let bundle = PlanBundle {
            params,
            constraints,
            ..Default::default()
        };

        // Totality: neither the space analysis nor the full analysis
        // registry may panic, whatever the bundle contains.
        let s1 = analyze_space(&bundle);
        let s2 = analyze_space(&bundle);
        let r1 = analyze(&bundle);
        let r2 = analyze(&bundle);

        // Determinism, byte for byte.
        prop_assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
        prop_assert_eq!(render_human(&r1), render_human(&r2));

        // Internal consistency: proved-empty implies zero feasible fraction.
        if s1.analyzed && s1.proved_empty {
            prop_assert_eq!(s1.feasible_fraction, 0.0);
        }
        prop_assert!(s1.iterations <= cets_lint::absint::ITER_CAP);
    }
}

/// A random congruence element biased toward grids (the interesting
/// case), plus points, ⊤ and ⊥.
fn arbitrary_cong(rng: &mut Mix) -> Congruence {
    match rng.below(8) {
        0 => Congruence::Top,
        1 => Congruence::Bottom,
        2 => Congruence::Point(rng.below(2001) as i64 - 1000),
        _ => {
            let m = rng.below(999) as u64 + 2;
            Congruence::grid(m, rng.below(2001) as i64 - 1000)
        }
    }
}

/// Concretization test: is the integer `v` a member of `γ(c)`?
fn cong_member(c: &Congruence, v: i64) -> bool {
    match *c {
        Congruence::Top => true,
        Congruence::Bottom => false,
        Congruence::Point(p) => v == p,
        Congruence::Grid { m, r } => m == 1 || v.rem_euclid(m as i64) as u64 == r,
    }
}

/// A concrete member of `γ(c)`, when one exists, near the origin.
fn cong_sample(c: &Congruence, rng: &mut Mix) -> Option<i64> {
    match *c {
        Congruence::Top => Some(rng.below(2001) as i64 - 1000),
        Congruence::Bottom => None,
        Congruence::Point(p) => Some(p),
        Congruence::Grid { m, r } => {
            let k = rng.below(2001) as i64 - 1000;
            Some(k * m as i64 + r as i64)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Congruence transfer soundness: for concrete members `x ∈ γ(a)` and
    /// `y ∈ γ(b)`, every arithmetic result lands in the corresponding
    /// abstract transfer's concretization, and the lattice operations
    /// respect membership (join keeps both sides, meet keeps the
    /// intersection).
    #[test]
    fn congruence_transfers_are_sound(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let a = arbitrary_cong(&mut rng);
        let b = arbitrary_cong(&mut rng);
        for _ in 0..16 {
            let (Some(x), Some(y)) = (cong_sample(&a, &mut rng), cong_sample(&b, &mut rng))
            else {
                break;
            };
            prop_assert!(cong_member(&a.add(&b), x + y), "{x}+{y} ∉ {}", a.add(&b));
            prop_assert!(cong_member(&a.sub(&b), x - y), "{x}-{y} ∉ {}", a.sub(&b));
            prop_assert!(cong_member(&a.mul(&b), x * y), "{x}*{y} ∉ {}", a.mul(&b));
            prop_assert!(cong_member(&a.neg(), -x), "-{x} ∉ {}", a.neg());
            if y != 0 {
                // Concrete `%` is the truncated remainder (f64 semantics).
                prop_assert!(cong_member(&a.rem(&b), x % y), "{x}%{y} ∉ {}", a.rem(&b));
            }
            let j = a.join(&b);
            prop_assert!(cong_member(&j, x), "join drops left member {x}: {j}");
            prop_assert!(cong_member(&j, y), "join drops right member {y}: {j}");
            let m = a.meet(&b);
            prop_assert_eq!(
                cong_member(&m, x),
                cong_member(&b, x),
                "meet membership of {} must equal both-sides membership ({} ∧ {})", x, a, b
            );
        }
    }

    /// Interval reduction by a congruence is sound (no congruent integer
    /// inside the interval is dropped) and idempotent (snapping an
    /// already-snapped interval is the identity).
    #[test]
    fn congruence_tighten_is_sound_and_idempotent(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let c = arbitrary_cong(&mut rng);
        let lo = rng.below(20_001) as i64 - 10_000;
        let w = rng.below(5000) as i64;
        let iv = Interval::new(lo as f64, (lo + w) as f64);

        let t = c.tighten(&iv);
        // Soundness: every member of γ(c) inside `iv` survives.
        for _ in 0..32 {
            let v = lo + (rng.below(w as usize + 1) as i64);
            if cong_member(&c, v) {
                prop_assert!(
                    t.contains(v as f64),
                    "member {v} of {c} dropped: {iv} tightened to {t}"
                );
            }
        }
        // Idempotence: a second reduction changes nothing.
        let t2 = c.tighten(&t);
        prop_assert_eq!((t2.lo, t2.hi), (t.lo, t.hi), "tighten not idempotent for {}", c);
    }

    /// Finite-set soundness under the product domain: a satisfying point's
    /// option/value index is never pruned from a `kept` survivor set, and
    /// every surviving value lies inside the param's contracted interval
    /// hull (finite-set ⊆ interval-hull reduction invariant).
    #[test]
    fn finite_set_survivors_are_sound_and_inside_the_hull(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let (params, parsed, bundle) = relational_bundle(&mut rng);
        let out = analyze_space(&bundle);
        prop_assert!(out.analyzed);

        // Survivor values stay inside the contracted hull.
        if !out.proved_empty {
            for (i, (_, d)) in params.iter().enumerate() {
                let p = &out.params[i];
                let Some(kept) = p.kept.as_deref() else { continue };
                prop_assert!(!kept.is_empty(), "empty survivor set must flip proved_empty");
                for &k in kept {
                    let img = match d {
                        ParamDef::Ordinal { values } => values[k],
                        ParamDef::Categorical { .. } => k as f64,
                        _ => unreachable!("kept is only computed for finite domains"),
                    };
                    prop_assert!(
                        p.contracted.contains(img),
                        "survivor {img} of `{}` escapes hull {}",
                        p.name,
                        p.contracted
                    );
                }
            }
        }

        // No satisfying point's index is pruned.
        for _ in 0..64 {
            let point: BTreeMap<String, f64> = params
                .iter()
                .map(|(n, d)| (n.clone(), sample_value(d, &mut rng)))
                .collect();
            let sat = parsed.iter().all(|e| {
                e.satisfied(&|n| point.get(n).copied()).unwrap_or(false)
            });
            if !sat {
                continue;
            }
            prop_assert!(!out.proved_empty, "{point:?} satisfies {parsed:?}");
            for (i, (n, d)) in params.iter().enumerate() {
                let Some(kept) = out.params[i].kept.as_deref() else { continue };
                let idx = match d {
                    ParamDef::Ordinal { values } => {
                        values.iter().position(|v| *v == point[n]).expect("sampled value declared")
                    }
                    ParamDef::Categorical { .. } => point[n] as usize,
                    _ => continue,
                };
                prop_assert!(
                    kept.contains(&idx),
                    "feasible index {idx} of `{n}` pruned (kept {kept:?}, point {point:?}, \
                     constraints {parsed:?})"
                );
            }
        }
    }
}

/// Octagonal / disjunctive constraint strings — the shapes the relational
/// domain targets (unary bounds, ±x±y differences, products, slab unions).
fn relational_constraint(rng: &mut Mix) -> String {
    let x = NAMES[rng.below(NAMES.len())];
    let y = NAMES[rng.below(NAMES.len())];
    let consts = [-150.0, -50.0, -10.0, 0.0, 5.0, 10.0, 50.0, 200.0];
    let c = consts[rng.below(consts.len())];
    match rng.below(10) {
        0 => format!("{x} <= {c}"),
        1 => format!("{x} >= {c}"),
        2 => format!("{x} + {y} <= {c}"),
        3 => format!("{x} - {y} <= {c}"),
        4 => format!("{x} + {y} >= {c}"),
        5 => format!("{x} - {y} >= {c}"),
        6 => format!("{x} * {y} <= {c}"),
        7 => {
            // Divisibility — the congruence domain's home turf.
            let m = [2, 3, 4, 8, 16][rng.below(5)];
            let r = rng.below(m);
            format!("{x} % {m} == {r}")
        }
        8 => format!("{x} % {y} == 0"),
        _ => {
            let c2 = consts[rng.below(consts.len())];
            format!("{x} <= {c} || {x} >= {c2}")
        }
    }
}

/// A bundle over `NAMES` with relational constraint strings; returns the
/// parsed constraints alongside so points can be checked concretely.
fn relational_bundle(rng: &mut Mix) -> (Vec<(String, ParamDef)>, Vec<Expr>, PlanBundle) {
    let params = arbitrary_box(rng);
    let constraints: Vec<String> = (0..rng.below(3) + 1)
        .map(|_| relational_constraint(rng))
        .collect();
    let parsed: Vec<Expr> = constraints
        .iter()
        .map(|e| cets_lint::expr::parse(e).expect("generated constraints parse"))
        .collect();
    let bundle = PlanBundle {
        params: params
            .iter()
            .map(|(n, d)| ParamSpec {
                name: n.clone(),
                def: d.clone(),
                default: None,
            })
            .collect(),
        constraints: constraints
            .iter()
            .enumerate()
            .map(|(i, e)| ConstraintSpec {
                name: format!("c{i}"),
                expr: e.clone(),
            })
            .collect(),
        ..Default::default()
    };
    (params, parsed, bundle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Octagon soundness: the relational analysis (closure, branch-and-
    /// prune, slab merging) never drops a satisfying point — neither from
    /// the contracted hull nor from the slab union, and never by proving
    /// a satisfiable system empty. The slab containment check is exactly
    /// "the branch join encloses every branch's feasible points".
    #[test]
    fn octagon_analysis_excludes_no_satisfying_point(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let (params, parsed, bundle) = relational_bundle(&mut rng);
        let oct = cets_lint::analyze_space(&bundle);
        prop_assert!(oct.analyzed);

        for _ in 0..64 {
            let point: BTreeMap<String, f64> = params
                .iter()
                .map(|(n, d)| (n.clone(), sample_value(d, &mut rng)))
                .collect();
            let sat = parsed.iter().all(|e| {
                e.satisfied(&|n| point.get(n).copied()).unwrap_or(false)
            });
            if !sat {
                continue;
            }
            prop_assert!(
                !oct.proved_empty,
                "proved empty but {point:?} satisfies {parsed:?}"
            );
            for (i, (n, _)) in params.iter().enumerate() {
                let p = &oct.params[i];
                let v = point[n];
                prop_assert!(
                    p.contracted.contains(v),
                    "{n}={v} outside hull {} (constraints {parsed:?})",
                    p.contracted
                );
                prop_assert!(
                    p.slabs.iter().any(|s| s.contains(v)),
                    "{n}={v} dropped from every slab {:?} (constraints {parsed:?})",
                    p.slabs
                );
            }
        }
    }

    /// The octagon domain refines the interval domain: per-parameter
    /// octagon hulls are never looser than interval hulls on the same
    /// system, and proved emptiness is monotone (interval-empty implies
    /// octagon-empty).
    #[test]
    fn octagon_is_at_least_as_tight_as_intervals(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let (_, _, bundle) = relational_bundle(&mut rng);
        let oct = cets_lint::analyze_space(&bundle);
        let ivl = cets_lint::analyze_space_with(
            &bundle,
            &cets_lint::AnalysisOptions {
                domain: cets_lint::Domain::Interval,
                ..Default::default()
            },
        );
        prop_assert!(oct.analyzed && ivl.analyzed);
        if ivl.proved_empty {
            prop_assert!(oct.proved_empty, "interval-empty must stay empty relationally");
        }
        if oct.proved_empty {
            return Ok(());
        }
        for (po, pi) in oct.params.iter().zip(ivl.params.iter()) {
            prop_assert!(
                po.contracted.lo >= pi.contracted.lo - 1e-9
                    && po.contracted.hi <= pi.contracted.hi + 1e-9,
                "octagon {} looser than interval {}",
                po.contracted,
                pi.contracted
            );
        }
    }
}
