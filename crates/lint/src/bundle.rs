//! The lint subject: a plain-data description of everything the
//! methodology is about to execute.
//!
//! A [`PlanBundle`] is deliberately *not* the live `cets-core` object
//! graph: it is a data mirror that can be built from a loaded plan file
//! (see [`crate::loader`]) or assembled by `cets-core` from its in-memory
//! `SearchSpace` / `InfluenceGraph` / `SearchPlan` right before execution.
//! Keeping it plain data means every rule is a pure function over the
//! bundle and the linter can run before a single objective evaluation is
//! spent.

use cets_graph::InfluenceGraph;
use cets_space::ParamDef;

/// One search-space parameter: its domain and (optionally) its default.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (must be unique — rule `S001`).
    pub name: String,
    /// Domain definition (reused from `cets-space`).
    pub def: ParamDef,
    /// Default / baseline value as the numeric view used by sensitivity
    /// analysis (`None` when the plan has no baseline). Categorical
    /// defaults are option indices.
    pub default: Option<f64>,
}

/// One constraint as an expression string over parameter names
/// (see [`crate::expr`] for the language).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSpec {
    /// Constraint name (for diagnostics).
    pub name: String,
    /// Expression source, e.g. `"tb * tb_sm <= 2048"`. Constraints whose
    /// source does not parse are skipped by the satisfiability probe —
    /// the linter only analyzes what it can understand.
    pub expr: String,
}

/// The GP kernel / noise configuration the searches will use, as far as
/// the numerics rules need it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Noise-variance floor added to the covariance diagonal. Zero or
    /// negative values make Cholesky factorization PSD-fragile
    /// (rule `N001`).
    pub noise_floor: f64,
    /// Fixed length-scales, when known (empty when optimized).
    pub length_scales: Vec<f64>,
    /// Signal variance, when known.
    pub signal_variance: Option<f64>,
}

/// One planned search: which parameters it tunes and which routines'
/// runtimes it minimizes (empty = the total objective).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Search name (e.g. `"G3+G4"`).
    pub name: String,
    /// Tuned parameter names.
    pub params: Vec<String>,
    /// Target routine names (empty = total objective).
    pub routines: Vec<String>,
}

/// The staged plan: stage `k+1` starts after stage `k`; searches within a
/// stage run in parallel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanSpec {
    /// Stages of mutually independent searches.
    pub stages: Vec<Vec<SearchSpec>>,
}

impl PlanSpec {
    /// All searches flattened in execution order.
    pub fn searches(&self) -> impl Iterator<Item = &SearchSpec> {
        self.stages.iter().flatten()
    }
}

/// A reference that failed to resolve while loading a plan file — kept in
/// the bundle (rather than aborting the load) so rule `S005` can report
/// it with a stable code.
#[derive(Debug, Clone, PartialEq)]
pub struct UnresolvedRef {
    /// What kind of thing referenced the name (e.g. `"owners"`,
    /// `"scores"`).
    pub context: String,
    /// The unknown name.
    pub name: String,
}

/// Everything the linter inspects.
#[derive(Debug, Clone)]
pub struct PlanBundle {
    /// Search-space parameters.
    pub params: Vec<ParamSpec>,
    /// Constraints as expressions.
    pub constraints: Vec<ConstraintSpec>,
    /// The influence graph, when sensitivity analysis ran (reused from
    /// `cets-graph`).
    pub graph: Option<InfluenceGraph>,
    /// Influence cut-off used for DAG pruning.
    pub cutoff: f64,
    /// Per-search dimensionality cap (paper: 10).
    pub max_dims: usize,
    /// Routines tuned first, then frozen.
    pub precedence: Vec<String>,
    /// Groups of parameters that must keep one value application-wide.
    pub shared_params: Vec<Vec<String>>,
    /// GP kernel configuration, when known.
    pub kernel: Option<KernelSpec>,
    /// The staged search plan, when already computed.
    pub plan: Option<PlanSpec>,
    /// Names that failed to resolve at load time.
    pub unresolved: Vec<UnresolvedRef>,
    /// Byte spans of the source file's parameters / constraints, when
    /// loaded from JSON (empty for bundles assembled in memory). The
    /// registry uses this to attach physical locations to diagnostics.
    pub spans: crate::span::SpanTable,
}

impl Default for PlanBundle {
    fn default() -> Self {
        PlanBundle {
            params: Vec::new(),
            constraints: Vec::new(),
            graph: None,
            cutoff: 0.25,
            max_dims: 10,
            precedence: Vec::new(),
            shared_params: Vec::new(),
            kernel: None,
            plan: None,
            unresolved: Vec::new(),
            spans: crate::span::SpanTable::default(),
        }
    }
}

impl PlanBundle {
    /// Is `name` a declared parameter?
    pub fn has_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name)
    }

    /// The spec of parameter `name`, if declared.
    pub fn param(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Routine names known to the graph (empty without a graph).
    pub fn routine_names(&self) -> &[String] {
        self.graph.as_ref().map_or(&[], |g| g.routines())
    }

    /// Is `name` a routine of the graph?
    pub fn has_routine(&self, name: &str) -> bool {
        self.routine_names().iter().any(|r| r == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_methodology_defaults() {
        let b = PlanBundle::default();
        assert_eq!(b.cutoff, 0.25);
        assert_eq!(b.max_dims, 10);
        assert!(b.graph.is_none());
    }

    #[test]
    fn lookup_helpers() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "tb".into(),
                def: ParamDef::Integer { lo: 32, hi: 1024 },
                default: Some(128.0),
            }],
            graph: Some(InfluenceGraph::new(vec!["G1".into()], vec!["tb".into()])),
            ..Default::default()
        };
        assert!(b.has_param("tb"));
        assert!(!b.has_param("xx"));
        assert!(b.has_routine("G1"));
        assert_eq!(b.param("tb").unwrap().default, Some(128.0));
    }
}
