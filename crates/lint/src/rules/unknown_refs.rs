//! `S005`: references to undeclared parameters or routines.
//!
//! The bundle cross-references names in five places — constraint
//! expressions, graph owners/scores (carried as
//! [`crate::bundle::UnresolvedRef`]s by the loader), the staged plan,
//! shared-parameter groups, and the precedence list. A dangling name in
//! any of them means the plan was assembled against a different space
//! than it will execute in, which is always an error.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::expr;
use crate::registry::Lint;

/// See the module docs.
pub struct UnknownRefs;

impl Lint for UnknownRefs {
    fn name(&self) -> &'static str {
        "unknown-refs"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["S005"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        // Loader-detected dangling names.
        for u in &bundle.unresolved {
            out.push(
                Diagnostic::error(
                    "S005",
                    Location::Plan,
                    format!("{} references unknown name `{}`", u.context, u.name),
                )
                .with_help("declare the name in the space/graph or remove the reference"),
            );
        }
        // Constraint expressions.
        for c in &bundle.constraints {
            if let Ok(e) = expr::parse(&c.expr) {
                for v in e.vars() {
                    if !bundle.has_param(&v) {
                        out.push(
                            Diagnostic::error(
                                "S005",
                                Location::Constraint(c.name.clone()),
                                format!(
                                    "constraint `{}` references unknown parameter `{v}`",
                                    c.name
                                ),
                            )
                            .with_help(
                                "every variable in a constraint must be a declared parameter",
                            ),
                        );
                    }
                }
            }
        }
        // Graph parameters not present in the space (when both exist).
        if let Some(g) = &bundle.graph {
            if !bundle.params.is_empty() {
                for p in g.params() {
                    if !bundle.has_param(p) {
                        out.push(Diagnostic::error(
                            "S005",
                            Location::Param(p.clone()),
                            format!("influence graph scores parameter `{p}`, which the space does not declare"),
                        ));
                    }
                }
            }
        }
        // Plan searches.
        if let Some(plan) = &bundle.plan {
            for s in plan.searches() {
                for p in &s.params {
                    if !bundle.has_param(p) {
                        out.push(Diagnostic::error(
                            "S005",
                            Location::Search(s.name.clone()),
                            format!("search `{}` tunes unknown parameter `{p}`", s.name),
                        ));
                    }
                }
                if bundle.graph.is_some() {
                    for r in &s.routines {
                        if !bundle.has_routine(r) {
                            out.push(Diagnostic::error(
                                "S005",
                                Location::Search(s.name.clone()),
                                format!("search `{}` targets unknown routine `{r}`", s.name),
                            ));
                        }
                    }
                }
            }
        }
        // Shared groups and precedence.
        for group in &bundle.shared_params {
            for p in group {
                if !bundle.has_param(p) {
                    out.push(Diagnostic::error(
                        "S005",
                        Location::Param(p.clone()),
                        format!("shared-parameter group references unknown parameter `{p}`"),
                    ));
                }
            }
        }
        if bundle.graph.is_some() {
            for r in &bundle.precedence {
                if !bundle.has_routine(r) {
                    out.push(Diagnostic::error(
                        "S005",
                        Location::Routine(r.clone()),
                        format!("precedence list references unknown routine `{r}`"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec, PlanSpec, SearchSpec, UnresolvedRef};
    use cets_space::ParamDef;

    fn param(name: &str) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def: ParamDef::Real { lo: 0.0, hi: 1.0 },
            default: None,
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        UnknownRefs.check(b, &mut out);
        out
    }

    #[test]
    fn constraint_with_unknown_param_flagged() {
        let b = PlanBundle {
            params: vec![param("a")],
            constraints: vec![ConstraintSpec {
                name: "c".into(),
                expr: "a + zz <= 1".into(),
            }],
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("zz"));
    }

    #[test]
    fn plan_with_unknown_param_and_routine_flagged() {
        let b = PlanBundle {
            params: vec![param("a")],
            graph: Some(cets_graph::InfluenceGraph::new(
                vec!["G1".into()],
                vec!["a".into()],
            )),
            plan: Some(PlanSpec {
                stages: vec![vec![SearchSpec {
                    name: "s".into(),
                    params: vec!["a".into(), "ghost".into()],
                    routines: vec!["G9".into()],
                }]],
            }),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unresolved_loader_refs_surface() {
        let b = PlanBundle {
            params: vec![param("a")],
            unresolved: vec![UnresolvedRef {
                context: "owners".into(),
                name: "nope".into(),
            }],
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("owners"));
    }

    #[test]
    fn shared_and_precedence_checked() {
        let b = PlanBundle {
            params: vec![param("a")],
            graph: Some(cets_graph::InfluenceGraph::new(
                vec!["G1".into()],
                vec!["a".into()],
            )),
            shared_params: vec![vec!["ghost".into()]],
            precedence: vec!["Iter".into()],
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn consistent_bundle_clean() {
        let b = PlanBundle {
            params: vec![param("a")],
            graph: Some(cets_graph::InfluenceGraph::new(
                vec!["G1".into()],
                vec!["a".into()],
            )),
            constraints: vec![ConstraintSpec {
                name: "c".into(),
                expr: "a <= 1".into(),
            }],
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }
}
