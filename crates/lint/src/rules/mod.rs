//! Built-in rules, one module per rule.
//!
//! | Module | Codes | Checks |
//! |---|---|---|
//! | [`duplicate_params`] | `S001` | duplicate / shadowed parameter and routine names |
//! | [`bounds`] | `S002` | empty, inverted or non-finite domains |
//! | [`defaults`] | `S003` | defaults outside their parameter's domain |
//! | [`constraints`] | `S004` | constraints no probe sample satisfies |
//! | [`unknown_refs`] | `S005` | references to undeclared parameters / routines |
//! | [`cycles`] | `G001` | influence-graph cycles not resolved by merging |
//! | [`orphans`] | `G002` | tuned parameters orphaned by the cut-off |
//! | [`dim_cap`] | `G003` | searches exceeding the dimension cap |
//! | [`shared`] | `G004` | shared-kernel parameters tuned in several searches |
//! | [`kernel_psd`] | `N001` | PSD-fragile GP kernel configuration |
//! | [`nonfinite`] | `N002` | NaN/Inf scores, cut-offs or defaults |
//! | [`zero_variance`] | `N003` | zero-variance dimensions fed to the statistics |
//! | [`feasibility`] | `A001`–`A005` | interval-analysis proofs: unsat plans, tautologies, thrash risk, contractible bounds (opt-in via `cets analyze`) |

pub mod bounds;
pub mod constraints;
pub mod cycles;
pub mod defaults;
pub mod dim_cap;
pub mod duplicate_params;
pub mod feasibility;
pub mod kernel_psd;
pub mod nonfinite;
pub mod orphans;
pub mod shared;
pub mod unknown_refs;
pub mod zero_variance;
