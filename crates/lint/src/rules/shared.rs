//! `G004`: shared-kernel parameters tuned in more than one search.
//!
//! A shared-parameter group models one kernel called from several routines
//! (the paper's cuZcopy): its parameters must keep a single value
//! application-wide, so methodology step 5 assigns the whole group to the
//! highest-impact routine's search. If a shared parameter still appears
//! in two searches, each search would freeze its *own* best value and the
//! later one silently overwrites the earlier — the kernel ends up tuned
//! for whichever search ran last. Always an error.
//!
//! The same failure mode applies to *any* parameter tuned by two searches
//! of the same parallel stage (their results race), which this rule also
//! reports.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use std::collections::HashSet;

/// See the module docs.
pub struct SharedParamOwnership;

impl Lint for SharedParamOwnership {
    fn name(&self) -> &'static str {
        "shared-param-ownership"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["G004"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let Some(plan) = &bundle.plan else { return };

        // Shared parameters: at most one search anywhere in the plan.
        // (Membership checks use the set; *iteration* follows declaration
        // order so the report is deterministic.)
        let mut shared: HashSet<&str> = HashSet::new();
        let mut shared_ordered: Vec<&str> = Vec::new();
        for s in bundle.shared_params.iter().flatten() {
            if shared.insert(s.as_str()) {
                shared_ordered.push(s.as_str());
            }
        }
        for p in &shared_ordered {
            let holders: Vec<&str> = plan
                .searches()
                .filter(|s| s.params.iter().any(|q| q == p))
                .map(|s| s.name.as_str())
                .collect();
            if holders.len() > 1 {
                out.push(
                    Diagnostic::error(
                        "G004",
                        Location::Param((*p).to_string()),
                        format!(
                            "shared-kernel parameter `{p}` is tuned in {} searches ({}) — it must \
                             keep one value application-wide",
                            holders.len(),
                            holders.join(", ")
                        ),
                    )
                    .with_help(
                        "assign the shared group to the routine it influences most (methodology \
                         step 5) so exactly one search tunes it",
                    ),
                );
            }
        }

        // Any parameter: at most one search per parallel stage.
        for (k, stage) in plan.stages.iter().enumerate() {
            let mut seen: HashSet<&str> = HashSet::new();
            let mut reported: HashSet<&str> = HashSet::new();
            for s in stage {
                for p in &s.params {
                    if shared.contains(p.as_str()) {
                        continue; // already covered above
                    }
                    if !seen.insert(p.as_str()) && reported.insert(p.as_str()) {
                        out.push(
                            Diagnostic::error(
                                "G004",
                                Location::Param(p.clone()),
                                format!(
                                    "parameter `{p}` is tuned by two searches of parallel stage \
                                     {k} — their results race"
                                ),
                            )
                            .with_help("move one search to a later stage or drop the duplicate"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{PlanSpec, SearchSpec};

    fn search(name: &str, params: &[&str]) -> SearchSpec {
        SearchSpec {
            name: name.into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            routines: vec![],
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        SharedParamOwnership.check(b, &mut out);
        out
    }

    #[test]
    fn shared_param_in_two_searches_flagged() {
        let b = PlanBundle {
            shared_params: vec![vec!["zc_tb".into()]],
            plan: Some(PlanSpec {
                stages: vec![
                    vec![search("G1", &["zc_tb", "a"])],
                    vec![search("G3", &["zc_tb", "b"])],
                ],
            }),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "G004");
        assert!(out[0].message.contains("zc_tb"));
    }

    #[test]
    fn shared_param_in_one_search_clean() {
        let b = PlanBundle {
            shared_params: vec![vec!["zc_tb".into()]],
            plan: Some(PlanSpec {
                stages: vec![vec![search("G1", &["zc_tb"]), search("G3", &["b"])]],
            }),
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn same_stage_duplicate_flagged() {
        let b = PlanBundle {
            plan: Some(PlanSpec {
                stages: vec![vec![search("s1", &["x"]), search("s2", &["x"])]],
            }),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("race"));
    }

    #[test]
    fn cross_stage_duplicate_of_unshared_param_allowed() {
        // Re-tuning a (non-shared) parameter in a later stage is a valid
        // refinement pattern: the later search starts from the frozen value.
        let b = PlanBundle {
            plan: Some(PlanSpec {
                stages: vec![vec![search("s1", &["x"])], vec![search("s2", &["x"])]],
            }),
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }
}
