//! `S004`: constraints that no probe sample satisfies.
//!
//! Each parseable constraint (see [`crate::expr`]) is evaluated on a
//! deterministic set of probe configurations sampled from the declared
//! domains. A constraint no probe satisfies is *probably* unsatisfiable —
//! sampling cannot prove it, so this is a warning, not an error. The
//! conjunction of all constraints is probed too: individually satisfiable
//! constraints can still be jointly empty (`a >= 8` ∧ `a <= 2`-style
//! conflicts split across two expressions).
//!
//! Constraints that reference unknown parameters are left to rule `S005`;
//! constraints that do not parse are skipped (the linter only reasons
//! about what it understands).

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::expr;
use crate::registry::Lint;
use cets_space::ParamDef;
use std::collections::HashMap;

/// Number of probe configurations sampled per bundle.
const PROBES: usize = 256;

/// Deterministic SplitMix64 — the linter must not depend on global RNG
/// state, so two runs over the same bundle always agree.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Sample one numeric value from a domain (numeric view: categorical as
/// option index). Returns `None` for invalid domains (S002 territory).
fn sample(def: &ParamDef, rng: &mut SplitMix) -> Option<f64> {
    match def {
        ParamDef::Real { lo, hi } => {
            if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return None;
            }
            Some(lo + rng.next_f64() * (hi - lo))
        }
        ParamDef::Integer { lo, hi } => {
            if lo > hi {
                return None;
            }
            let span = (hi - lo) as u64 + 1;
            Some((lo + (rng.next_u64() % span) as i64) as f64)
        }
        ParamDef::Ordinal { values } => {
            if values.is_empty() {
                return None;
            }
            Some(values[(rng.next_u64() % values.len() as u64) as usize])
        }
        ParamDef::Categorical { options } => {
            if options.is_empty() {
                return None;
            }
            Some((rng.next_u64() % options.len() as u64) as f64)
        }
    }
}

/// See the module docs.
pub struct ConstraintSatisfiability;

impl Lint for ConstraintSatisfiability {
    fn name(&self) -> &'static str {
        "constraint-satisfiability"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["S004"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        // Parse what we can; require every referenced variable to be a
        // declared parameter (S005 handles the rest).
        let parsed: Vec<(&str, expr::Expr)> = bundle
            .constraints
            .iter()
            .filter_map(|c| {
                let e = expr::parse(&c.expr).ok()?;
                if e.vars().iter().all(|v| bundle.has_param(v)) {
                    Some((c.name.as_str(), e))
                } else {
                    None
                }
            })
            .collect();
        if parsed.is_empty() || bundle.params.is_empty() {
            return;
        }
        // Domains must all be sampleable; otherwise S002 is the real story.
        let mut rng = SplitMix(0x5EED_CE75);
        let mut sat = vec![0usize; parsed.len()];
        let mut joint = 0usize;
        let mut probes_run = 0usize;
        'probe: for _ in 0..PROBES {
            let mut env: HashMap<&str, f64> = HashMap::with_capacity(bundle.params.len());
            for p in &bundle.params {
                match sample(&p.def, &mut rng) {
                    Some(v) => {
                        env.insert(p.name.as_str(), v);
                    }
                    None => break 'probe, // invalid domain: bail out entirely
                }
            }
            probes_run += 1;
            let lookup = |n: &str| env.get(n).copied();
            let mut all = true;
            for (i, (_, e)) in parsed.iter().enumerate() {
                let ok = e.satisfied(&lookup).unwrap_or(false);
                if ok {
                    sat[i] += 1;
                } else {
                    all = false;
                }
            }
            if all {
                joint += 1;
            }
        }
        if probes_run < PROBES {
            return; // some domain was unsampleable; S002 reports it
        }
        for ((name, e), &n) in parsed.iter().zip(&sat) {
            if n == 0 {
                out.push(
                    Diagnostic::warning(
                        "S004",
                        Location::Constraint(name.to_string()),
                        format!(
                            "constraint `{name}` was satisfied by 0 of {PROBES} probe \
                             configurations — it looks unsatisfiable over the declared domains"
                        ),
                    )
                    .with_help(format!(
                        "check the expression `{}` against the parameter bounds",
                        render_vars(e)
                    )),
                );
            }
        }
        if joint == 0 && parsed.len() > 1 && sat.iter().all(|&n| n > 0) {
            out.push(
                Diagnostic::warning(
                    "S004",
                    Location::Plan,
                    format!(
                        "no probe configuration (0 of {PROBES}) satisfies all {} constraints \
                         simultaneously — the feasible region looks empty",
                        parsed.len()
                    ),
                )
                .with_help("the constraints are individually satisfiable but jointly conflicting"),
            );
        }
    }
}

fn render_vars(e: &expr::Expr) -> String {
    e.vars().into_iter().collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};

    fn param(name: &str, lo: f64, hi: f64) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def: ParamDef::Real { lo, hi },
            default: None,
        }
    }

    fn constraint(name: &str, expr: &str) -> ConstraintSpec {
        ConstraintSpec {
            name: name.into(),
            expr: expr.into(),
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ConstraintSatisfiability.check(b, &mut out);
        out
    }

    #[test]
    fn unsatisfiable_constraint_flagged() {
        let b = PlanBundle {
            params: vec![param("a", 0.0, 10.0)],
            constraints: vec![constraint("neg", "a <= -1")],
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "S004");
    }

    #[test]
    fn satisfiable_constraint_clean() {
        let b = PlanBundle {
            params: vec![param("a", 0.0, 10.0), param("b", 0.0, 10.0)],
            constraints: vec![constraint("sum", "a + b <= 10")],
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn jointly_empty_conjunction_flagged() {
        let b = PlanBundle {
            params: vec![param("a", 0.0, 10.0)],
            constraints: vec![constraint("hi", "a >= 9"), constraint("lo", "a <= 1")],
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].location, Location::Plan);
    }

    #[test]
    fn unparseable_and_unknown_ref_skipped() {
        let b = PlanBundle {
            params: vec![param("a", 0.0, 1.0)],
            constraints: vec![
                constraint("garbage", "?!? not an expr"),
                constraint("foreign", "zz <= 1"),
            ],
            ..Default::default()
        };
        assert!(
            run(&b).is_empty(),
            "S005 owns unknown refs; parse failures are skipped"
        );
    }

    #[test]
    fn invalid_domain_bails_without_panic() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "a".into(),
                def: ParamDef::Real { lo: 1.0, hi: 0.0 },
                default: None,
            }],
            constraints: vec![constraint("c", "a <= -1")],
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let b = PlanBundle {
            params: vec![param("a", 0.0, 10.0)],
            constraints: vec![constraint("edge", "a <= 0.01")],
            ..Default::default()
        };
        assert_eq!(run(&b).len(), run(&b).len());
    }
}
