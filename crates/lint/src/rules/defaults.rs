//! `S003`: defaults outside their parameter's domain.
//!
//! The sensitivity analysis varies each parameter *around the baseline*,
//! and the dimension cap freezes dropped parameters *at their defaults* —
//! an out-of-domain default therefore poisons both phases before any
//! search starts. Parameters whose domain is itself invalid are skipped
//! here (rule `S002` already reports them).

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use cets_space::{ParamDef, ParamValue};

/// See the module docs.
pub struct DefaultsInBounds;

impl Lint for DefaultsInBounds {
    fn name(&self) -> &'static str {
        "defaults-in-bounds"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["S003"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        for p in &bundle.params {
            let Some(d) = p.default else { continue };
            if p.def.validate().is_err() {
                continue; // S002 territory
            }
            if !d.is_finite() {
                continue; // N002 territory
            }
            let value = match &p.def {
                ParamDef::Real { .. } | ParamDef::Ordinal { .. } => ParamValue::Real(d),
                ParamDef::Integer { .. } => ParamValue::Int(d.round() as i64),
                ParamDef::Categorical { .. } => ParamValue::Index(d.round().max(0.0) as usize),
            };
            if !p.def.contains(&value) {
                out.push(
                    Diagnostic::error(
                        "S003",
                        Location::Param(p.name.clone()),
                        format!("default {d} of `{}` is outside its domain", p.name),
                    )
                    .with_help(
                        "the baseline must be a valid configuration: move the default inside the \
                         domain or widen the domain",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ParamSpec;

    fn bundle(def: ParamDef, default: f64) -> PlanBundle {
        PlanBundle {
            params: vec![ParamSpec {
                name: "p".into(),
                def,
                default: Some(default),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn out_of_range_default_flagged() {
        let mut out = Vec::new();
        DefaultsInBounds.check(
            &bundle(ParamDef::Integer { lo: 32, hi: 1024 }, 7.0),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "S003");
    }

    #[test]
    fn ordinal_default_must_match_a_value() {
        let mut out = Vec::new();
        DefaultsInBounds.check(
            &bundle(
                ParamDef::Ordinal {
                    values: vec![1.0, 2.0, 4.0, 8.0],
                },
                3.0,
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn in_range_default_clean() {
        let mut out = Vec::new();
        DefaultsInBounds.check(
            &bundle(
                ParamDef::Real {
                    lo: -50.0,
                    hi: 50.0,
                },
                0.0,
            ),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn invalid_domain_skipped_here() {
        let mut out = Vec::new();
        DefaultsInBounds.check(&bundle(ParamDef::Real { lo: 1.0, hi: 0.0 }, 9.0), &mut out);
        assert!(out.is_empty(), "S002 reports the domain, not S003");
    }

    #[test]
    fn missing_default_clean() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "p".into(),
                def: ParamDef::Real { lo: 0.0, hi: 1.0 },
                default: None,
            }],
            ..Default::default()
        };
        let mut out = Vec::new();
        DefaultsInBounds.check(&b, &mut out);
        assert!(out.is_empty());
    }
}
