//! `G002`: tuned parameters orphaned by the cut-off.
//!
//! A parameter whose influence on *every* routine falls below the pruning
//! cut-off contributes no edge to the DAG — the methodology's own logic
//! would drop it — yet the plan still spends budget tuning it. That is
//! not wrong, just wasteful (each extra dimension costs
//! `evals_per_dim` observations), so this is a warning.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use std::collections::BTreeSet;

/// See the module docs.
pub struct OrphanedParams;

impl Lint for OrphanedParams {
    fn name(&self) -> &'static str {
        "orphaned-params"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["G002"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let (Some(graph), Some(plan)) = (&bundle.graph, &bundle.plan) else {
            return;
        };
        if !(bundle.cutoff.is_finite() && bundle.cutoff >= 0.0) {
            return; // N002 territory
        }
        let tuned: BTreeSet<&str> = plan
            .searches()
            .flat_map(|s| s.params.iter().map(|p| p.as_str()))
            .collect();
        for (p, name) in graph.params().iter().enumerate() {
            if !tuned.contains(name.as_str()) {
                continue;
            }
            let max_score = (0..graph.routines().len())
                .map(|r| graph.score_at(p, r))
                .fold(f64::NEG_INFINITY, f64::max);
            if max_score.is_finite() && max_score < bundle.cutoff {
                out.push(
                    Diagnostic::warning(
                        "G002",
                        Location::Param(name.clone()),
                        format!(
                            "`{name}` is tuned but its strongest influence ({max_score:.3}) is \
                             below the cut-off ({}) — every edge of this parameter was pruned",
                            bundle.cutoff
                        ),
                    )
                    .with_help(
                        "drop the parameter to its default, or lower the cut-off if the \
                         influence is real",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{PlanSpec, SearchSpec};
    use cets_graph::InfluenceGraph;

    fn bundle(scores_pa: &[f64], tuned: &[&str]) -> PlanBundle {
        let mut g = InfluenceGraph::new(vec!["A".into(), "B".into()], vec!["pa".into()]);
        g.set_owner("pa", "A").unwrap();
        g.set_scores("pa", scores_pa).unwrap();
        PlanBundle {
            graph: Some(g),
            plan: Some(PlanSpec {
                stages: vec![vec![SearchSpec {
                    name: "A".into(),
                    params: tuned.iter().map(|s| s.to_string()).collect(),
                    routines: vec!["A".into()],
                }]],
            }),
            cutoff: 0.25,
            ..Default::default()
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        OrphanedParams.check(b, &mut out);
        out
    }

    #[test]
    fn orphaned_tuned_param_flagged() {
        let out = run(&bundle(&[0.01, 0.02], &["pa"]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "G002");
        assert_eq!(out[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn influential_param_clean() {
        assert!(run(&bundle(&[0.9, 0.0], &["pa"])).is_empty());
    }

    #[test]
    fn untuned_orphan_clean() {
        assert!(run(&bundle(&[0.01, 0.0], &[])).is_empty());
    }

    #[test]
    fn no_plan_no_check() {
        let mut b = bundle(&[0.01, 0.0], &["pa"]);
        b.plan = None;
        assert!(run(&b).is_empty());
    }
}
