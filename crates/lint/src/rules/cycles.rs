//! `G001`: influence-graph cycles not resolved by merging.
//!
//! The methodology treats the pruned influence graph as a DAG: an edge
//! `A → B` means "tune A's parameters jointly with, or before, B". A
//! directed cycle among routines that end up in *different* searches is
//! unresolvable — each search would need the other's result first — so it
//! is an error when a plan exists. Without a plan the cycle is reported
//! as a warning: the partitioner will merge mutually-influencing routines
//! into one search, which is the intended resolution.
//!
//! Precedence routines are excluded: their cross-edges express tuning
//! *order*, not joint search, so a "cycle" through them is broken by the
//! staged execution.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use std::collections::HashMap;

/// See the module docs.
pub struct GraphCycles;

impl Lint for GraphCycles {
    fn name(&self) -> &'static str {
        "graph-cycles"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["G001"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let Some(graph) = &bundle.graph else { return };
        let Ok(cross) = graph.cross_edges(bundle.cutoff) else {
            return; // invalid cutoff: rule N002 reports it
        };
        let routines = graph.routines();
        let n = routines.len();

        // Component of each routine: searches of the plan merge their
        // routines into one node; everything else stands alone.
        let mut comp: Vec<usize> = (0..n).collect();
        if let Some(plan) = &bundle.plan {
            let index: HashMap<&str, usize> = routines
                .iter()
                .enumerate()
                .map(|(i, r)| (r.as_str(), i))
                .collect();
            for s in plan.searches() {
                let members: Vec<usize> = s
                    .routines
                    .iter()
                    .filter_map(|r| index.get(r.as_str()).copied())
                    .collect();
                if let Some(&root) = members.first() {
                    let target = comp[root];
                    for &m in &members {
                        let old = comp[m];
                        for c in comp.iter_mut() {
                            if *c == old {
                                *c = target;
                            }
                        }
                    }
                }
            }
        }

        let precedence: Vec<usize> = bundle
            .precedence
            .iter()
            .filter_map(|p| routines.iter().position(|r| r == p))
            .collect();

        // Adjacency between distinct components (self-loops = merged: fine).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &cross {
            let Some(from) = e.from else { continue };
            if precedence.contains(&from) || precedence.contains(&e.to) {
                continue;
            }
            let (a, b) = (comp[from], comp[e.to]);
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
            }
        }

        // Iterative three-color DFS for a directed cycle.
        let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut cycle: Option<Vec<usize>> = None;
        'outer: for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(frame) = stack.last_mut() {
                let v = frame.0;
                if frame.1 < adj[v].len() {
                    let w = adj[v][frame.1];
                    frame.1 += 1;
                    match color[w] {
                        0 => {
                            color[w] = 1;
                            parent[w] = Some(v);
                            stack.push((w, 0));
                        }
                        1 => {
                            // Found a back edge v -> w: reconstruct w..v.
                            let mut path = vec![v];
                            let mut cur = v;
                            while cur != w {
                                match parent[cur] {
                                    Some(p) => {
                                        path.push(p);
                                        cur = p;
                                    }
                                    None => break,
                                }
                            }
                            path.reverse();
                            cycle = Some(path);
                            break 'outer;
                        }
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }

        if let Some(path) = cycle {
            let names: Vec<&str> = path.iter().map(|&c| routines[c].as_str()).collect();
            let listed = names.join(" -> ");
            if bundle.plan.is_some() {
                out.push(
                    Diagnostic::error(
                        "G001",
                        Location::Graph,
                        format!(
                            "influence cycle {listed} spans several planned searches — neither \
                             search can be tuned first"
                        ),
                    )
                    .with_help(
                        "merge the cyclic routines into one search, raise the cut-off, or declare \
                         one of them as a precedence routine",
                    ),
                );
            } else {
                out.push(
                    Diagnostic::warning(
                        "G001",
                        Location::Graph,
                        format!("influence cycle {listed} at cutoff {}", bundle.cutoff),
                    )
                    .with_help("the partitioner will merge these routines into one joint search"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{PlanSpec, SearchSpec};
    use cets_graph::InfluenceGraph;

    /// A <-> B mutual influence above the cutoff.
    fn cyclic_graph() -> InfluenceGraph {
        let mut g =
            InfluenceGraph::new(vec!["A".into(), "B".into()], vec!["pa".into(), "pb".into()]);
        g.set_owner("pa", "A").unwrap();
        g.set_owner("pb", "B").unwrap();
        g.set_scores("pa", &[0.9, 0.5]).unwrap();
        g.set_scores("pb", &[0.5, 0.9]).unwrap();
        g
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        GraphCycles.check(b, &mut out);
        out
    }

    #[test]
    fn unmerged_cycle_in_plan_is_error() {
        let b = PlanBundle {
            graph: Some(cyclic_graph()),
            plan: Some(PlanSpec {
                stages: vec![vec![
                    SearchSpec {
                        name: "A".into(),
                        params: vec!["pa".into()],
                        routines: vec!["A".into()],
                    },
                    SearchSpec {
                        name: "B".into(),
                        params: vec!["pb".into()],
                        routines: vec!["B".into()],
                    },
                ]],
            }),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "G001");
        assert_eq!(out[0].severity, crate::Severity::Error);
    }

    #[test]
    fn merged_cycle_is_clean() {
        let b = PlanBundle {
            graph: Some(cyclic_graph()),
            plan: Some(PlanSpec {
                stages: vec![vec![SearchSpec {
                    name: "A+B".into(),
                    params: vec!["pa".into(), "pb".into()],
                    routines: vec!["A".into(), "B".into()],
                }]],
            }),
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn cycle_without_plan_is_warning() {
        let b = PlanBundle {
            graph: Some(cyclic_graph()),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn precedence_breaks_cycle() {
        let b = PlanBundle {
            graph: Some(cyclic_graph()),
            precedence: vec!["A".into()],
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn acyclic_graph_clean() {
        let mut g =
            InfluenceGraph::new(vec!["A".into(), "B".into()], vec!["pa".into(), "pb".into()]);
        g.set_owner("pa", "A").unwrap();
        g.set_owner("pb", "B").unwrap();
        g.set_scores("pa", &[0.9, 0.5]).unwrap(); // A -> B only
        g.set_scores("pb", &[0.0, 0.9]).unwrap();
        let b = PlanBundle {
            graph: Some(g),
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }

    #[test]
    fn invalid_cutoff_skipped_without_panic() {
        let b = PlanBundle {
            graph: Some(cyclic_graph()),
            cutoff: f64::NAN,
            ..Default::default()
        };
        assert!(run(&b).is_empty(), "N002 owns the bad cutoff");
    }
}
