//! `N002`: NaN/Inf inputs to the numerics.
//!
//! Non-finite values poison everything downstream: a NaN influence score
//! makes every cut-off comparison false (silently dropping edges), a NaN
//! cut-off disables pruning entirely, and a non-finite default breaks the
//! sensitivity baseline. All are errors — unlike genuinely numerical
//! instabilities, these are input bugs.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;

/// See the module docs.
pub struct NonFiniteInputs;

impl Lint for NonFiniteInputs {
    fn name(&self) -> &'static str {
        "non-finite-inputs"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["N002"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        if !bundle.cutoff.is_finite() || bundle.cutoff < 0.0 {
            out.push(
                Diagnostic::error(
                    "N002",
                    Location::Plan,
                    format!(
                        "influence cut-off {} is not a finite non-negative value",
                        bundle.cutoff
                    ),
                )
                .with_help("the paper uses 0.25 (synthetic) and 0.10 (TDDFT)"),
            );
        }
        for p in &bundle.params {
            if let Some(d) = p.default {
                if !d.is_finite() {
                    out.push(Diagnostic::error(
                        "N002",
                        Location::Param(p.name.clone()),
                        format!("default of `{}` is {d}", p.name),
                    ));
                }
            }
        }
        if let Some(g) = &bundle.graph {
            for (p, name) in g.params().iter().enumerate() {
                for r in 0..g.routines().len() {
                    let s = g.score_at(p, r);
                    if !s.is_finite() {
                        out.push(
                            Diagnostic::error(
                                "N002",
                                Location::Param(name.clone()),
                                format!(
                                    "influence score of `{name}` on `{}` is {s}",
                                    g.routines()[r]
                                ),
                            )
                            .with_help(
                                "non-finite sensitivity scores usually mean the objective \
                                 returned NaN/Inf for a variation — check the baseline",
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ParamSpec;
    use cets_graph::InfluenceGraph;
    use cets_space::ParamDef;

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        NonFiniteInputs.check(b, &mut out);
        out
    }

    #[test]
    fn nan_cutoff_flagged() {
        let b = PlanBundle {
            cutoff: f64::NAN,
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "N002");
    }

    #[test]
    fn negative_cutoff_flagged() {
        let b = PlanBundle {
            cutoff: -0.5,
            ..Default::default()
        };
        assert_eq!(run(&b).len(), 1);
    }

    #[test]
    fn nan_score_flagged() {
        let mut g = InfluenceGraph::new(vec!["A".into()], vec!["p".into()]);
        g.set_scores("p", &[f64::NAN]).unwrap();
        let b = PlanBundle {
            graph: Some(g),
            ..Default::default()
        };
        let out = run(&b);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("NaN"));
    }

    #[test]
    fn infinite_default_flagged() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "p".into(),
                def: ParamDef::Real { lo: 0.0, hi: 1.0 },
                default: Some(f64::INFINITY),
            }],
            ..Default::default()
        };
        assert_eq!(run(&b).len(), 1);
    }

    #[test]
    fn finite_bundle_clean() {
        let mut g = InfluenceGraph::new(vec!["A".into()], vec!["p".into()]);
        g.set_scores("p", &[0.5]).unwrap();
        let b = PlanBundle {
            graph: Some(g),
            cutoff: 0.25,
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }
}
