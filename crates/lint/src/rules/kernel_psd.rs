//! `N001`: PSD-fragile GP kernel configuration.
//!
//! The BO engine Cholesky-factorizes `K + σ_n² I` at every fit. With a
//! zero noise floor the matrix is only positive *semi*-definite for
//! duplicated inputs (which staged tuning produces routinely: the
//! incumbent is re-evaluated in every search), leaving the factorization
//! to survive on jitter alone. Non-positive length-scales or signal
//! variance make the kernel outright invalid.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;

/// See the module docs.
pub struct KernelPsd;

impl Lint for KernelPsd {
    fn name(&self) -> &'static str {
        "kernel-psd"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["N001"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let Some(k) = &bundle.kernel else { return };
        if !k.noise_floor.is_finite() || k.noise_floor < 0.0 {
            out.push(
                Diagnostic::error(
                    "N001",
                    Location::Kernel,
                    format!(
                        "noise floor {} is not a finite non-negative value",
                        k.noise_floor
                    ),
                )
                .with_help("set a small positive noise floor, e.g. 1e-6"),
            );
        } else if k.noise_floor == 0.0 {
            out.push(
                Diagnostic::warning(
                    "N001",
                    Location::Kernel,
                    "noise floor is 0 — the covariance matrix is PSD-fragile under duplicated \
                     inputs and the Cholesky factorization will depend on jitter alone",
                )
                .with_help("HPC runtimes are noisy; a floor like 1e-6 also regularizes the fit"),
            );
        }
        for (i, &l) in k.length_scales.iter().enumerate() {
            if !l.is_finite() || l <= 0.0 {
                out.push(
                    Diagnostic::error(
                        "N001",
                        Location::Kernel,
                        format!(
                            "length-scale #{i} is {l}; length-scales must be positive and finite"
                        ),
                    )
                    .with_help("fix the kernel hyperparameters or let the fit optimize them"),
                );
            }
        }
        if let Some(v) = k.signal_variance {
            if !v.is_finite() || v <= 0.0 {
                out.push(Diagnostic::error(
                    "N001",
                    Location::Kernel,
                    format!("signal variance {v} must be positive and finite"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::KernelSpec;

    fn bundle(k: KernelSpec) -> PlanBundle {
        PlanBundle {
            kernel: Some(k),
            ..Default::default()
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        KernelPsd.check(b, &mut out);
        out
    }

    #[test]
    fn zero_noise_floor_warns() {
        let out = run(&bundle(KernelSpec {
            noise_floor: 0.0,
            length_scales: vec![],
            signal_variance: None,
        }));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn negative_noise_floor_errors() {
        let out = run(&bundle(KernelSpec {
            noise_floor: -1.0,
            length_scales: vec![],
            signal_variance: None,
        }));
        assert_eq!(out[0].severity, crate::Severity::Error);
    }

    #[test]
    fn bad_length_scale_and_variance_error() {
        let out = run(&bundle(KernelSpec {
            noise_floor: 1e-6,
            length_scales: vec![0.5, 0.0, f64::NAN],
            signal_variance: Some(-2.0),
        }));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn healthy_kernel_clean() {
        let out = run(&bundle(KernelSpec {
            noise_floor: 1e-6,
            length_scales: vec![0.3, 0.7],
            signal_variance: Some(1.0),
        }));
        assert!(out.is_empty());
    }

    #[test]
    fn no_kernel_no_check() {
        assert!(run(&PlanBundle::default()).is_empty());
    }
}
