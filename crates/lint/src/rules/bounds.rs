//! `S002`: empty, inverted or non-finite parameter domains.
//!
//! Delegates to `cets_space::ParamDef::validate`, so the linter and the
//! space builder agree exactly on what a malformed domain is (inverted
//! `lo > hi`, empty option lists, non-finite real bounds, NaN ordinals).

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;

/// See the module docs.
pub struct Bounds;

impl Lint for Bounds {
    fn name(&self) -> &'static str {
        "bounds"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["S002"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        for p in &bundle.params {
            if let Err(reason) = p.def.validate() {
                out.push(
                    Diagnostic::error(
                        "S002",
                        Location::Param(p.name.clone()),
                        format!("invalid domain for `{}`: {reason}", p.name),
                    )
                    .with_help("fix the bounds so that lo < hi (reals) / lo <= hi (integers) and all values are finite"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ParamSpec;
    use cets_space::ParamDef;

    fn bundle_with(def: ParamDef) -> PlanBundle {
        PlanBundle {
            params: vec![ParamSpec {
                name: "p".into(),
                def,
                default: None,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn inverted_real_bounds_flagged() {
        let mut out = Vec::new();
        Bounds.check(&bundle_with(ParamDef::Real { lo: 1.0, hi: 0.0 }), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "S002");
    }

    #[test]
    fn inverted_integer_bounds_flagged() {
        let mut out = Vec::new();
        Bounds.check(&bundle_with(ParamDef::Integer { lo: 5, hi: 4 }), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn non_finite_bound_flagged() {
        let mut out = Vec::new();
        Bounds.check(
            &bundle_with(ParamDef::Real {
                lo: 0.0,
                hi: f64::INFINITY,
            }),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_ordinal_flagged() {
        let mut out = Vec::new();
        Bounds.check(&bundle_with(ParamDef::Ordinal { values: vec![] }), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn valid_domain_clean() {
        let mut out = Vec::new();
        Bounds.check(&bundle_with(ParamDef::Integer { lo: 1, hi: 32 }), &mut out);
        assert!(out.is_empty());
    }
}
