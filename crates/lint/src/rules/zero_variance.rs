//! `N003`: zero-variance dimensions fed to the statistics layer.
//!
//! A parameter with a single possible value cannot vary, so Pearson
//! correlation against it divides by a zero standard deviation (NaN) and
//! random-forest importance never splits on it. Tuning it is also a
//! wasted dimension. Domains that are *invalid* are `S002`'s business;
//! this rule flags domains that are valid but degenerate — an integer
//! range `[k, k]`, an ordinal list whose values are all equal, or a
//! single-option categorical.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use cets_space::ParamDef;

/// See the module docs.
pub struct ZeroVariance;

impl Lint for ZeroVariance {
    fn name(&self) -> &'static str {
        "zero-variance"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["N003"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        for p in &bundle.params {
            if p.def.validate().is_err() {
                continue; // S002 territory
            }
            let distinct = match &p.def {
                ParamDef::Real { .. } => continue, // lo < hi guaranteed by validate
                ParamDef::Integer { lo, hi } => (hi - lo + 1).max(0) as usize,
                ParamDef::Ordinal { values } => {
                    let mut sorted: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                    sorted.sort_unstable();
                    sorted.dedup();
                    sorted.len()
                }
                ParamDef::Categorical { options } => options.len(),
            };
            if distinct <= 1 {
                out.push(
                    Diagnostic::warning(
                        "N003",
                        Location::Param(p.name.clone()),
                        format!(
                            "`{}` has a single possible value — Pearson correlation and forest \
                             importance on this dimension are undefined (zero variance)",
                            p.name
                        ),
                    )
                    .with_help("hard-code the value and remove the parameter from the space"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ParamSpec;

    fn bundle(def: ParamDef) -> PlanBundle {
        PlanBundle {
            params: vec![ParamSpec {
                name: "p".into(),
                def,
                default: None,
            }],
            ..Default::default()
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ZeroVariance.check(b, &mut out);
        out
    }

    #[test]
    fn single_value_integer_flagged() {
        let out = run(&bundle(ParamDef::Integer { lo: 4, hi: 4 }));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "N003");
    }

    #[test]
    fn all_equal_ordinal_flagged() {
        let out = run(&bundle(ParamDef::Ordinal {
            values: vec![2.0, 2.0, 2.0],
        }));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn single_option_categorical_flagged() {
        let out = run(&bundle(ParamDef::Categorical {
            options: vec!["only".into()],
        }));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn varied_domains_clean() {
        assert!(run(&bundle(ParamDef::Integer { lo: 1, hi: 32 })).is_empty());
        assert!(run(&bundle(ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0]
        }))
        .is_empty());
        assert!(run(&bundle(ParamDef::Real { lo: 0.0, hi: 1.0 })).is_empty());
    }

    #[test]
    fn invalid_domain_skipped() {
        assert!(run(&bundle(ParamDef::Ordinal { values: vec![] })).is_empty());
    }
}
