//! `G003`: searches exceeding the dimension cap.
//!
//! The methodology caps every search at `max_dims` dimensions (paper: 10,
//! "grounded in the feasibility of conducting outstanding BO searches
//! within a manageable number of iterations"). A planned search above the
//! cap means the cap step was skipped or bypassed — BO quality degrades
//! sharply there, so the plan is rejected.
//!
//! Note the cap applies to the *methodology's* staged plan; deliberately
//! uncapped baselines (the paper's fully-joint 20-dim BO) are built via
//! `execute_plan` directly and are not linted.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;

/// See the module docs.
pub struct DimensionCap;

impl Lint for DimensionCap {
    fn name(&self) -> &'static str {
        "dimension-cap"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["G003"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let Some(plan) = &bundle.plan else { return };
        if bundle.max_dims == 0 {
            out.push(
                Diagnostic::error(
                    "G003",
                    Location::Plan,
                    "dimension cap is 0 — no search could tune anything",
                )
                .with_help("set max_dims to a positive value (the paper uses 10)"),
            );
            return;
        }
        for s in plan.searches() {
            if s.params.len() > bundle.max_dims {
                out.push(
                    Diagnostic::error(
                        "G003",
                        Location::Search(s.name.clone()),
                        format!(
                            "search `{}` tunes {} parameters, exceeding the {}-dimension cap",
                            s.name,
                            s.params.len(),
                            bundle.max_dims
                        ),
                    )
                    .with_help(
                        "apply the dimension cap (drop the least influential parameters to \
                         defaults) or split the merged group",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{PlanSpec, SearchSpec};

    fn bundle(n_params: usize, max_dims: usize) -> PlanBundle {
        PlanBundle {
            max_dims,
            plan: Some(PlanSpec {
                stages: vec![vec![SearchSpec {
                    name: "merged".into(),
                    params: (0..n_params).map(|i| format!("p{i}")).collect(),
                    routines: vec![],
                }]],
            }),
            ..Default::default()
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        DimensionCap.check(b, &mut out);
        out
    }

    #[test]
    fn over_cap_search_flagged() {
        let out = run(&bundle(11, 10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "G003");
        assert!(out[0].message.contains("11 parameters"));
    }

    #[test]
    fn at_cap_clean() {
        assert!(run(&bundle(10, 10)).is_empty());
    }

    #[test]
    fn zero_cap_flagged() {
        let out = run(&bundle(1, 0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn no_plan_no_check() {
        let b = PlanBundle {
            max_dims: 10,
            ..Default::default()
        };
        assert!(run(&b).is_empty());
    }
}
