//! `A001`–`A011`: abstract-interpretation feasibility findings.
//!
//! This rule runs the relational analysis of [`crate::absint`] over the
//! bundle and reports what it proves:
//!
//! * `A001` (error) — a constraint is *proved unsatisfiable* over the
//!   declared domains, or the conjunction of all constraints empties the
//!   box: the plan is dead on arrival. Unlike the sampling-based `S004`
//!   warning, this is a proof, so it is an error.
//! * `A002` (warning) — a constraint is *tautological*: every point of
//!   the box satisfies it, so it only costs evaluation time in the
//!   rejection sampler.
//! * `A003` (warning) — the statically feasible fraction of the box is
//!   tiny: rejection sampling will thrash discarding candidates.
//! * `A004` (warning) — backward contraction tightened a parameter's
//!   bounds: the declared domain is provably larger than the feasible
//!   region, and `cets analyze --contract` can rewrite it.
//! * `A005` (info) — the contraction fixpoint hit its iteration cap
//!   before converging; the reported intervals are sound but may be
//!   looser than the true fixpoint.
//! * `A006` (info) — the octagon closure *inferred* a two-parameter
//!   relational bound (`x + y <= c` or `x - y <= c`) that is strictly
//!   tighter than anything the contracted per-parameter boxes imply and
//!   is not a restatement of a constraint already in the plan. Samplers
//!   that only respect per-parameter bounds will overdraw this region.
//! * `A007` (info) — disjunctive branch-and-prune recovered a *union of
//!   disjoint slabs* for a parameter: the feasible set is not an
//!   interval, and the hull reported by `A004` overstates it.
//! * `A008` (info) — the disjunctive expansion hit the branch cap; some
//!   `Or` constraints were kept un-split, so slab unions may be coarser
//!   (hull-shaped) than the true feasible set. Sound, like `A005`.
//! * `A009` (info) — the congruence domain proved an integer parameter
//!   lives on a residue grid (`n ≡ r mod m`): its bounds snap to the
//!   outermost grid members, and only one point in `m` is feasible.
//!   Samplers unaware of the stride reject the rest.
//! * `A010` (warning) — the finite-set pass proved some declared ordinal
//!   values / categorical options *dead*: no feasible point selects
//!   them, yet the sampler keeps drawing them.
//! * `A011` (warning) — a parameter is statically *forced* to a single
//!   value: it is not a search dimension at all, only a constant the
//!   constraints already determine.
//!
//! The rule is **not** part of the default `cets lint` registry: `A004`
//! fires on any plan whose bounds are not already statically minimal,
//! which is advice rather than a defect. `cets analyze` (and
//! [`crate::registry::Registry::with_analysis_rules`]) opt in.
//!
//! Bundles in `S001`/`S002` error territory (duplicate parameters,
//! invalid domains) are skipped entirely — interval analysis over a
//! malformed box proves nothing.

use crate::absint::{analyze_space_with, AnalysisOptions, ConstraintClass};
use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use cets_space::ParamDef;

/// Feasible-fraction threshold below which `A003` fires.
pub const THRASH_THRESHOLD: f64 = 1e-3;

/// See the module docs.
#[derive(Default)]
pub struct Feasibility {
    options: AnalysisOptions,
}

impl Feasibility {
    /// The rule under the default (octagon, relational) analysis.
    pub fn new() -> Self {
        Feasibility::default()
    }

    /// The rule under explicit [`AnalysisOptions`] — e.g. the plain
    /// interval domain for `cets analyze --domain interval`.
    pub fn with_options(options: AnalysisOptions) -> Self {
        Feasibility { options }
    }
}

impl Lint for Feasibility {
    fn name(&self) -> &'static str {
        "feasibility"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[
            "A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008", "A009", "A010", "A011",
        ]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let analysis = analyze_space_with(bundle, &self.options);
        if !analysis.analyzed {
            return;
        }

        let mut single_unsat = false;
        for c in &analysis.constraints {
            match c.class {
                ConstraintClass::ProvedUnsat => {
                    single_unsat = true;
                    out.push(
                        Diagnostic::error(
                            "A001",
                            Location::Constraint(c.name.clone()),
                            format!(
                                "constraint `{}` is proved unsatisfiable over the declared \
                                 domains: its value interval is {}",
                                c.name, c.value
                            ),
                        )
                        .with_help(
                            "no point of the search space can satisfy this constraint; \
                             widen the parameter bounds or fix the expression",
                        ),
                    );
                }
                ConstraintClass::Tautology => {
                    out.push(
                        Diagnostic::warning(
                            "A002",
                            Location::Constraint(c.name.clone()),
                            format!(
                                "constraint `{}` is tautological over the declared domains \
                                 (value interval {}): it never rejects a candidate",
                                c.name, c.value
                            ),
                        )
                        .with_help(
                            "drop the constraint, or tighten the bounds it was meant to guard",
                        ),
                    );
                }
                ConstraintClass::Contingent => {}
            }
        }

        if analysis.proved_empty && !single_unsat {
            out.push(
                Diagnostic::error(
                    "A001",
                    Location::Plan,
                    "the conjunction of all constraints is proved unsatisfiable: backward \
                     contraction emptied the parameter box",
                )
                .with_help("the constraints are individually satisfiable but jointly conflicting"),
            );
        }

        if !analysis.proved_empty && analysis.feasible_fraction < THRASH_THRESHOLD {
            // The fixed-seed Monte-Carlo cross-check quantifies how precise
            // the point estimate is: a gate sitting near the threshold can
            // read the Wilson bounds instead of flapping on a bare number.
            let mc_note = analysis
                .mc_feasible
                .map(|m| {
                    format!(
                        "; Monte-Carlo cross-check: {}/{} probes feasible, \
                         95% Wilson interval [{:.1e}, {:.1e}]",
                        m.hits, m.probes, m.ci_lo, m.ci_hi
                    )
                })
                .unwrap_or_default();
            out.push(
                Diagnostic::warning(
                    "A003",
                    Location::Plan,
                    format!(
                        "the statically feasible fraction of the search box is at most {:e}{}: \
                         rejection sampling will thrash discarding candidates",
                        analysis.feasible_fraction, mc_note
                    ),
                )
                .with_help(
                    "apply `cets analyze --contract` to tighten the bounds before searching",
                ),
            );
        }

        if !analysis.proved_empty {
            for p in &analysis.params {
                if p.narrowed() {
                    let mut d = Diagnostic::warning(
                        "A004",
                        Location::Param(p.name.clone()),
                        format!(
                            "bounds of `{}` contract from {} to {}: the declared domain is \
                             provably larger than the feasible region",
                            p.name, p.original, p.contracted
                        ),
                    );
                    d = if p.tightened.is_some() {
                        d.with_help(
                            "run `cets analyze --contract` to rewrite the plan with the \
                             tightened bounds",
                        )
                    } else {
                        d.with_help(
                            "the narrowing is not expressible in this domain kind; tighten \
                             the bounds manually if the constraint is intentional",
                        )
                    };
                    out.push(d);
                }
            }
        }

        if !analysis.converged && !analysis.proved_empty {
            out.push(Diagnostic::info(
                "A005",
                Location::Plan,
                format!(
                    "bound contraction hit the iteration cap ({} passes) before converging; \
                     the reported intervals are sound but may be looser than the fixpoint",
                    analysis.iterations
                ),
            ));
        }

        if !analysis.proved_empty {
            for rel in analysis.relations.iter().filter(|r| r.inferred) {
                out.push(
                    Diagnostic::info(
                        "A006",
                        Location::Plan,
                        format!(
                            "octagon closure infers the relational bound `{rel}`, strictly \
                             tighter than the per-parameter boxes imply",
                        ),
                    )
                    .with_help(
                        "per-parameter bounds cannot express this; samplers that ignore the \
                         constraints will overdraw the excluded corner",
                    ),
                );
            }

            for p in analysis.params.iter().filter(|p| p.slabs.len() > 1) {
                let slabs = p
                    .slabs
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" ∪ ");
                out.push(
                    Diagnostic::info(
                        "A007",
                        Location::Param(p.name.clone()),
                        format!(
                            "the feasible set of `{}` is a union of {} disjoint slabs: {}; \
                             the interval hull {} overstates it",
                            p.name,
                            p.slabs.len(),
                            slabs,
                            p.contracted
                        ),
                    )
                    .with_help(
                        "constructive samplers draw from the slab union directly; plain \
                         rejection over the hull discards the gap",
                    ),
                );
            }

            if analysis.split_capped {
                out.push(Diagnostic::info(
                    "A008",
                    Location::Plan,
                    format!(
                        "disjunctive expansion hit the branch cap ({} branches explored); \
                         un-split `or` constraints fall back to the sound interval hull",
                        analysis.split_branches
                    ),
                ));
            }

            for p in &analysis.params {
                if let Some((m, r)) = p.stride {
                    out.push(
                        Diagnostic::info(
                            "A009",
                            Location::Param(p.name.clone()),
                            format!(
                                "`{}` is congruence-constrained to the grid {}ℤ+{} \
                                 (stride {}): bounds snap to {}, and only one value in {} \
                                 is feasible",
                                p.name, m, r, m, p.contracted, m
                            ),
                        )
                        .with_help(
                            "the constructive sampler walks the residue grid directly; \
                             plain rejection discards (m-1)/m of its draws",
                        ),
                    );
                }

                let Some(kept) = &p.kept else { continue };
                let def = bundle.params.iter().find(|sp| sp.name == p.name);
                let names: Vec<String> = match def.map(|sp| &sp.def) {
                    Some(ParamDef::Categorical { options }) => options.clone(),
                    Some(ParamDef::Ordinal { values }) => {
                        values.iter().map(|v| v.to_string()).collect()
                    }
                    _ => continue,
                };
                if names.len() < 2 {
                    continue; // a one-option parameter is declared, not forced
                }
                if kept.len() == 1 {
                    let forced = names
                        .get(kept[0])
                        .cloned()
                        .unwrap_or_else(|| kept[0].to_string());
                    out.push(
                        Diagnostic::warning(
                            "A011",
                            Location::Param(p.name.clone()),
                            format!(
                                "`{}` is statically forced to the single value `{}`: \
                                 {} of its {} declared options are dead and it is not a \
                                 search dimension",
                                p.name,
                                forced,
                                names.len() - 1,
                                names.len()
                            ),
                        )
                        .with_help(
                            "pin the parameter to this value and drop it from the search, \
                             or relax the constraint that forces it",
                        ),
                    );
                } else if kept.len() < names.len() {
                    let dead: Vec<String> = (0..names.len())
                        .filter(|k| !kept.contains(k))
                        .map(|k| format!("`{}`", names[k]))
                        .collect();
                    let mut d = Diagnostic::warning(
                        "A010",
                        Location::Param(p.name.clone()),
                        format!(
                            "{} of the {} declared options of `{}` are statically dead: \
                             {} can never be selected by a feasible point",
                            dead.len(),
                            names.len(),
                            p.name,
                            dead.join(", ")
                        ),
                    );
                    d = if p.tightened.is_some() {
                        d.with_help(
                            "run `cets analyze --contract` to drop the dead options from \
                             the plan",
                        )
                    } else {
                        d.with_help(
                            "dropping them would renumber surviving options referenced by \
                             constraints; prune them manually",
                        )
                    };
                    out.push(d);
                }
            }

            // An unbounded-kind parameter contracted to one point is
            // forced just the same (e.g. `n == 57600` via equality).
            for p in &analysis.params {
                let def = bundle.params.iter().find(|sp| sp.name == p.name);
                let numeric = matches!(
                    def.map(|sp| &sp.def),
                    Some(ParamDef::Integer { .. } | ParamDef::Real { .. })
                );
                if numeric
                    && p.narrowed()
                    && p.contracted.lo == p.contracted.hi
                    && p.contracted.lo.is_finite()
                {
                    out.push(
                        Diagnostic::warning(
                            "A011",
                            Location::Param(p.name.clone()),
                            format!(
                                "`{}` is statically forced to the single value `{}`: \
                                 it is not a search dimension",
                                p.name, p.contracted.lo
                            ),
                        )
                        .with_help(
                            "pin the parameter to this value and drop it from the search, \
                             or relax the constraint that forces it",
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};
    use crate::diag::Severity;
    use cets_space::ParamDef;

    fn param(name: &str, lo: i64, hi: i64) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def: ParamDef::Integer { lo, hi },
            default: None,
        }
    }

    fn constraint(name: &str, expr: &str) -> ConstraintSpec {
        ConstraintSpec {
            name: name.into(),
            expr: expr.into(),
        }
    }

    fn run(b: &PlanBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        Feasibility::new().check(b, &mut out);
        out
    }

    #[test]
    fn unsat_constraint_is_a001_error() {
        let b = PlanBundle {
            params: vec![param("a", 1, 8)],
            constraints: vec![constraint("dead", "a > 100")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A001").expect("A001");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.location, Location::Constraint("dead".into()));
    }

    #[test]
    fn jointly_empty_is_a001_at_plan() {
        let b = PlanBundle {
            params: vec![param("a", 0, 10)],
            constraints: vec![constraint("hi", "a >= 9"), constraint("lo", "a <= 1")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A001").expect("A001");
        assert_eq!(d.location, Location::Plan);
    }

    #[test]
    fn tautology_is_a002_warning() {
        let b = PlanBundle {
            params: vec![param("a", 1, 8)],
            constraints: vec![constraint("trivial", "a >= 0")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A002").expect("A002");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn thrash_risk_is_a003() {
        let b = PlanBundle {
            params: vec![param("a", 0, 99_999)],
            constraints: vec![constraint("pin", "a <= 0")],
            ..Default::default()
        };
        let out = run(&b);
        assert!(out.iter().any(|d| d.code == "A003"), "{out:?}");
    }

    #[test]
    fn a003_reports_wilson_interval() {
        let b = PlanBundle {
            params: vec![param("a", 0, 99_999)],
            constraints: vec![constraint("pin", "a <= 0")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A003").expect("A003");
        assert!(
            d.message.contains("Wilson interval"),
            "missing uncertainty: {}",
            d.message
        );
        assert!(d.message.contains("probes feasible"), "{}", d.message);
    }

    #[test]
    fn contraction_is_a004_with_intervals_in_message() {
        let b = PlanBundle {
            params: vec![param("a", 32, 1024)],
            constraints: vec![constraint("smem", "a * 64 <= 49152")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A004").expect("A004");
        assert_eq!(d.location, Location::Param("a".into()));
        assert!(d.message.contains("[32, 1024]"), "{}", d.message);
        assert!(d.message.contains("[32, 768]"), "{}", d.message);
    }

    #[test]
    fn clean_contingent_plan_is_quiet() {
        let b = PlanBundle {
            params: vec![param("a", 0, 10), param("b", 0, 10)],
            constraints: vec![constraint("sum", "a + b <= 20")],
            ..Default::default()
        };
        // a + b <= 20 is tautological here; make it contingent but
        // non-contracting: a + b <= 10 narrows nothing (each var alone
        // already fits) — contraction derives a <= 10 which is the bound.
        let out = run(&b);
        assert!(out.iter().all(|d| d.code == "A002"), "{out:?}");
        let b2 = PlanBundle {
            constraints: vec![constraint("sum", "a + b <= 10")],
            ..b
        };
        let out = run(&b2);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inferred_relation_is_a006_info() {
        // McCormick relaxation of the product constraint infers
        // g1 + zc <= 544, which no per-parameter box expresses.
        let b = PlanBundle {
            params: vec![param("g1", 32, 1024), param("zc", 32, 1024)],
            constraints: vec![constraint("residency", "g1 * zc <= 16384")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A006").expect("A006");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("g1 + zc <= 544"), "{}", d.message);
        // Under the interval domain there is no relational machinery.
        let mut out = Vec::new();
        Feasibility::with_options(AnalysisOptions {
            domain: crate::absint::Domain::Interval,
            ..Default::default()
        })
        .check(&b, &mut out);
        assert!(out.iter().all(|d| d.code != "A006"), "{out:?}");
    }

    #[test]
    fn restated_linear_bound_stays_quiet() {
        // `a + b <= 10` is octagonal already: reporting it back as an
        // "inferred" relation would be noise.
        let b = PlanBundle {
            params: vec![param("a", 0, 10), param("b", 0, 10)],
            constraints: vec![constraint("budget", "a + b <= 10")],
            ..Default::default()
        };
        let out = run(&b);
        assert!(out.iter().all(|d| d.code != "A006"), "{out:?}");
    }

    #[test]
    fn disjoint_slabs_are_a007_info() {
        let b = PlanBundle {
            params: vec![param("a", 0, 10)],
            constraints: vec![constraint("gap", "a <= 1 || a >= 9")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A007").expect("A007");
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.location, Location::Param("a".into()));
        assert!(d.message.contains("2 disjoint slabs"), "{}", d.message);
    }

    #[test]
    fn split_cap_is_a008_info() {
        // Five two-way disjunctions want 32 branches; the cap is 16.
        let params: Vec<ParamSpec> = (0..5).map(|i| param(&format!("p{i}"), 0, 10)).collect();
        let constraints: Vec<ConstraintSpec> = (0..5)
            .map(|i| constraint(&format!("c{i}"), &format!("p{i} <= 1 || p{i} >= 9")))
            .collect();
        let b = PlanBundle {
            params,
            constraints,
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A008").expect("A008");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn stride_is_a009_info() {
        let b = PlanBundle {
            params: vec![param("n", 1, 100_000)],
            constraints: vec![constraint("blk", "n % 256 == 0")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A009").expect("A009");
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.location, Location::Param("n".into()));
        assert!(d.message.contains("stride 256"), "{}", d.message);
        assert!(d.message.contains("[256, 99840]"), "{}", d.message);
        // No congruence machinery under the plain interval domain.
        let mut out = Vec::new();
        Feasibility::with_options(AnalysisOptions {
            domain: crate::absint::Domain::Interval,
            ..Default::default()
        })
        .check(&b, &mut out);
        assert!(out.iter().all(|d| d.code != "A009"), "{out:?}");
    }

    #[test]
    fn dead_options_are_a010_warning() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "bcast".into(),
                def: ParamDef::Categorical {
                    options: vec!["1rg".into(), "1rM".into(), "2rg".into(), "Lng".into()],
                },
                default: None,
            }],
            constraints: vec![constraint("topo", "bcast <= 1")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A010").expect("A010");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`2rg`"), "{}", d.message);
        assert!(d.message.contains("`Lng`"), "{}", d.message);
        assert!(
            d.help.as_deref().unwrap_or_default().contains("--contract"),
            "prefix survivors are rewritable: {:?}",
            d.help
        );
    }

    #[test]
    fn forced_single_value_is_a011_warning() {
        let b = PlanBundle {
            params: vec![ParamSpec {
                name: "mode".into(),
                def: ParamDef::Categorical {
                    options: vec!["left".into(), "crout".into(), "right".into()],
                },
                default: None,
            }],
            constraints: vec![constraint("pin", "mode == 2")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A011").expect("A011");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`right`"), "{}", d.message);
        assert!(out.iter().all(|d| d.code != "A010"), "A011 subsumes A010");

        // An integer squeezed to a point by an equality is forced too.
        let b = PlanBundle {
            params: vec![param("n", 0, 100_000)],
            constraints: vec![constraint("pin", "n == 57600")],
            ..Default::default()
        };
        let out = run(&b);
        let d = out.iter().find(|d| d.code == "A011").expect("A011");
        assert!(d.message.contains("57600"), "{}", d.message);
    }

    #[test]
    fn malformed_bundle_is_skipped() {
        let b = PlanBundle {
            params: vec![param("a", 9, 1)],
            constraints: vec![constraint("c", "a > 100")],
            ..Default::default()
        };
        assert!(run(&b).is_empty(), "S002 territory is not re-reported");
    }
}
