//! `S001`: duplicate / shadowed names.
//!
//! Duplicate parameter names make every by-name lookup ambiguous — the
//! second definition silently shadows the first in `index_of`-style
//! searches — so they are always errors. Duplicate routine names in the
//! influence graph are reported under the same code.

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Location};
use crate::registry::Lint;
use std::collections::HashSet;

/// See the module docs.
pub struct DuplicateParams;

impl Lint for DuplicateParams {
    fn name(&self) -> &'static str {
        "duplicate-params"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["S001"]
    }

    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>) {
        let mut seen = HashSet::new();
        for p in &bundle.params {
            if !seen.insert(p.name.as_str()) {
                out.push(
                    Diagnostic::error(
                        "S001",
                        Location::Param(p.name.clone()),
                        format!("duplicate parameter `{}`", p.name),
                    )
                    .with_help("parameter names must be unique; rename or remove one definition"),
                );
            }
        }
        if let Some(g) = &bundle.graph {
            let mut seen_r = HashSet::new();
            for r in g.routines() {
                if !seen_r.insert(r.as_str()) {
                    out.push(
                        Diagnostic::error(
                            "S001",
                            Location::Routine(r.clone()),
                            format!("duplicate routine `{r}` in the influence graph"),
                        )
                        .with_help("routine names must be unique"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ParamSpec;
    use cets_space::ParamDef;

    fn param(name: &str) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def: ParamDef::Real { lo: 0.0, hi: 1.0 },
            default: None,
        }
    }

    #[test]
    fn duplicate_param_reported_once_per_extra() {
        let b = PlanBundle {
            params: vec![param("tb"), param("u"), param("tb")],
            ..Default::default()
        };
        let mut out = Vec::new();
        DuplicateParams.check(&b, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "S001");
        assert_eq!(out[0].location, Location::Param("tb".into()));
    }

    #[test]
    fn unique_names_clean() {
        let b = PlanBundle {
            params: vec![param("a"), param("b")],
            ..Default::default()
        };
        let mut out = Vec::new();
        DuplicateParams.check(&b, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_routines_reported() {
        let b = PlanBundle {
            graph: Some(cets_graph::InfluenceGraph::new(
                vec!["G1".into(), "G1".into()],
                vec![],
            )),
            ..Default::default()
        };
        let mut out = Vec::new();
        DuplicateParams.check(&b, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].location, Location::Routine("G1".into()));
    }
}
