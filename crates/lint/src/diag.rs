//! The diagnostic model: stable codes, severities, locations.

use std::fmt;

/// How bad a finding is.
///
/// [`Severity::Error`] findings make a plan unusable (the methodology
/// refuses to execute it under the default policy); [`Severity::Warning`]
/// findings waste budget or risk numerical trouble but do not make the
/// plan wrong; [`Severity::Info`] findings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Suspicious but executable.
    Warning,
    /// The plan must not be executed.
    Error,
}

impl Severity {
    /// Lower-case label used by the reporters (`"error"` etc.).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What part of the bundle a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A search-space parameter, by name.
    Param(String),
    /// A routine, by name.
    Routine(String),
    /// A constraint, by name.
    Constraint(String),
    /// A planned search, by name.
    Search(String),
    /// The influence graph as a whole.
    Graph,
    /// The kernel / GP configuration.
    Kernel,
    /// The plan or its settings as a whole.
    Plan,
}

impl Location {
    /// Category label (`"param"`, `"routine"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Location::Param(_) => "param",
            Location::Routine(_) => "routine",
            Location::Constraint(_) => "constraint",
            Location::Search(_) => "search",
            Location::Graph => "graph",
            Location::Kernel => "kernel",
            Location::Plan => "plan",
        }
    }

    /// The referenced name, when the location names something.
    pub fn name(&self) -> Option<&str> {
        match self {
            Location::Param(n)
            | Location::Routine(n)
            | Location::Constraint(n)
            | Location::Search(n) => Some(n),
            Location::Graph | Location::Kernel | Location::Plan => None,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => write!(f, "{} `{}`", self.kind(), n),
            None => f.write_str(self.kind()),
        }
    }
}

/// One finding, with a stable machine-readable code.
///
/// Codes are grouped by subsystem: `S0xx` search space, `G0xx` influence
/// graph / plan structure, `N0xx` numerics. The full list with examples
/// lives in `DESIGN.md` ("Diagnostics reference"); codes never change
/// meaning once shipped.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"S001"`.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where in the bundle the problem lives.
    pub location: Location,
    /// One-line description of the problem.
    pub message: String,
    /// Optional fix-it hint.
    pub help: Option<String>,
    /// Physical source region of [`Diagnostic::location`], when the
    /// bundle came from a file whose spans were indexed. Attached
    /// centrally by [`crate::registry::Registry::run`]; rules never set
    /// it themselves.
    pub span: Option<crate::span::Span>,
}

impl Diagnostic {
    /// Construct an [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
            help: None,
            span: None,
        }
    }

    /// Construct a [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
            help: None,
            span: None,
        }
    }

    /// Construct a [`Severity::Info`] diagnostic.
    pub fn info(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            location,
            message: message.into(),
            help: None,
            span: None,
        }
    }

    /// Attach a fix-it hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attach a physical source span.
    pub fn with_span(mut self, span: crate::span::Span) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.location
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_is_compiler_like() {
        let d = Diagnostic::error("S001", Location::Param("tb".into()), "duplicate parameter")
            .with_help("rename one of the two");
        let s = d.to_string();
        assert!(s.contains("error[S001]"));
        assert!(s.contains("param `tb`"));
    }

    #[test]
    fn location_kinds_and_names() {
        assert_eq!(Location::Graph.kind(), "graph");
        assert_eq!(Location::Graph.name(), None);
        assert_eq!(Location::Search("G3+G4".into()).name(), Some("G3+G4"));
    }
}
