//! The [`Lint`] trait, the rule [`Registry`], and the [`Report`] a run
//! produces.
//!
//! Adding a new rule is one file under `src/rules/`: implement [`Lint`],
//! then register the rule in [`Registry::with_default_rules`].

use crate::bundle::PlanBundle;
use crate::diag::{Diagnostic, Severity};

/// One static-analysis rule over a [`PlanBundle`].
///
/// Rules must be pure and total: no objective evaluations, no I/O, and
/// **no panics** — a rule that cannot analyze part of a bundle (e.g. the
/// graph is missing, or a constraint does not parse) skips it silently or
/// emits a diagnostic, never unwinds. This contract is enforced by the
/// crate's property tests, which feed arbitrary bundles to the full
/// registry.
pub trait Lint {
    /// Stable rule name (kebab-case), e.g. `"duplicate-params"`.
    fn name(&self) -> &'static str;

    /// Diagnostic codes this rule can emit (for `--explain`-style docs).
    fn codes(&self) -> &'static [&'static str];

    /// Analyze the bundle, pushing findings into `out`.
    fn check(&self, bundle: &PlanBundle, out: &mut Vec<Diagnostic>);
}

/// The outcome of running a registry over a bundle.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in rule-registration then emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-level findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The highest severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// All findings with the given code (for tests).
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Does any finding carry `code`?
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }
}

/// An ordered collection of rules.
pub struct Registry {
    rules: Vec<Box<dyn Lint>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { rules: Vec::new() }
    }

    /// Every built-in rule, in code order.
    pub fn with_default_rules() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(crate::rules::duplicate_params::DuplicateParams));
        r.register(Box::new(crate::rules::bounds::Bounds));
        r.register(Box::new(crate::rules::defaults::DefaultsInBounds));
        r.register(Box::new(
            crate::rules::constraints::ConstraintSatisfiability,
        ));
        r.register(Box::new(crate::rules::unknown_refs::UnknownRefs));
        r.register(Box::new(crate::rules::cycles::GraphCycles));
        r.register(Box::new(crate::rules::orphans::OrphanedParams));
        r.register(Box::new(crate::rules::dim_cap::DimensionCap));
        r.register(Box::new(crate::rules::shared::SharedParamOwnership));
        r.register(Box::new(crate::rules::kernel_psd::KernelPsd));
        r.register(Box::new(crate::rules::nonfinite::NonFiniteInputs));
        r.register(Box::new(crate::rules::zero_variance::ZeroVariance));
        r
    }

    /// Every default rule **plus** the abstract-interpretation
    /// feasibility rule (`A001`–`A005`). This is what `cets analyze`
    /// runs; it is not the default because `A004` (contractible bounds)
    /// fires on any plan whose bounds are not already statically minimal,
    /// which is advice, not a defect.
    pub fn with_analysis_rules() -> Self {
        Registry::with_analysis_rules_for(crate::absint::AnalysisOptions::default())
    }

    /// Like [`Registry::with_analysis_rules`], but with explicit
    /// [`crate::absint::AnalysisOptions`] — `cets analyze --domain
    /// interval` uses this to fall back to the non-relational domain.
    pub fn with_analysis_rules_for(options: crate::absint::AnalysisOptions) -> Self {
        let mut r = Registry::with_default_rules();
        r.register(Box::new(
            crate::rules::feasibility::Feasibility::with_options(options),
        ));
        r
    }

    /// Add a rule (runs after all previously registered ones).
    pub fn register(&mut self, rule: Box<dyn Lint>) {
        self.rules.push(rule);
    }

    /// Registered rule names, in order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Every diagnostic code a registered rule can emit, in registration
    /// order (duplicates possible when rules share a family).
    pub fn all_codes(&self) -> Vec<&'static str> {
        self.rules
            .iter()
            .flat_map(|r| r.codes().iter().copied())
            .collect()
    }

    /// Run every rule over `bundle`. Physical spans are attached
    /// centrally here: rules only name bundle locations, and any
    /// location the bundle's span table knows gains its `file:line:col`
    /// region (for SARIF `physicalLocation`s and the human `-->` arrow).
    ///
    /// Identical findings are collapsed centrally too: a disjunctive
    /// analysis that derives the same fact on several branches, or two
    /// rules proving one defect, would otherwise repeat the finding
    /// verbatim. The *first* emission survives (rule order is stable),
    /// so counts and exit codes never double-bill one defect.
    pub fn run(&self, bundle: &PlanBundle) -> Report {
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            rule.check(bundle, &mut diagnostics);
        }
        for d in &mut diagnostics {
            if d.span.is_none() {
                d.span = bundle.spans.lookup(&d.location);
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        diagnostics.retain(|d| {
            seen.insert((
                d.code,
                format!("{:?}", d.location),
                d.message.clone(),
                d.help.clone(),
            ))
        });
        Report { diagnostics }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_default_rules()
    }
}

/// Convenience: run the default registry over a bundle.
pub fn lint(bundle: &PlanBundle) -> Report {
    Registry::with_default_rules().run(bundle)
}

/// Convenience: run the analysis registry (defaults + feasibility
/// `A`-codes) over a bundle. This is `cets analyze`'s entry point.
pub fn analyze(bundle: &PlanBundle) -> Report {
    Registry::with_analysis_rules().run(bundle)
}

/// Convenience: run the analysis registry under explicit
/// [`crate::absint::AnalysisOptions`].
pub fn analyze_with(bundle: &PlanBundle, options: crate::absint::AnalysisOptions) -> Report {
    Registry::with_analysis_rules_for(options).run(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_every_code_family() {
        let r = Registry::with_default_rules();
        let codes: Vec<&str> = r
            .rules
            .iter()
            .flat_map(|l| l.codes().iter().copied())
            .collect();
        for c in [
            "S001", "S002", "S003", "S004", "S005", "G001", "G002", "G003", "G004", "N001", "N002",
            "N003",
        ] {
            assert!(codes.contains(&c), "missing rule for {c}");
        }
    }

    #[test]
    fn analysis_registry_adds_a_codes_only() {
        let r = Registry::with_analysis_rules();
        let codes: Vec<&str> = r
            .rules
            .iter()
            .flat_map(|l| l.codes().iter().copied())
            .collect();
        for c in [
            "A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008", "A009", "A010", "A011",
        ] {
            assert!(codes.contains(&c), "missing analysis rule for {c}");
        }
        // The default registry stays free of A-codes.
        let d = Registry::with_default_rules();
        assert!(d
            .rules
            .iter()
            .flat_map(|l| l.codes().iter())
            .all(|c| !c.starts_with('A')));
    }

    #[test]
    fn empty_bundle_is_clean() {
        let report = lint(&PlanBundle::default());
        assert_eq!(report.errors(), 0, "{:?}", report.diagnostics);
        assert!(report.max_severity().is_none() || report.errors() == 0);
    }

    #[test]
    fn identical_findings_are_collapsed() {
        use crate::diag::Location;
        struct Echo;
        impl Lint for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn codes(&self) -> &'static [&'static str] {
                &["S999"]
            }
            fn check(&self, _: &PlanBundle, out: &mut Vec<Diagnostic>) {
                for _ in 0..3 {
                    out.push(Diagnostic::warning("S999", Location::Plan, "same defect"));
                }
                // Different payload survives next to the collapsed one.
                out.push(Diagnostic::warning("S999", Location::Plan, "other defect"));
            }
        }
        let mut r = Registry::new();
        r.register(Box::new(Echo));
        let rep = r.run(&PlanBundle::default());
        assert_eq!(rep.diagnostics.len(), 2, "{:?}", rep.diagnostics);
        assert_eq!(rep.warnings(), 2);
    }

    #[test]
    fn report_counters() {
        use crate::diag::Location;
        let mut rep = Report::default();
        rep.diagnostics
            .push(Diagnostic::error("S001", Location::Plan, "x"));
        rep.diagnostics
            .push(Diagnostic::warning("G002", Location::Plan, "y"));
        assert_eq!(rep.errors(), 1);
        assert_eq!(rep.warnings(), 1);
        assert!(!rep.is_clean());
        assert_eq!(rep.max_severity(), Some(Severity::Error));
        assert!(rep.has_code("S001"));
        assert!(!rep.has_code("S002"));
    }
}
