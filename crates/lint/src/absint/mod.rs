//! Abstract-interpretation feasibility engine.
//!
//! The paper's Step 1 constrains the search space with domain knowledge
//! *before* spending any compute budget. This module answers the semantic
//! questions the structural linter cannot: is the constrained space
//! actually non-empty, which constraints are dead weight, and how much can
//! the box bounds be tightened statically?
//!
//! Three layers:
//!
//! * [`interval`] — the interval domain with NaN-poisoning;
//! * [`mod@contract`] — forward evaluation over [`crate::expr::Expr`] and
//!   HC4-revise backward bound contraction to a fixpoint;
//! * this module — the [`analyze_space`] driver that classifies every
//!   constraint (*proved-unsat* / *tautological* / *contingent*), runs the
//!   contraction, estimates the feasible fraction of the box, and derives
//!   tightened [`ParamDef`]s for the `--contract` rewriting and the
//!   `cets-core` pre-pass.
//!
//! The findings surface as diagnostics `A001`–`A005` via
//! [`crate::rules::feasibility`] and the `cets analyze` subcommand.

pub mod contract;
pub mod interval;

pub use contract::{
    contract, eval_expr, initial_interval, snap, Contraction, CONVERGENCE_EPS, ITER_CAP,
};
pub use interval::Interval;

use crate::bundle::PlanBundle;
use crate::expr;
use cets_space::ParamDef;
use std::collections::BTreeSet;

/// Forward classification of one constraint over the original box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintClass {
    /// No point of the box satisfies it: the plan is dead on arrival.
    ProvedUnsat,
    /// Every point of the box satisfies it: the constraint is dead weight.
    Tautology,
    /// Satisfied by some points and not others (the interesting case).
    Contingent,
}

impl ConstraintClass {
    /// Human label used in diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ConstraintClass::ProvedUnsat => "proved-unsat",
            ConstraintClass::Tautology => "tautological",
            ConstraintClass::Contingent => "contingent",
        }
    }
}

/// Per-parameter outcome of the contraction.
#[derive(Debug, Clone)]
pub struct ParamInterval {
    /// Parameter name.
    pub name: String,
    /// Interval spanned by the declared domain.
    pub original: Interval,
    /// Interval after backward contraction (always ⊆ `original`).
    pub contracted: Interval,
    /// A tightened domain definition, when the contraction strictly
    /// narrowed this parameter *and* the narrowing is expressible
    /// (categorical domains are never rewritten — slicing the option list
    /// would renumber the indices constraints refer to; degenerate real
    /// intervals cannot form a valid `Real` domain).
    pub tightened: Option<ParamDef>,
}

impl ParamInterval {
    /// Did contraction strictly shrink this parameter's interval?
    pub fn narrowed(&self) -> bool {
        !self.contracted.is_empty_range()
            && (self.contracted.lo > self.original.lo || self.contracted.hi < self.original.hi)
    }
}

/// Per-constraint outcome.
#[derive(Debug, Clone)]
pub struct ConstraintAnalysis {
    /// Constraint name.
    pub name: String,
    /// Forward classification over the original box.
    pub class: ConstraintClass,
    /// Forward value interval over the original box.
    pub value: Interval,
}

/// The full result of [`analyze_space`].
#[derive(Debug, Clone)]
pub struct SpaceAnalysis {
    /// False when the bundle is in `S001`/`S002` error territory
    /// (duplicate parameters or invalid domains): interval analysis over
    /// a malformed box would be meaningless, so everything else is empty.
    pub analyzed: bool,
    /// Per-parameter intervals, in declaration order.
    pub params: Vec<ParamInterval>,
    /// Per-constraint classification, in declaration order (only
    /// constraints that parse and reference declared parameters).
    pub constraints: Vec<ConstraintAnalysis>,
    /// Constraints skipped as unparseable or with unknown references
    /// (those belong to `S004`/`S005`).
    pub skipped_constraints: usize,
    /// The constraint conjunction has no satisfying point in the box.
    pub proved_empty: bool,
    /// Fixpoint passes executed by the contraction.
    pub iterations: usize,
    /// Did the contraction converge before [`ITER_CAP`]?
    pub converged: bool,
    /// Contracted box volume / original box volume (product of per-axis
    /// measure ratios; `0` when proved empty, `1` with no contraction).
    /// A tiny value predicts rejection-sampling thrash.
    pub feasible_fraction: f64,
}

impl SpaceAnalysis {
    /// The tightened domain of `name`, when contraction narrowed it.
    pub fn tightened_def(&self, name: &str) -> Option<&ParamDef> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.tightened.as_ref())
    }

    /// Any parameter strictly narrowed?
    pub fn any_narrowed(&self) -> bool {
        self.params.iter().any(|p| p.narrowed())
    }
}

/// Measure of a snapped interval under a domain: width for reals, value
/// count for discrete domains. Used for the feasible-fraction estimate.
fn measure(def: &ParamDef, iv: &Interval) -> f64 {
    if iv.is_empty_range() {
        return 0.0;
    }
    match def {
        ParamDef::Real { .. } => iv.width(),
        ParamDef::Integer { .. } | ParamDef::Categorical { .. } => {
            (iv.hi.floor() - iv.lo.ceil() + 1.0).max(0.0)
        }
        ParamDef::Ordinal { values } => values.iter().filter(|v| iv.contains(**v)).count() as f64,
    }
}

/// Derive a tightened [`ParamDef`] from a contracted interval, when the
/// narrowing is expressible. See [`ParamInterval::tightened`].
fn tightened_def(def: &ParamDef, contracted: &Interval) -> Option<ParamDef> {
    if contracted.is_empty_range() {
        return None;
    }
    match def {
        ParamDef::Real { .. } => {
            if contracted.lo < contracted.hi
                && contracted.lo.is_finite()
                && contracted.hi.is_finite()
            {
                Some(ParamDef::Real {
                    lo: contracted.lo,
                    hi: contracted.hi,
                })
            } else {
                None // degenerate: a point is not a valid Real domain
            }
        }
        ParamDef::Integer { .. } => Some(ParamDef::Integer {
            lo: contracted.lo as i64,
            hi: contracted.hi as i64,
        }),
        ParamDef::Ordinal { values } => {
            let kept: Vec<f64> = values
                .iter()
                .copied()
                .filter(|v| contracted.contains(*v))
                .collect();
            if kept.is_empty() {
                None
            } else {
                Some(ParamDef::Ordinal { values: kept })
            }
        }
        // Slicing the option list would renumber indices that constraints
        // refer to; categorical domains keep their declared definition.
        ParamDef::Categorical { .. } => None,
    }
}

/// Run the feasibility analysis over a bundle: classify every analyzable
/// constraint forward, contract the box backward, and estimate the
/// feasible fraction. Total and deterministic; does no I/O.
pub fn analyze_space(bundle: &PlanBundle) -> SpaceAnalysis {
    let mut out = SpaceAnalysis {
        analyzed: true,
        params: Vec::new(),
        constraints: Vec::new(),
        skipped_constraints: 0,
        proved_empty: false,
        iterations: 0,
        converged: true,
        feasible_fraction: 1.0,
    };

    // Bail out of S001/S002 territory: duplicate names or invalid domains
    // make the box meaningless.
    let mut seen = BTreeSet::new();
    for p in &bundle.params {
        if !seen.insert(p.name.as_str()) || initial_interval(&p.def).is_none() {
            out.analyzed = false;
            return out;
        }
    }

    // Parse what we can; unknown references belong to S005, parse
    // failures to nobody (the linter only reasons about what it
    // understands).
    let mut exprs: Vec<(&str, expr::Expr)> = Vec::new();
    for c in &bundle.constraints {
        match expr::parse(&c.expr) {
            Ok(e) if e.vars().iter().all(|v| bundle.has_param(v)) => {
                exprs.push((c.name.as_str(), e));
            }
            _ => out.skipped_constraints += 1,
        }
    }

    // Initial box.
    let param_refs: Vec<(&str, &ParamDef)> = bundle
        .params
        .iter()
        .map(|p| (p.name.as_str(), &p.def))
        .collect();
    let initial: Vec<Interval> = bundle
        .params
        .iter()
        .map(|p| initial_interval(&p.def).unwrap_or_else(Interval::top))
        .collect();

    // Forward classification over the original box.
    let env0: std::collections::BTreeMap<String, Interval> = bundle
        .params
        .iter()
        .zip(&initial)
        .map(|(p, iv)| (p.name.clone(), *iv))
        .collect();
    let mut any_unsat = false;
    for (name, e) in &exprs {
        let v = eval_expr(e, &env0);
        let class = if !v.can_be_nonzero_real() {
            any_unsat = true;
            ConstraintClass::ProvedUnsat
        } else if !v.maybe_nan && !v.can_be_zero() {
            ConstraintClass::Tautology
        } else {
            ConstraintClass::Contingent
        };
        out.constraints.push(ConstraintAnalysis {
            name: (*name).to_string(),
            class,
            value: v,
        });
    }

    // Backward contraction (an unsat constraint empties the box at once).
    let expr_refs: Vec<&expr::Expr> = exprs.iter().map(|(_, e)| e).collect();
    let c = contract(&param_refs, &expr_refs);
    out.iterations = c.iterations;
    out.converged = c.converged;
    out.proved_empty = c.proved_empty || any_unsat;

    // Per-parameter outcomes + feasible fraction.
    let mut fraction = 1.0;
    for (p, orig) in bundle.params.iter().zip(&initial) {
        let contracted = if out.proved_empty {
            Interval::bottom()
        } else {
            c.env.get(&p.name).copied().unwrap_or(*orig)
        };
        let m_orig = measure(&p.def, orig);
        let m_new = measure(&p.def, &contracted);
        if m_orig > 0.0 {
            fraction *= (m_new / m_orig).clamp(0.0, 1.0);
        } else if m_new == 0.0 {
            fraction = 0.0;
        }
        let tightened = if !out.proved_empty && (contracted.lo > orig.lo || contracted.hi < orig.hi)
        {
            tightened_def(&p.def, &contracted)
        } else {
            None
        };
        out.params.push(ParamInterval {
            name: p.name.clone(),
            original: *orig,
            contracted,
            tightened,
        });
    }
    out.feasible_fraction = if out.proved_empty { 0.0 } else { fraction };
    out
}

/// Mirror of the `S003` membership test: does `default` live inside
/// `def`? Used to refuse a rewrite that would orphan a declared default
/// (a default may sit inside the declared domain yet violate a
/// constraint, in which case the contracted domain excludes it).
fn default_fits(def: &ParamDef, default: f64) -> bool {
    use cets_space::ParamValue;
    if !default.is_finite() {
        return true; // N002 territory; not ours to worsen
    }
    let value = match def {
        ParamDef::Real { .. } | ParamDef::Ordinal { .. } => ParamValue::Real(default),
        ParamDef::Integer { .. } => ParamValue::Int(default.round() as i64),
        ParamDef::Categorical { .. } => ParamValue::Index(default.round().max(0.0) as usize),
    };
    def.contains(&value)
}

/// A copy of `bundle` with every tightened domain applied — what
/// `cets analyze --contract` re-lints and what the methodology's
/// `contract_bounds` pre-pass builds its narrowed space from.
///
/// A parameter keeps its declared domain when the tightened one would
/// exclude its declared default: the contraction proved the default
/// violates a constraint, and silently moving the baseline is worse than
/// leaving the bound loose.
pub fn apply_contraction(bundle: &PlanBundle, analysis: &SpaceAnalysis) -> PlanBundle {
    let mut out = bundle.clone();
    if !analysis.analyzed || analysis.proved_empty {
        return out;
    }
    for p in &mut out.params {
        if let Some(t) = analysis.tightened_def(&p.name) {
            if p.default.is_none_or(|d| default_fits(t, d)) {
                p.def = t.clone();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};

    fn param(name: &str, def: ParamDef) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def,
            default: None,
        }
    }

    fn constraint(name: &str, expr: &str) -> ConstraintSpec {
        ConstraintSpec {
            name: name.into(),
            expr: expr.into(),
        }
    }

    fn bundle(params: Vec<ParamSpec>, constraints: Vec<ConstraintSpec>) -> PlanBundle {
        PlanBundle {
            params,
            constraints,
            ..Default::default()
        }
    }

    #[test]
    fn classifies_unsat_tautology_contingent() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 1, hi: 8 })],
            vec![
                constraint("dead", "a > 100"),
                constraint("trivial", "a >= 0"),
                constraint("real", "a <= 4"),
            ],
        );
        let s = analyze_space(&b);
        assert!(s.analyzed);
        assert_eq!(s.constraints[0].class, ConstraintClass::ProvedUnsat);
        assert_eq!(s.constraints[1].class, ConstraintClass::Tautology);
        assert_eq!(s.constraints[2].class, ConstraintClass::Contingent);
        assert!(s.proved_empty, "an unsat constraint kills the plan");
        assert_eq!(s.feasible_fraction, 0.0);
    }

    #[test]
    fn contraction_and_fraction() {
        let b = bundle(
            vec![
                param("a", ParamDef::Integer { lo: 0, hi: 99 }),
                param("r", ParamDef::Real { lo: 0.0, hi: 10.0 }),
            ],
            vec![constraint("cap", "a <= 24"), constraint("rcap", "r <= 5")],
        );
        let s = analyze_space(&b);
        assert!(!s.proved_empty);
        assert!(s.converged);
        let a = &s.params[0];
        assert_eq!((a.contracted.lo, a.contracted.hi), (0.0, 24.0));
        assert!(a.narrowed());
        assert_eq!(a.tightened, Some(ParamDef::Integer { lo: 0, hi: 24 }));
        // fraction = 25/100 * (5+slack)/10 ≈ 0.125
        assert!(
            (s.feasible_fraction - 0.125).abs() < 1e-3,
            "{}",
            s.feasible_fraction
        );
    }

    #[test]
    fn skips_malformed_bundles() {
        let b = bundle(
            vec![
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
            ],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "duplicate params: S001 territory"
        );
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 1.0, hi: 0.0 })],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "invalid domain: S002 territory"
        );
    }

    #[test]
    fn skips_unparseable_and_unknown_constraints() {
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 0.0, hi: 1.0 })],
            vec![
                constraint("garbage", "?!?"),
                constraint("foreign", "zz <= 1"),
                constraint("fine", "a <= 2"),
            ],
        );
        let s = analyze_space(&b);
        assert_eq!(s.skipped_constraints, 2);
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn categorical_not_rewritten() {
        let b = bundle(
            vec![param(
                "impl",
                ParamDef::Categorical {
                    options: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                },
            )],
            vec![constraint("cap", "impl <= 1")],
        );
        let s = analyze_space(&b);
        let p = &s.params[0];
        assert!(p.narrowed(), "index interval narrows");
        assert!(p.tightened.is_none(), "but the option list is never sliced");
        assert!((s.feasible_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn apply_contraction_rewrites_defs() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 99 })],
            vec![constraint("cap", "a <= 9")],
        );
        let s = analyze_space(&b);
        let nb = apply_contraction(&b, &s);
        assert_eq!(nb.params[0].def, ParamDef::Integer { lo: 0, hi: 9 });
        // Re-analysis of the contracted bundle finds nothing to narrow:
        // the cap is now tautological.
        let s2 = analyze_space(&nb);
        assert!(!s2.any_narrowed());
        assert_eq!(s2.constraints[0].class, ConstraintClass::Tautology);
    }

    #[test]
    fn empty_bundle_is_trivially_full() {
        let s = analyze_space(&PlanBundle::default());
        assert!(s.analyzed);
        assert!(!s.proved_empty);
        assert_eq!(s.feasible_fraction, 1.0);
        assert!(s.converged);
    }
}
