//! Abstract-interpretation feasibility engine.
//!
//! The paper's Step 1 constrains the search space with domain knowledge
//! *before* spending any compute budget. This module answers the semantic
//! questions the structural linter cannot: is the constrained space
//! actually non-empty, which constraints are dead weight, and how much can
//! the box bounds be tightened statically?
//!
//! The layers:
//!
//! * [`interval`] — the interval domain with NaN-poisoning;
//! * [`mod@contract`] — forward evaluation over [`crate::expr::Expr`] and
//!   HC4-revise backward bound contraction to a fixpoint;
//! * [`octagon`] — the relational octagon domain (`±x ± y ≤ c`
//!   difference-bound matrices with closure), which proves joint
//!   emptiness and two-variable bounds the interval domain cannot see;
//! * [`congruence`] — the Granger congruence domain (`x ≡ r mod m`),
//!   reduced against the intervals so divisor constraints like
//!   `n % nb == 0` snap bounds to the multiples grid;
//! * the finite-set pass (this module) — exact feasible value subsets
//!   for `Ordinal`/`Categorical` parameters, probing each declared
//!   value against every disjunctive branch;
//! * [`split`] — disjunctive branch-and-prune over `Or` nodes, joining
//!   per-branch fixpoints into unions of feasible slabs;
//! * [`project`] — conditional projection `project(var, fixed)` powering
//!   constructive (rejection-free) sampling in `cets-core`;
//! * this module — the [`analyze_space`] / [`analyze_space_with`] driver
//!   that classifies every constraint (*proved-unsat* / *tautological* /
//!   *contingent*), runs the contraction in the configured [`Domain`],
//!   estimates the feasible fraction, and derives tightened
//!   [`ParamDef`]s for the `--contract` rewriting and the `cets-core`
//!   pre-pass.
//!
//! The findings surface as diagnostics `A001`–`A011` via
//! [`crate::rules::feasibility`] and the `cets analyze` subcommand.

pub mod congruence;
pub mod contract;
pub mod interval;
pub mod octagon;
pub mod project;
pub mod split;

pub use congruence::Congruence;
pub use contract::{
    contract, contract_from, eval_expr, initial_interval, snap, Contraction, CONVERGENCE_EPS,
    ITER_CAP,
};
pub use interval::Interval;
pub use octagon::{octagonal_atoms, OctAtom, Octagon};
pub use project::Projector;
pub use split::{dnf_branches, SPLIT_CAP};

use crate::bundle::PlanBundle;
use crate::expr;
use cets_space::ParamDef;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which abstract domain the analysis runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Domain {
    /// Non-relational interval contraction only — the PR 2 behaviour,
    /// kept as an escape hatch and comparison axis (`--domain interval`).
    Interval,
    /// Relational analysis: interval contraction per disjunctive branch,
    /// refined by the octagon domain, joined into slab unions.
    Octagon,
    /// The reduced product: octagon-refined branches further reduced by
    /// the congruence domain (divisor grids) and the finite-set pass
    /// (exact ordinal/categorical value subsets).
    #[default]
    Product,
}

impl Domain {
    /// CLI / report label.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::Interval => "interval",
            Domain::Octagon => "octagon",
            Domain::Product => "product",
        }
    }

    /// Does this domain split disjunctions and run the octagon closure?
    fn relational(&self) -> bool {
        matches!(self, Domain::Octagon | Domain::Product)
    }
}

/// Knobs for [`analyze_space_with`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Abstract domain (default: [`Domain::Product`]).
    pub domain: Domain,
    /// Branch cap for disjunctive splitting (default: [`SPLIT_CAP`]).
    pub split_cap: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            domain: Domain::default(),
            split_cap: SPLIT_CAP,
        }
    }
}

/// The two relation shapes the octagon domain reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelationKind {
    /// `a + b` bounded.
    Sum,
    /// `a - b` bounded.
    Diff,
}

/// A proven two-variable bound that is strictly tighter than what the
/// contracted per-variable boxes already imply.
#[derive(Debug, Clone)]
pub struct Relation {
    /// First parameter name.
    pub a: String,
    /// Second parameter name.
    pub b: String,
    /// Sum or difference.
    pub kind: RelationKind,
    /// `true`: `a ∘ b ≤ bound`; `false`: `a ∘ b ≥ bound`.
    pub upper: bool,
    /// The proven bound.
    pub bound: f64,
    /// `true` when the bound was *inferred* (closure combination, product
    /// relaxation) rather than restated from a literal linear constraint;
    /// only inferred relations surface as `A006`.
    pub inferred: bool,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            RelationKind::Sum => "+",
            RelationKind::Diff => "-",
        };
        let cmp = if self.upper { "<=" } else { ">=" };
        // The stored bound carries the directed-rounding slack of the
        // closure; displaying `544.0000000010884` for an exactly-integral
        // relation is noise, so shave sub-slack dust off the rendering
        // (the stored value stays sound).
        let b = self.bound;
        let rounded = b.round();
        let shown = if (b - rounded).abs() <= 1e-6 * rounded.abs().max(1.0) {
            rounded
        } else {
            b
        };
        write!(f, "{} {op} {} {cmp} {}", self.a, self.b, shown)
    }
}

/// Forward classification of one constraint over the original box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintClass {
    /// No point of the box satisfies it: the plan is dead on arrival.
    ProvedUnsat,
    /// Every point of the box satisfies it: the constraint is dead weight.
    Tautology,
    /// Satisfied by some points and not others (the interesting case).
    Contingent,
}

impl ConstraintClass {
    /// Human label used in diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ConstraintClass::ProvedUnsat => "proved-unsat",
            ConstraintClass::Tautology => "tautological",
            ConstraintClass::Contingent => "contingent",
        }
    }
}

/// Per-parameter outcome of the contraction.
#[derive(Debug, Clone)]
pub struct ParamInterval {
    /// Parameter name.
    pub name: String,
    /// Interval spanned by the declared domain.
    pub original: Interval,
    /// Interval after backward contraction (always ⊆ `original`).
    pub contracted: Interval,
    /// The feasible region as a sorted union of disjoint slabs — the
    /// branch-and-prune join before hulling. Always covers `contracted`'s
    /// endpoints; a single entry equal to `contracted` when no
    /// disjunction splits this parameter; empty when the box is proved
    /// empty.
    pub slabs: Vec<Interval>,
    /// A tightened domain definition, when the contraction strictly
    /// narrowed this parameter *and* the narrowing is expressible.
    /// Ordinal value lists shrink to the exact surviving subset;
    /// categorical option lists are only rewritten when the surviving
    /// indices form a *prefix* of the declared list (dropping a tail
    /// never renumbers the indices constraints refer to — anything else
    /// would); degenerate real intervals cannot form a valid `Real`
    /// domain.
    pub tightened: Option<ParamDef>,
    /// Congruence fact proved for this (integer) parameter under
    /// [`Domain::Product`]: the feasible values lie on the grid
    /// `m·ℤ + r`, stride `m ≥ 2`. Drives the `A009` diagnostic and the
    /// stride-aware constructive sampler.
    pub stride: Option<(u64, u64)>,
    /// Exact feasible value subset (indices into the declared
    /// ordinal-value / categorical-option list) proved by the finite-set
    /// pass under [`Domain::Product`]; `None` for non-finite kinds,
    /// other domains, or lists past the probe cap. Drives `A010`/`A011`
    /// and the set-restricted slab machinery.
    pub kept: Option<Vec<usize>>,
}

impl ParamInterval {
    /// Did contraction strictly shrink this parameter's interval?
    pub fn narrowed(&self) -> bool {
        !self.contracted.is_empty_range()
            && (self.contracted.lo > self.original.lo || self.contracted.hi < self.original.hi)
    }
}

/// Per-constraint outcome.
#[derive(Debug, Clone)]
pub struct ConstraintAnalysis {
    /// Constraint name.
    pub name: String,
    /// Forward classification over the original box.
    pub class: ConstraintClass,
    /// Forward value interval over the original box.
    pub value: Interval,
}

/// Deterministic Monte-Carlo cross-check of the feasible fraction.
///
/// The interval product [`SpaceAnalysis::feasible_fraction`] is a sound
/// *upper bound* per axis but forgets correlations between constraints; a
/// few thousand fixed-seed probes give an unbiased point estimate with a
/// quantified uncertainty. The [`wilson_interval`] bounds are what the
/// `A003` diagnostic reports, so a CI gate near the threshold can judge
/// whether the estimate is precise enough to act on rather than flapping
/// on a bare point value. Probing is seeded with a constant
/// ([SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream), so the
/// estimate is a pure function of the bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McFeasibility {
    /// Number of uniform probes drawn from the declared box.
    pub probes: u64,
    /// Probes satisfying every analyzable constraint.
    pub hits: u64,
    /// Point estimate `hits / probes`.
    pub estimate: f64,
    /// Lower 95 % Wilson bound.
    pub ci_lo: f64,
    /// Upper 95 % Wilson bound.
    pub ci_hi: f64,
}

/// The full result of [`analyze_space`].
#[derive(Debug, Clone)]
pub struct SpaceAnalysis {
    /// False when the bundle is in `S001`/`S002` error territory
    /// (duplicate parameters or invalid domains): interval analysis over
    /// a malformed box would be meaningless, so everything else is empty.
    pub analyzed: bool,
    /// Per-parameter intervals, in declaration order.
    pub params: Vec<ParamInterval>,
    /// Per-constraint classification, in declaration order (only
    /// constraints that parse and reference declared parameters).
    pub constraints: Vec<ConstraintAnalysis>,
    /// Constraints skipped as unparseable or with unknown references
    /// (those belong to `S004`/`S005`).
    pub skipped_constraints: usize,
    /// The constraint conjunction has no satisfying point in the box.
    pub proved_empty: bool,
    /// Fixpoint passes executed by the contraction.
    pub iterations: usize,
    /// Did the contraction converge before [`ITER_CAP`]?
    pub converged: bool,
    /// Contracted box volume / original box volume (product of per-axis
    /// measure ratios; `0` when proved empty, `1` with no contraction).
    /// A tiny value predicts rejection-sampling thrash.
    pub feasible_fraction: f64,
    /// Fixed-seed Monte-Carlo estimate of the feasible fraction with its
    /// Wilson confidence interval; `None` when there is no analyzable
    /// constraint to probe (the fraction is then exactly `1`) or the box
    /// is proved empty (exactly `0`).
    pub mc_feasible: Option<McFeasibility>,
    /// The abstract domain the analysis ran in.
    pub domain: Domain,
    /// Two-variable bounds proved by the octagon domain that are strictly
    /// tighter than the contracted boxes imply. Empty under
    /// [`Domain::Interval`].
    pub relations: Vec<Relation>,
    /// Disjunctive branches explored (1 when nothing split).
    pub split_branches: usize,
    /// Did branch expansion hit the [`AnalysisOptions::split_cap`]? When
    /// true some disjunction was analysed with the sound-but-loose hull
    /// (diagnostic `A008`).
    pub split_capped: bool,
}

impl SpaceAnalysis {
    /// The tightened domain of `name`, when contraction narrowed it.
    pub fn tightened_def(&self, name: &str) -> Option<&ParamDef> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.tightened.as_ref())
    }

    /// Any parameter strictly narrowed?
    pub fn any_narrowed(&self) -> bool {
        self.params.iter().any(|p| p.narrowed())
    }
}

/// Measure of a snapped interval under a domain: width for reals, value
/// count for discrete domains. Used for the feasible-fraction estimate.
fn measure(def: &ParamDef, iv: &Interval) -> f64 {
    if iv.is_empty_range() {
        return 0.0;
    }
    match def {
        ParamDef::Real { .. } => iv.width(),
        ParamDef::Integer { .. } | ParamDef::Categorical { .. } => {
            (iv.hi.floor() - iv.lo.ceil() + 1.0).max(0.0)
        }
        ParamDef::Ordinal { values } => values.iter().filter(|v| iv.contains(**v)).count() as f64,
    }
}

/// Derive a tightened [`ParamDef`] from a contracted interval and (for
/// finite kinds) the finite-set pass's surviving indices, when the
/// narrowing is expressible. See [`ParamInterval::tightened`].
fn tightened_def(
    def: &ParamDef,
    contracted: &Interval,
    kept: Option<&[usize]>,
) -> Option<ParamDef> {
    if contracted.is_empty_range() {
        return None;
    }
    match def {
        ParamDef::Real { .. } => {
            if contracted.lo < contracted.hi
                && contracted.lo.is_finite()
                && contracted.hi.is_finite()
            {
                Some(ParamDef::Real {
                    lo: contracted.lo,
                    hi: contracted.hi,
                })
            } else {
                None // degenerate: a point is not a valid Real domain
            }
        }
        ParamDef::Integer { .. } => Some(ParamDef::Integer {
            lo: contracted.lo as i64,
            hi: contracted.hi as i64,
        }),
        ParamDef::Ordinal { values } => {
            // Ordinal constraints are by *value*, so any subset is
            // expressible: the exact surviving set when the finite-set
            // pass ran, the contracted hull's members otherwise.
            let survivors: Vec<f64> = match kept {
                Some(idx) => idx.iter().filter_map(|&k| values.get(k).copied()).collect(),
                None => values
                    .iter()
                    .copied()
                    .filter(|v| contracted.contains(*v))
                    .collect(),
            };
            if survivors.is_empty() {
                None
            } else {
                Some(ParamDef::Ordinal { values: survivors })
            }
        }
        // Categorical constraints are by option *index*: only dropping a
        // suffix keeps the surviving indices stable, so rewrite exactly
        // when the finite-set pass proved the survivors form a prefix.
        ParamDef::Categorical { options } => {
            let idx = kept?;
            if idx.is_empty() || idx.len() >= options.len() {
                return None;
            }
            if idx.iter().enumerate().any(|(pos, &k)| pos != k) {
                return None; // holes would renumber survivors
            }
            Some(ParamDef::Categorical {
                options: options[..idx.len()].to_vec(),
            })
        }
    }
}

/// Largest finite domain the finite-set pass probes exhaustively. Each
/// value costs one contraction per branch; tuning enums are small, so a
/// cap of 32 covers them all without risking quadratic blowup.
pub const FINITE_PROBE_CAP: usize = 32;

/// The declared value list of a finite parameter kind: ordinal values as
/// written, categorical options as indices `0..k`. `None` for the
/// unbounded kinds (Real, Integer).
fn finite_values(def: &ParamDef) -> Option<Vec<f64>> {
    match def {
        ParamDef::Ordinal { values } => Some(values.clone()),
        ParamDef::Categorical { options } => Some((0..options.len()).map(|i| i as f64).collect()),
        ParamDef::Real { .. } | ParamDef::Integer { .. } => None,
    }
}

/// Count the integers in `iv` congruent to `r` mod `m` — the counting
/// measure of a strided integer slab.
fn count_congruent(iv: &Interval, m: u64, r: u64) -> f64 {
    let t = Congruence::Grid { m, r }.tighten(iv);
    if t.is_empty_range() {
        return 0.0;
    }
    ((t.hi - t.lo) / m as f64).floor() + 1.0
}

/// [`analyze_space_with`] under [`AnalysisOptions::default`] — the
/// reduced product of octagons, congruences, and finite sets, with
/// disjunctive branch-and-prune.
pub fn analyze_space(bundle: &PlanBundle) -> SpaceAnalysis {
    analyze_space_with(bundle, &AnalysisOptions::default())
}

/// Run the feasibility analysis over a bundle: classify every analyzable
/// constraint forward, contract the box backward (per disjunctive branch,
/// octagon-refined under [`Domain::Octagon`]), and estimate the feasible
/// fraction. Total and deterministic; does no I/O.
pub fn analyze_space_with(bundle: &PlanBundle, opts: &AnalysisOptions) -> SpaceAnalysis {
    let mut out = SpaceAnalysis {
        analyzed: true,
        params: Vec::new(),
        constraints: Vec::new(),
        skipped_constraints: 0,
        proved_empty: false,
        iterations: 0,
        converged: true,
        feasible_fraction: 1.0,
        mc_feasible: None,
        domain: opts.domain,
        relations: Vec::new(),
        split_branches: 1,
        split_capped: false,
    };

    // Bail out of S001/S002 territory: duplicate names or invalid domains
    // make the box meaningless.
    let mut seen = BTreeSet::new();
    for p in &bundle.params {
        if !seen.insert(p.name.as_str()) || initial_interval(&p.def).is_none() {
            out.analyzed = false;
            return out;
        }
    }

    // Parse what we can; unknown references belong to S005, parse
    // failures to nobody (the linter only reasons about what it
    // understands).
    let mut exprs: Vec<(&str, expr::Expr)> = Vec::new();
    for c in &bundle.constraints {
        match expr::parse(&c.expr) {
            Ok(e) if e.vars().iter().all(|v| bundle.has_param(v)) => {
                exprs.push((c.name.as_str(), e));
            }
            _ => out.skipped_constraints += 1,
        }
    }

    // Initial box.
    let param_refs: Vec<(&str, &ParamDef)> = bundle
        .params
        .iter()
        .map(|p| (p.name.as_str(), &p.def))
        .collect();
    let initial: Vec<Interval> = bundle
        .params
        .iter()
        .map(|p| initial_interval(&p.def).unwrap_or_else(Interval::top))
        .collect();

    // Forward classification over the original box.
    let env0: std::collections::BTreeMap<String, Interval> = bundle
        .params
        .iter()
        .zip(&initial)
        .map(|(p, iv)| (p.name.clone(), *iv))
        .collect();
    let mut any_unsat = false;
    for (name, e) in &exprs {
        let v = eval_expr(e, &env0);
        let class = if !v.can_be_nonzero_real() {
            any_unsat = true;
            ConstraintClass::ProvedUnsat
        } else if !v.maybe_nan && !v.can_be_zero() {
            ConstraintClass::Tautology
        } else {
            ConstraintClass::Contingent
        };
        out.constraints.push(ConstraintAnalysis {
            name: (*name).to_string(),
            class,
            value: v,
        });
    }

    // Backward contraction, per disjunctive branch (an unsat constraint
    // empties the box at once; a branch that contracts to empty is
    // pruned; the survivors join into slab unions).
    let expr_refs: Vec<&expr::Expr> = exprs.iter().map(|(_, e)| e).collect();
    let (branches, capped) = if opts.domain.relational() {
        split::dnf_branches(&expr_refs, opts.split_cap.max(1))
    } else {
        (
            vec![expr_refs.iter().map(|e| (*e).clone()).collect::<Vec<_>>()],
            false,
        )
    };
    out.split_capped = capped;
    out.split_branches = branches.len();

    let name_idx: BTreeMap<&str, usize> = bundle
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    let mut branch_data: Vec<(Vec<&expr::Expr>, BTreeMap<String, Interval>)> = Vec::new();
    let mut branch_congs: Vec<BTreeMap<String, Congruence>> = Vec::new();
    let mut joined_oct: Option<Octagon> = None;
    let mut stated: BTreeMap<StatedKey, f64> = BTreeMap::new();
    let mut all_converged = true;
    for br in &branches {
        let refs: Vec<&expr::Expr> = br.iter().collect();
        let c = contract(&param_refs, &refs);
        out.iterations = out.iterations.max(c.iterations);
        all_converged &= c.converged;
        if c.proved_empty {
            continue;
        }
        let mut env = c.env;
        if opts.domain.relational() {
            match octagon_refine(&param_refs, &name_idx, &refs, env, &mut stated) {
                Some((refined, oct)) => {
                    env = refined;
                    match &mut joined_oct {
                        Some(j) => j.join_with(&oct),
                        None => joined_oct = Some(oct),
                    }
                }
                None => continue, // octagon proved the branch empty
            }
        }
        let congs = if opts.domain == Domain::Product {
            match congruence::refine_branch(&param_refs, &refs, &mut env) {
                Some(f) => f,
                None => continue, // no residue fits the branch box
            }
        } else {
            BTreeMap::new()
        };
        branch_congs.push(congs);
        branch_data.push((refs, env));
    }
    out.converged = all_converged;
    out.proved_empty = any_unsat || branch_data.is_empty();

    // Finite-set pass (product domain only): probe every declared
    // ordinal value / categorical option against every surviving branch.
    // A value survives a branch when pinning it there neither empties
    // the interval contraction nor the congruence reduction. A
    // parameter left with no surviving value proves the space empty.
    let mut kept_sets: Vec<Option<Vec<usize>>> = vec![None; bundle.params.len()];
    if opts.domain == Domain::Product && !out.proved_empty {
        for (pi, p) in bundle.params.iter().enumerate() {
            let Some(values) = finite_values(&p.def) else {
                continue;
            };
            if values.is_empty() || values.len() > FINITE_PROBE_CAP {
                continue;
            }
            let referenced = exprs.iter().any(|(_, e)| e.vars().contains(&p.name));
            let mut alive = vec![false; values.len()];
            for (refs, env) in &branch_data {
                let biv = env.get(&p.name).copied().unwrap_or_else(Interval::top);
                for (k, &v) in values.iter().enumerate() {
                    if alive[k] || !biv.contains(v) {
                        continue;
                    }
                    if !referenced {
                        alive[k] = true;
                        continue;
                    }
                    let mut probe = env.clone();
                    probe.insert(p.name.clone(), Interval::point(v));
                    let c = contract_from(probe, &param_refs, refs);
                    if c.proved_empty {
                        continue;
                    }
                    let mut cenv = c.env;
                    if congruence::refine_branch(&param_refs, refs, &mut cenv).is_none() {
                        continue;
                    }
                    alive[k] = true;
                }
            }
            let idx: Vec<usize> = (0..values.len()).filter(|&k| alive[k]).collect();
            if idx.is_empty() {
                out.proved_empty = true;
            }
            kept_sets[pi] = Some(idx);
        }
    }

    // Per-parameter outcomes + feasible fraction (slab-union measures:
    // disjoint slabs of one axis sum, so `a <= 1 || a >= 9` over {0..10}
    // measures 4/11, not the vacuous 1).
    let mut fraction = 1.0;
    for (pi, (p, orig)) in bundle.params.iter().zip(&initial).enumerate() {
        let kept = if out.proved_empty {
            None
        } else {
            kept_sets[pi].take()
        };
        let mut slabs = if out.proved_empty {
            Vec::new()
        } else {
            split::merge_slabs(
                Some(&p.def),
                branch_data
                    .iter()
                    .map(|(_, env)| env.get(&p.name).copied().unwrap_or(*orig))
                    .collect(),
            )
        };
        // Set-restricted slabs: when strictly fewer values survive than
        // the merged slabs admit, the feasible region is the union of
        // the surviving points. (The strictness gate keeps analyses
        // without finite-set facts producing byte-identical slabs.)
        if let Some(idx) = &kept {
            if let Some(values) = finite_values(&p.def) {
                let admitted = values
                    .iter()
                    .filter(|v| slabs.iter().any(|s| s.contains(**v)))
                    .count();
                if idx.len() < admitted {
                    slabs = split::merge_slabs(
                        Some(&p.def),
                        idx.iter().map(|&k| Interval::point(values[k])).collect(),
                    );
                }
            }
        }
        let contracted = slabs
            .iter()
            .fold(Interval::bottom(), |acc, iv| acc.join(iv));
        // Congruence stride for integer parameters: the join of every
        // surviving branch's fact (sound for the union of branches).
        let stride = if matches!(p.def, ParamDef::Integer { .. }) && !out.proved_empty {
            branch_congs
                .iter()
                .map(|f| f.get(&p.name).copied().unwrap_or(Congruence::Top))
                .reduce(|a, b| a.join(&b))
                .and_then(|c| c.as_stride())
        } else {
            None
        };
        let m_orig = measure(&p.def, orig);
        let m_new: f64 = match stride {
            // A stride counts only the congruent points of each slab —
            // `n % 256 == 0` over [1, 100000] measures 390, not 99585.
            Some((m, r)) => slabs.iter().map(|s| count_congruent(s, m, r)).sum(),
            None => slabs.iter().map(|s| measure(&p.def, s)).sum(),
        };
        if m_orig > 0.0 {
            fraction *= (m_new / m_orig).clamp(0.0, 1.0);
        } else if m_new == 0.0 {
            fraction = 0.0;
        }
        let kept_strict = kept
            .as_ref()
            .zip(finite_values(&p.def))
            .is_some_and(|(idx, values)| idx.len() < values.len());
        let tightened = if !out.proved_empty
            && ((contracted.lo > orig.lo || contracted.hi < orig.hi) || kept_strict)
        {
            tightened_def(&p.def, &contracted, kept.as_deref())
        } else {
            None
        };
        out.params.push(ParamInterval {
            name: p.name.clone(),
            original: *orig,
            contracted,
            slabs,
            tightened,
            stride,
            kept,
        });
    }
    out.feasible_fraction = if out.proved_empty { 0.0 } else { fraction };

    // Relational findings: pair bounds from the joined octagon that beat
    // what the contracted boxes already imply.
    if let Some(oct) = &joined_oct {
        if !out.proved_empty {
            out.relations = build_relations(oct, &out.params, &stated);
        }
    }

    // Monte-Carlo cross-check: only meaningful with at least one probe-able
    // constraint and a non-empty box.
    if !out.proved_empty && !expr_refs.is_empty() {
        out.mc_feasible = Some(mc_feasible_fraction(&param_refs, &expr_refs, MC_PROBES));
    }
    out
}

/// Canonical key for a directly-stated two-variable bound:
/// `(lower-index param, higher-index param, kind, is-upper-bound)`.
type StatedKey = (usize, usize, RelationKind, bool);

/// Record a literally-stated (non-derived) two-variable atom in canonical
/// form, keeping the tightest bound per direction. Used to distinguish
/// *inferred* relations (reportable as `A006`) from restatements.
fn record_stated(stated: &mut BTreeMap<StatedKey, f64>, atom: &OctAtom) {
    let OctAtom::Two {
        i,
        si,
        j,
        sj,
        c,
        derived,
    } = *atom
    else {
        return;
    };
    if derived {
        return;
    }
    // si·x_i + sj·x_j ≤ c, canonicalised onto the (min, max) index pair.
    let (p, q, kind, upper, bound) = match (si > 0, sj > 0) {
        (true, true) => (i.min(j), i.max(j), RelationKind::Sum, true, c),
        (false, false) => (i.min(j), i.max(j), RelationKind::Sum, false, -c),
        (true, false) if i < j => (i, j, RelationKind::Diff, true, c),
        (true, false) => (j, i, RelationKind::Diff, false, -c),
        (false, true) if j < i => (j, i, RelationKind::Diff, true, c),
        (false, true) => (i, j, RelationKind::Diff, false, -c),
    };
    let slot = stated.entry((p, q, kind, upper)).or_insert(if upper {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    });
    *slot = if upper {
        slot.min(bound)
    } else {
        slot.max(bound)
    };
}

/// One branch's octagon pass: encode the branch box and its octagonal
/// atoms, close, and meet the derived per-variable intervals back into
/// the interval environment. `None` when the octagon proves the branch
/// empty.
fn octagon_refine(
    param_refs: &[(&str, &ParamDef)],
    name_idx: &BTreeMap<&str, usize>,
    exprs: &[&expr::Expr],
    mut env: BTreeMap<String, Interval>,
    stated: &mut BTreeMap<StatedKey, f64>,
) -> Option<(BTreeMap<String, Interval>, Octagon)> {
    let bounds: Vec<Interval> = param_refs
        .iter()
        .map(|(n, _)| env.get(*n).copied().unwrap_or_else(Interval::top))
        .collect();
    let mut oct = Octagon::from_box(&bounds);
    for e in exprs {
        for atom in octagonal_atoms(e, name_idx, &bounds) {
            record_stated(stated, &atom);
            oct.add_atom(&atom);
        }
    }
    oct.close();
    if oct.is_empty() {
        return None;
    }
    for (k, (name, def)) in param_refs.iter().enumerate() {
        if let Some(slot) = env.get_mut(*name) {
            let refined = snap(def, slot.meet(&oct.var_interval(k)));
            if refined.is_empty_range() {
                return None;
            }
            *slot = refined;
        }
    }
    Some((env, oct))
}

/// Relative tolerance for "strictly tighter" comparisons between derived
/// and implied bounds (absorbs the outward soundness slack).
fn rel_tol(x: f64) -> f64 {
    1e-9 * x.abs().max(1.0)
}

/// Extract the pair relations of the joined octagon that are strictly
/// tighter than the contracted per-variable boxes imply.
fn build_relations(
    oct: &Octagon,
    params: &[ParamInterval],
    stated: &BTreeMap<StatedKey, f64>,
) -> Vec<Relation> {
    let mut out = Vec::new();
    let n = params.len().min(oct.vars());
    for p in 0..n {
        for q in (p + 1)..n {
            let (bp, bq) = (&params[p].contracted, &params[q].contracted);
            if bp.is_empty_range() || bq.is_empty_range() {
                continue;
            }
            let mut push = |kind: RelationKind, upper: bool, bound: f64, implied: f64| {
                if !bound.is_finite() {
                    return;
                }
                let tighter_than_implied = if upper {
                    bound < implied - rel_tol(implied)
                } else {
                    bound > implied + rel_tol(implied)
                };
                if !tighter_than_implied {
                    return;
                }
                let inferred = match stated.get(&(p, q, kind, upper)) {
                    Some(s) if upper => bound < s - rel_tol(*s),
                    Some(s) => bound > s + rel_tol(*s),
                    None => true,
                };
                out.push(Relation {
                    a: params[p].name.clone(),
                    b: params[q].name.clone(),
                    kind,
                    upper,
                    bound,
                    inferred,
                });
            };
            let sum = oct.sum_bound(p, q);
            push(RelationKind::Sum, true, sum.hi, bp.hi + bq.hi);
            push(RelationKind::Sum, false, sum.lo, bp.lo + bq.lo);
            let diff = oct.diff_bound(p, q);
            push(RelationKind::Diff, true, diff.hi, bp.hi - bq.lo);
            push(RelationKind::Diff, false, diff.lo, bp.lo - bq.hi);
        }
    }
    out
}

/// Probes drawn by [`analyze_space`]'s Monte-Carlo cross-check.
pub const MC_PROBES: u64 = 4096;

/// The SplitMix64 step — a tiny, seedable, allocation-free generator so
/// the probe stream needs no RNG dependency and is identical on every run.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One uniform representable value of `def` from a `[0, 1)` draw,
/// mirroring `ParamDef::decode`'s equal-bin treatment of discrete domains.
fn sample_def(def: &ParamDef, u: f64) -> f64 {
    match def {
        ParamDef::Real { lo, hi } => lo + u * (hi - lo),
        ParamDef::Integer { lo, hi } => {
            let n = (hi - lo + 1) as f64;
            *lo as f64 + (u * n).floor().min(n - 1.0)
        }
        ParamDef::Ordinal { values } => {
            let n = values.len() as f64;
            values
                .get((u * n).floor().min(n - 1.0).max(0.0) as usize)
                .copied()
                .unwrap_or(0.0)
        }
        ParamDef::Categorical { options } => {
            let n = options.len().max(1) as f64;
            (u * n).floor().min(n - 1.0)
        }
    }
}

/// Fixed-seed Monte-Carlo estimate of the fraction of the declared box
/// satisfying every constraint in `exprs`. Deterministic — the probe
/// stream is a constant SplitMix64 sequence — and exact in its counting: a
/// probe is a point environment, so interval evaluation degenerates to
/// ordinary arithmetic (NaN counts as unsatisfied, matching the runtime
/// rejection test).
fn mc_feasible_fraction(
    params: &[(&str, &ParamDef)],
    exprs: &[&expr::Expr],
    probes: u64,
) -> McFeasibility {
    let mut state: u64 = 0x5EED_CE75_F3A5_1B0E;
    let mut env: std::collections::BTreeMap<String, Interval> = std::collections::BTreeMap::new();
    let mut hits = 0u64;
    for _ in 0..probes {
        for (name, def) in params {
            let u = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            env.insert((*name).to_string(), Interval::point(sample_def(def, u)));
        }
        let ok = exprs.iter().all(|e| {
            let v = eval_expr(e, &env);
            !v.maybe_nan && !v.can_be_zero() && !v.is_empty_range()
        });
        hits += ok as u64;
    }
    let (ci_lo, ci_hi) = wilson_interval(hits, probes, 1.96);
    McFeasibility {
        probes,
        hits,
        estimate: hits as f64 / probes.max(1) as f64,
        ci_lo,
        ci_hi,
    }
}

/// The Wilson score interval for a binomial proportion: `hits` successes
/// out of `n` trials at normal quantile `z` (1.96 ≈ 95 %).
///
/// Unlike the naive normal approximation `p̂ ± z √(p̂(1−p̂)/n)`, the Wilson
/// interval stays inside `[0, 1]` and keeps honest coverage at the extreme
/// proportions the `A003` thrash gate cares about (zero observed hits
/// still yields a strictly positive upper bound ≈ `z²/(n+z²)`).
pub fn wilson_interval(hits: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let p = hits as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Mirror of the `S003` membership test: does `default` live inside
/// `def`? Used to refuse a rewrite that would orphan a declared default
/// (a default may sit inside the declared domain yet violate a
/// constraint, in which case the contracted domain excludes it).
fn default_fits(def: &ParamDef, default: f64) -> bool {
    use cets_space::ParamValue;
    if !default.is_finite() {
        return true; // N002 territory; not ours to worsen
    }
    let value = match def {
        ParamDef::Real { .. } | ParamDef::Ordinal { .. } => ParamValue::Real(default),
        ParamDef::Integer { .. } => ParamValue::Int(default.round() as i64),
        ParamDef::Categorical { .. } => ParamValue::Index(default.round().max(0.0) as usize),
    };
    def.contains(&value)
}

/// A copy of `bundle` with every tightened domain applied — what
/// `cets analyze --contract` re-lints and what the methodology's
/// `contract_bounds` pre-pass builds its narrowed space from.
///
/// A parameter keeps its declared domain when the tightened one would
/// exclude its declared default: the contraction proved the default
/// violates a constraint, and silently moving the baseline is worse than
/// leaving the bound loose.
pub fn apply_contraction(bundle: &PlanBundle, analysis: &SpaceAnalysis) -> PlanBundle {
    let mut out = bundle.clone();
    if !analysis.analyzed || analysis.proved_empty {
        return out;
    }
    for p in &mut out.params {
        if let Some(t) = analysis.tightened_def(&p.name) {
            if p.default.is_none_or(|d| default_fits(t, d)) {
                p.def = t.clone();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};

    fn param(name: &str, def: ParamDef) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def,
            default: None,
        }
    }

    fn constraint(name: &str, expr: &str) -> ConstraintSpec {
        ConstraintSpec {
            name: name.into(),
            expr: expr.into(),
        }
    }

    fn bundle(params: Vec<ParamSpec>, constraints: Vec<ConstraintSpec>) -> PlanBundle {
        PlanBundle {
            params,
            constraints,
            ..Default::default()
        }
    }

    #[test]
    fn classifies_unsat_tautology_contingent() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 1, hi: 8 })],
            vec![
                constraint("dead", "a > 100"),
                constraint("trivial", "a >= 0"),
                constraint("real", "a <= 4"),
            ],
        );
        let s = analyze_space(&b);
        assert!(s.analyzed);
        assert_eq!(s.constraints[0].class, ConstraintClass::ProvedUnsat);
        assert_eq!(s.constraints[1].class, ConstraintClass::Tautology);
        assert_eq!(s.constraints[2].class, ConstraintClass::Contingent);
        assert!(s.proved_empty, "an unsat constraint kills the plan");
        assert_eq!(s.feasible_fraction, 0.0);
    }

    #[test]
    fn contraction_and_fraction() {
        let b = bundle(
            vec![
                param("a", ParamDef::Integer { lo: 0, hi: 99 }),
                param("r", ParamDef::Real { lo: 0.0, hi: 10.0 }),
            ],
            vec![constraint("cap", "a <= 24"), constraint("rcap", "r <= 5")],
        );
        let s = analyze_space(&b);
        assert!(!s.proved_empty);
        assert!(s.converged);
        let a = &s.params[0];
        assert_eq!((a.contracted.lo, a.contracted.hi), (0.0, 24.0));
        assert!(a.narrowed());
        assert_eq!(a.tightened, Some(ParamDef::Integer { lo: 0, hi: 24 }));
        // fraction = 25/100 * (5+slack)/10 ≈ 0.125
        assert!(
            (s.feasible_fraction - 0.125).abs() < 1e-3,
            "{}",
            s.feasible_fraction
        );
    }

    #[test]
    fn skips_malformed_bundles() {
        let b = bundle(
            vec![
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
            ],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "duplicate params: S001 territory"
        );
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 1.0, hi: 0.0 })],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "invalid domain: S002 territory"
        );
    }

    #[test]
    fn skips_unparseable_and_unknown_constraints() {
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 0.0, hi: 1.0 })],
            vec![
                constraint("garbage", "?!?"),
                constraint("foreign", "zz <= 1"),
                constraint("fine", "a <= 2"),
            ],
        );
        let s = analyze_space(&b);
        assert_eq!(s.skipped_constraints, 2);
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn categorical_prefix_rewritten_holes_kept_unsliced() {
        // `impl <= 1` kills a suffix: the survivors {0, 1} are a prefix,
        // so the option list is sliced without renumbering anything.
        let b = bundle(
            vec![param(
                "impl",
                ParamDef::Categorical {
                    options: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                },
            )],
            vec![constraint("cap", "impl <= 1")],
        );
        let s = analyze_space(&b);
        let p = &s.params[0];
        assert!(p.narrowed(), "index interval narrows");
        assert_eq!(p.kept.as_deref(), Some(&[0usize, 1][..]));
        assert_eq!(
            p.tightened,
            Some(ParamDef::Categorical {
                options: vec!["a".into(), "b".into()],
            })
        );
        assert!((s.feasible_fraction - 0.5).abs() < 1e-9);

        // `impl != 1` punches a hole: slicing would renumber `c`/`d`,
        // so the finite-set fact is reported but the def is untouched.
        let b = bundle(
            vec![param(
                "impl",
                ParamDef::Categorical {
                    options: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                },
            )],
            vec![constraint("hole", "impl != 1")],
        );
        let s = analyze_space(&b);
        let p = &s.params[0];
        assert_eq!(p.kept.as_deref(), Some(&[0usize, 2, 3][..]));
        assert!(p.tightened.is_none(), "holes never slice the option list");
        assert!((s.feasible_fraction - 0.75).abs() < 1e-9, "3 of 4 options");
    }

    #[test]
    fn apply_contraction_rewrites_defs() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 99 })],
            vec![constraint("cap", "a <= 9")],
        );
        let s = analyze_space(&b);
        let nb = apply_contraction(&b, &s);
        assert_eq!(nb.params[0].def, ParamDef::Integer { lo: 0, hi: 9 });
        // Re-analysis of the contracted bundle finds nothing to narrow:
        // the cap is now tautological.
        let s2 = analyze_space(&nb);
        assert!(!s2.any_narrowed());
        assert_eq!(s2.constraints[0].class, ConstraintClass::Tautology);
    }

    #[test]
    fn empty_bundle_is_trivially_full() {
        let s = analyze_space(&PlanBundle::default());
        assert!(s.analyzed);
        assert!(!s.proved_empty);
        assert_eq!(s.feasible_fraction, 1.0);
        assert!(s.converged);
        assert!(s.mc_feasible.is_none(), "nothing to probe");
    }

    #[test]
    fn wilson_interval_known_values() {
        // Zero successes: lower bound 0, upper ≈ z²/(n+z²).
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        let expect_hi = 1.96_f64.powi(2) / (100.0 + 1.96_f64.powi(2));
        assert!((hi - expect_hi).abs() < 1e-12, "{hi} vs {expect_hi}");
        // All successes mirrors it.
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!((hi - 1.0).abs() < 1e-12, "{hi}");
        assert!((lo - (1.0 - expect_hi)).abs() < 1e-12);
        // Half-and-half: symmetric around 0.5, inside (0, 1).
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(((lo + hi) / 2.0 - 0.5).abs() < 1e-12);
        assert!(lo > 0.4 && hi < 0.6);
        // Degenerate trial count: the vacuous interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn wilson_tightens_with_more_trials() {
        let w = |n| {
            let (lo, hi) = wilson_interval(n / 2, n, 1.96);
            hi - lo
        };
        assert!(w(1000) < w(100) && w(100) < w(10));
    }

    #[test]
    fn mc_estimate_matches_known_fraction() {
        // a <= 24 over {0..99}: exactly 25 % feasible.
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 99 })],
            vec![constraint("cap", "a <= 24")],
        );
        let s = analyze_space(&b);
        let mc = s.mc_feasible.expect("probed");
        assert_eq!(mc.probes, MC_PROBES);
        assert!(
            (mc.estimate - 0.25).abs() < 0.03,
            "estimate {} too far from 0.25",
            mc.estimate
        );
        assert!(mc.ci_lo < 0.25 && 0.25 < mc.ci_hi, "{mc:?}");
        // Deterministic: same bundle, same counts.
        let again = analyze_space(&b).mc_feasible.expect("probed");
        assert_eq!(mc, again);
    }

    #[test]
    fn disjunctive_branching_recovers_slabs() {
        // `a <= 1 || a >= 9` over {0..10}: the hull is vacuous, the slab
        // union is the point. 4 of 11 values are feasible.
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 10 })],
            vec![constraint("gap", "a <= 1 || a >= 9")],
        );
        let s = analyze_space(&b);
        assert_eq!(s.domain, Domain::Product);
        assert_eq!(s.split_branches, 2);
        assert!(!s.split_capped);
        let a = &s.params[0];
        assert_eq!((a.contracted.lo, a.contracted.hi), (0.0, 10.0), "hull");
        assert_eq!(a.slabs.len(), 2, "{:?}", a.slabs);
        assert_eq!((a.slabs[0].lo, a.slabs[0].hi), (0.0, 1.0));
        assert_eq!((a.slabs[1].lo, a.slabs[1].hi), (9.0, 10.0));
        assert!(
            (s.feasible_fraction - 4.0 / 11.0).abs() < 1e-9,
            "{}",
            s.feasible_fraction
        );
        // The interval domain keeps the vacuous single slab.
        let si = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Interval,
                ..Default::default()
            },
        );
        assert_eq!(si.params[0].slabs.len(), 1);
        assert!((si.feasible_fraction - 1.0).abs() < 1e-9);
        assert!(si.relations.is_empty());
    }

    #[test]
    fn product_reports_stride_and_counts_congruent_points() {
        // `n % 256 == 0` over [1, 100000]: the grid has 390 members and
        // the bounds snap to the outermost multiples.
        let b = bundle(
            vec![param("n", ParamDef::Integer { lo: 1, hi: 100_000 })],
            vec![constraint("blk", "n % 256 == 0")],
        );
        let s = analyze_space(&b);
        let n = &s.params[0];
        assert_eq!(n.stride, Some((256, 0)));
        assert_eq!((n.contracted.lo, n.contracted.hi), (256.0, 99_840.0));
        assert_eq!(
            n.tightened,
            Some(ParamDef::Integer {
                lo: 256,
                hi: 99_840,
            })
        );
        assert!(
            (s.feasible_fraction - 390.0 / 100_000.0).abs() < 1e-9,
            "{}",
            s.feasible_fraction
        );
        // The non-product domains see no stride and keep the full box.
        let so = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Octagon,
                ..Default::default()
            },
        );
        assert_eq!(so.params[0].stride, None);
    }

    #[test]
    fn product_proves_congruence_emptiness() {
        // n ≡ 1 (mod 6) forces n odd while n ≡ 0 (mod 4) forces n even:
        // the CRT meet is ⊥. Interval iteration shaves ~12 units per
        // round and gives up at ITER_CAP on a 10^9 box; the octagon adds
        // nothing relational. Only the congruence meet sees it.
        let b = bundle(
            vec![param(
                "n",
                ParamDef::Integer {
                    lo: 0,
                    hi: 1_000_000_000,
                },
            )],
            vec![
                constraint("six", "n % 6 == 1"),
                constraint("four", "n % 4 == 0"),
            ],
        );
        let s = analyze_space(&b);
        assert!(s.proved_empty);
        assert_eq!(s.feasible_fraction, 0.0);
        let so = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Octagon,
                ..Default::default()
            },
        );
        assert!(!so.proved_empty, "octagon alone cannot prove this");
    }

    #[test]
    fn finite_set_prunes_ordinal_values_on_divisor_link() {
        // `n % nb == 0` with n pinned: only divisors of n survive in nb.
        let b = bundle(
            vec![
                param("n", ParamDef::Integer { lo: 768, hi: 768 }),
                param(
                    "nb",
                    ParamDef::Ordinal {
                        values: vec![96.0, 128.0, 144.0, 192.0, 256.0],
                    },
                ),
            ],
            vec![constraint("blk", "n % nb == 0")],
        );
        let s = analyze_space(&b);
        let nb = &s.params[1];
        // 768 = 2^8 * 3: 96, 128, 192, 256 divide it; 144 does not.
        assert_eq!(nb.kept.as_deref(), Some(&[0usize, 1, 3, 4][..]));
        assert_eq!(
            nb.tightened,
            Some(ParamDef::Ordinal {
                values: vec![96.0, 128.0, 192.0, 256.0],
            })
        );
    }

    #[test]
    fn octagon_tightens_per_var_beyond_interval() {
        // a + b <= 10 and a - b <= 2 imply a <= 6; HC4 stops at a <= 10.
        let b = bundle(
            vec![
                param("a", ParamDef::Integer { lo: 0, hi: 100 }),
                param("b", ParamDef::Integer { lo: 0, hi: 100 }),
            ],
            vec![
                constraint("sum", "a + b <= 10"),
                constraint("diff", "a - b <= 2"),
            ],
        );
        let s = analyze_space(&b);
        assert_eq!(s.params[0].contracted.hi, 6.0, "octagon closure");
        let si = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Interval,
                ..Default::default()
            },
        );
        assert_eq!(si.params[0].contracted.hi, 10.0, "interval hull");
    }

    #[test]
    fn octagon_proves_joint_emptiness_interval_cannot() {
        // x - y <= -10 and y - x <= -10: a negative cycle. The interval
        // fixpoint shrinks the box 20 units per pass and gives up at
        // ITER_CAP; the octagon closure detects it instantly.
        let b = bundle(
            vec![
                param(
                    "x",
                    ParamDef::Integer {
                        lo: 0,
                        hi: 1_000_000_000,
                    },
                ),
                param(
                    "y",
                    ParamDef::Integer {
                        lo: 0,
                        hi: 1_000_000_000,
                    },
                ),
            ],
            vec![
                constraint("fwd", "x - y <= -10"),
                constraint("bwd", "y - x <= -10"),
            ],
        );
        let s = analyze_space(&b);
        assert!(s.proved_empty, "octagon proves the negative cycle");
        assert_eq!(s.feasible_fraction, 0.0);
        let si = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Interval,
                ..Default::default()
            },
        );
        assert!(!si.proved_empty, "interval domain cannot prove this");
    }

    #[test]
    fn x_minus_x_regression() {
        // The motivating unsoundness-adjacent weakness: intervals forget
        // that both `a`s are the same variable, so `a - a` evaluates to
        // the hull [-w, w] and `a - a >= 1` stays contingent. (On a small
        // box HC4 happens to grind the hull empty one unit per pass; the
        // wide box here defeats that, which is exactly the failure mode.)
        // The octagon domain normalises the constraint to `0 >= 1` and
        // kills it regardless of box width.
        let b = bundle(
            vec![param(
                "a",
                ParamDef::Integer {
                    lo: 0,
                    hi: 1_000_000,
                },
            )],
            vec![constraint("impossible", "a - a >= 1")],
        );
        let s = analyze_space(&b);
        assert!(s.proved_empty, "octagon: a - a is exactly [0, 0]");
        let si = analyze_space_with(
            &b,
            &AnalysisOptions {
                domain: Domain::Interval,
                ..Default::default()
            },
        );
        assert!(
            !si.proved_empty,
            "interval hull: a - a in [-100, 100], still contingent"
        );
        // Forward classification documents the hull behaviour.
        assert_eq!(si.constraints[0].class, ConstraintClass::Contingent);
    }

    #[test]
    fn product_relaxation_yields_inferred_relation() {
        // The exemplar residency shape: g1 * zc <= 16384 over [32,1024]^2
        // contracts both vars to [32, 512] (exact projection) and infers
        // g1 + zc <= 544 — strictly below the box-implied 1024.
        let b = bundle(
            vec![
                param("g1", ParamDef::Integer { lo: 32, hi: 1024 }),
                param("zc", ParamDef::Integer { lo: 32, hi: 1024 }),
            ],
            vec![constraint("residency", "g1 * zc <= 16384")],
        );
        let s = analyze_space(&b);
        assert_eq!(s.params[0].contracted.hi, 512.0);
        assert_eq!(s.params[1].contracted.hi, 512.0);
        let rel = s
            .relations
            .iter()
            .find(|r| r.kind == RelationKind::Sum && r.upper)
            .expect("sum relation present");
        assert!(
            (rel.bound - 544.0).abs() < 1e-6,
            "relational bound {} != 544",
            rel.bound
        );
        assert!(rel.inferred, "the relaxation is inferred, not restated");
        assert!(rel.to_string().contains("<="), "{rel}");
    }

    #[test]
    fn restated_linear_relation_is_not_inferred() {
        // `a + b <= 10` is already octagonal: the joined octagon carries
        // it (tighter than the box-implied 20) but it is a restatement,
        // so A006 must not fire on it.
        let b = bundle(
            vec![
                param("a", ParamDef::Integer { lo: 0, hi: 10 }),
                param("b", ParamDef::Integer { lo: 0, hi: 10 }),
            ],
            vec![constraint("budget", "a + b <= 10")],
        );
        let s = analyze_space(&b);
        let rel = s
            .relations
            .iter()
            .find(|r| r.kind == RelationKind::Sum && r.upper)
            .expect("sum relation recorded");
        assert!(!rel.inferred, "restated bound must not count as inferred");
    }

    #[test]
    fn mc_skipped_when_proved_empty() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 1, hi: 8 })],
            vec![constraint("dead", "a > 100")],
        );
        assert!(analyze_space(&b).mc_feasible.is_none());
    }
}
