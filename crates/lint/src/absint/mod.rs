//! Abstract-interpretation feasibility engine.
//!
//! The paper's Step 1 constrains the search space with domain knowledge
//! *before* spending any compute budget. This module answers the semantic
//! questions the structural linter cannot: is the constrained space
//! actually non-empty, which constraints are dead weight, and how much can
//! the box bounds be tightened statically?
//!
//! Three layers:
//!
//! * [`interval`] — the interval domain with NaN-poisoning;
//! * [`mod@contract`] — forward evaluation over [`crate::expr::Expr`] and
//!   HC4-revise backward bound contraction to a fixpoint;
//! * this module — the [`analyze_space`] driver that classifies every
//!   constraint (*proved-unsat* / *tautological* / *contingent*), runs the
//!   contraction, estimates the feasible fraction of the box, and derives
//!   tightened [`ParamDef`]s for the `--contract` rewriting and the
//!   `cets-core` pre-pass.
//!
//! The findings surface as diagnostics `A001`–`A005` via
//! [`crate::rules::feasibility`] and the `cets analyze` subcommand.

pub mod contract;
pub mod interval;

pub use contract::{
    contract, eval_expr, initial_interval, snap, Contraction, CONVERGENCE_EPS, ITER_CAP,
};
pub use interval::Interval;

use crate::bundle::PlanBundle;
use crate::expr;
use cets_space::ParamDef;
use std::collections::BTreeSet;

/// Forward classification of one constraint over the original box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintClass {
    /// No point of the box satisfies it: the plan is dead on arrival.
    ProvedUnsat,
    /// Every point of the box satisfies it: the constraint is dead weight.
    Tautology,
    /// Satisfied by some points and not others (the interesting case).
    Contingent,
}

impl ConstraintClass {
    /// Human label used in diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ConstraintClass::ProvedUnsat => "proved-unsat",
            ConstraintClass::Tautology => "tautological",
            ConstraintClass::Contingent => "contingent",
        }
    }
}

/// Per-parameter outcome of the contraction.
#[derive(Debug, Clone)]
pub struct ParamInterval {
    /// Parameter name.
    pub name: String,
    /// Interval spanned by the declared domain.
    pub original: Interval,
    /// Interval after backward contraction (always ⊆ `original`).
    pub contracted: Interval,
    /// A tightened domain definition, when the contraction strictly
    /// narrowed this parameter *and* the narrowing is expressible
    /// (categorical domains are never rewritten — slicing the option list
    /// would renumber the indices constraints refer to; degenerate real
    /// intervals cannot form a valid `Real` domain).
    pub tightened: Option<ParamDef>,
}

impl ParamInterval {
    /// Did contraction strictly shrink this parameter's interval?
    pub fn narrowed(&self) -> bool {
        !self.contracted.is_empty_range()
            && (self.contracted.lo > self.original.lo || self.contracted.hi < self.original.hi)
    }
}

/// Per-constraint outcome.
#[derive(Debug, Clone)]
pub struct ConstraintAnalysis {
    /// Constraint name.
    pub name: String,
    /// Forward classification over the original box.
    pub class: ConstraintClass,
    /// Forward value interval over the original box.
    pub value: Interval,
}

/// Deterministic Monte-Carlo cross-check of the feasible fraction.
///
/// The interval product [`SpaceAnalysis::feasible_fraction`] is a sound
/// *upper bound* per axis but forgets correlations between constraints; a
/// few thousand fixed-seed probes give an unbiased point estimate with a
/// quantified uncertainty. The [`wilson_interval`] bounds are what the
/// `A003` diagnostic reports, so a CI gate near the threshold can judge
/// whether the estimate is precise enough to act on rather than flapping
/// on a bare point value. Probing is seeded with a constant
/// ([SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream), so the
/// estimate is a pure function of the bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McFeasibility {
    /// Number of uniform probes drawn from the declared box.
    pub probes: u64,
    /// Probes satisfying every analyzable constraint.
    pub hits: u64,
    /// Point estimate `hits / probes`.
    pub estimate: f64,
    /// Lower 95 % Wilson bound.
    pub ci_lo: f64,
    /// Upper 95 % Wilson bound.
    pub ci_hi: f64,
}

/// The full result of [`analyze_space`].
#[derive(Debug, Clone)]
pub struct SpaceAnalysis {
    /// False when the bundle is in `S001`/`S002` error territory
    /// (duplicate parameters or invalid domains): interval analysis over
    /// a malformed box would be meaningless, so everything else is empty.
    pub analyzed: bool,
    /// Per-parameter intervals, in declaration order.
    pub params: Vec<ParamInterval>,
    /// Per-constraint classification, in declaration order (only
    /// constraints that parse and reference declared parameters).
    pub constraints: Vec<ConstraintAnalysis>,
    /// Constraints skipped as unparseable or with unknown references
    /// (those belong to `S004`/`S005`).
    pub skipped_constraints: usize,
    /// The constraint conjunction has no satisfying point in the box.
    pub proved_empty: bool,
    /// Fixpoint passes executed by the contraction.
    pub iterations: usize,
    /// Did the contraction converge before [`ITER_CAP`]?
    pub converged: bool,
    /// Contracted box volume / original box volume (product of per-axis
    /// measure ratios; `0` when proved empty, `1` with no contraction).
    /// A tiny value predicts rejection-sampling thrash.
    pub feasible_fraction: f64,
    /// Fixed-seed Monte-Carlo estimate of the feasible fraction with its
    /// Wilson confidence interval; `None` when there is no analyzable
    /// constraint to probe (the fraction is then exactly `1`) or the box
    /// is proved empty (exactly `0`).
    pub mc_feasible: Option<McFeasibility>,
}

impl SpaceAnalysis {
    /// The tightened domain of `name`, when contraction narrowed it.
    pub fn tightened_def(&self, name: &str) -> Option<&ParamDef> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.tightened.as_ref())
    }

    /// Any parameter strictly narrowed?
    pub fn any_narrowed(&self) -> bool {
        self.params.iter().any(|p| p.narrowed())
    }
}

/// Measure of a snapped interval under a domain: width for reals, value
/// count for discrete domains. Used for the feasible-fraction estimate.
fn measure(def: &ParamDef, iv: &Interval) -> f64 {
    if iv.is_empty_range() {
        return 0.0;
    }
    match def {
        ParamDef::Real { .. } => iv.width(),
        ParamDef::Integer { .. } | ParamDef::Categorical { .. } => {
            (iv.hi.floor() - iv.lo.ceil() + 1.0).max(0.0)
        }
        ParamDef::Ordinal { values } => values.iter().filter(|v| iv.contains(**v)).count() as f64,
    }
}

/// Derive a tightened [`ParamDef`] from a contracted interval, when the
/// narrowing is expressible. See [`ParamInterval::tightened`].
fn tightened_def(def: &ParamDef, contracted: &Interval) -> Option<ParamDef> {
    if contracted.is_empty_range() {
        return None;
    }
    match def {
        ParamDef::Real { .. } => {
            if contracted.lo < contracted.hi
                && contracted.lo.is_finite()
                && contracted.hi.is_finite()
            {
                Some(ParamDef::Real {
                    lo: contracted.lo,
                    hi: contracted.hi,
                })
            } else {
                None // degenerate: a point is not a valid Real domain
            }
        }
        ParamDef::Integer { .. } => Some(ParamDef::Integer {
            lo: contracted.lo as i64,
            hi: contracted.hi as i64,
        }),
        ParamDef::Ordinal { values } => {
            let kept: Vec<f64> = values
                .iter()
                .copied()
                .filter(|v| contracted.contains(*v))
                .collect();
            if kept.is_empty() {
                None
            } else {
                Some(ParamDef::Ordinal { values: kept })
            }
        }
        // Slicing the option list would renumber indices that constraints
        // refer to; categorical domains keep their declared definition.
        ParamDef::Categorical { .. } => None,
    }
}

/// Run the feasibility analysis over a bundle: classify every analyzable
/// constraint forward, contract the box backward, and estimate the
/// feasible fraction. Total and deterministic; does no I/O.
pub fn analyze_space(bundle: &PlanBundle) -> SpaceAnalysis {
    let mut out = SpaceAnalysis {
        analyzed: true,
        params: Vec::new(),
        constraints: Vec::new(),
        skipped_constraints: 0,
        proved_empty: false,
        iterations: 0,
        converged: true,
        feasible_fraction: 1.0,
        mc_feasible: None,
    };

    // Bail out of S001/S002 territory: duplicate names or invalid domains
    // make the box meaningless.
    let mut seen = BTreeSet::new();
    for p in &bundle.params {
        if !seen.insert(p.name.as_str()) || initial_interval(&p.def).is_none() {
            out.analyzed = false;
            return out;
        }
    }

    // Parse what we can; unknown references belong to S005, parse
    // failures to nobody (the linter only reasons about what it
    // understands).
    let mut exprs: Vec<(&str, expr::Expr)> = Vec::new();
    for c in &bundle.constraints {
        match expr::parse(&c.expr) {
            Ok(e) if e.vars().iter().all(|v| bundle.has_param(v)) => {
                exprs.push((c.name.as_str(), e));
            }
            _ => out.skipped_constraints += 1,
        }
    }

    // Initial box.
    let param_refs: Vec<(&str, &ParamDef)> = bundle
        .params
        .iter()
        .map(|p| (p.name.as_str(), &p.def))
        .collect();
    let initial: Vec<Interval> = bundle
        .params
        .iter()
        .map(|p| initial_interval(&p.def).unwrap_or_else(Interval::top))
        .collect();

    // Forward classification over the original box.
    let env0: std::collections::BTreeMap<String, Interval> = bundle
        .params
        .iter()
        .zip(&initial)
        .map(|(p, iv)| (p.name.clone(), *iv))
        .collect();
    let mut any_unsat = false;
    for (name, e) in &exprs {
        let v = eval_expr(e, &env0);
        let class = if !v.can_be_nonzero_real() {
            any_unsat = true;
            ConstraintClass::ProvedUnsat
        } else if !v.maybe_nan && !v.can_be_zero() {
            ConstraintClass::Tautology
        } else {
            ConstraintClass::Contingent
        };
        out.constraints.push(ConstraintAnalysis {
            name: (*name).to_string(),
            class,
            value: v,
        });
    }

    // Backward contraction (an unsat constraint empties the box at once).
    let expr_refs: Vec<&expr::Expr> = exprs.iter().map(|(_, e)| e).collect();
    let c = contract(&param_refs, &expr_refs);
    out.iterations = c.iterations;
    out.converged = c.converged;
    out.proved_empty = c.proved_empty || any_unsat;

    // Per-parameter outcomes + feasible fraction.
    let mut fraction = 1.0;
    for (p, orig) in bundle.params.iter().zip(&initial) {
        let contracted = if out.proved_empty {
            Interval::bottom()
        } else {
            c.env.get(&p.name).copied().unwrap_or(*orig)
        };
        let m_orig = measure(&p.def, orig);
        let m_new = measure(&p.def, &contracted);
        if m_orig > 0.0 {
            fraction *= (m_new / m_orig).clamp(0.0, 1.0);
        } else if m_new == 0.0 {
            fraction = 0.0;
        }
        let tightened = if !out.proved_empty && (contracted.lo > orig.lo || contracted.hi < orig.hi)
        {
            tightened_def(&p.def, &contracted)
        } else {
            None
        };
        out.params.push(ParamInterval {
            name: p.name.clone(),
            original: *orig,
            contracted,
            tightened,
        });
    }
    out.feasible_fraction = if out.proved_empty { 0.0 } else { fraction };

    // Monte-Carlo cross-check: only meaningful with at least one probe-able
    // constraint and a non-empty box.
    if !out.proved_empty && !expr_refs.is_empty() {
        out.mc_feasible = Some(mc_feasible_fraction(&param_refs, &expr_refs, MC_PROBES));
    }
    out
}

/// Probes drawn by [`analyze_space`]'s Monte-Carlo cross-check.
pub const MC_PROBES: u64 = 4096;

/// The SplitMix64 step — a tiny, seedable, allocation-free generator so
/// the probe stream needs no RNG dependency and is identical on every run.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One uniform representable value of `def` from a `[0, 1)` draw,
/// mirroring `ParamDef::decode`'s equal-bin treatment of discrete domains.
fn sample_def(def: &ParamDef, u: f64) -> f64 {
    match def {
        ParamDef::Real { lo, hi } => lo + u * (hi - lo),
        ParamDef::Integer { lo, hi } => {
            let n = (hi - lo + 1) as f64;
            *lo as f64 + (u * n).floor().min(n - 1.0)
        }
        ParamDef::Ordinal { values } => {
            let n = values.len() as f64;
            values
                .get((u * n).floor().min(n - 1.0).max(0.0) as usize)
                .copied()
                .unwrap_or(0.0)
        }
        ParamDef::Categorical { options } => {
            let n = options.len().max(1) as f64;
            (u * n).floor().min(n - 1.0)
        }
    }
}

/// Fixed-seed Monte-Carlo estimate of the fraction of the declared box
/// satisfying every constraint in `exprs`. Deterministic — the probe
/// stream is a constant SplitMix64 sequence — and exact in its counting: a
/// probe is a point environment, so interval evaluation degenerates to
/// ordinary arithmetic (NaN counts as unsatisfied, matching the runtime
/// rejection test).
fn mc_feasible_fraction(
    params: &[(&str, &ParamDef)],
    exprs: &[&expr::Expr],
    probes: u64,
) -> McFeasibility {
    let mut state: u64 = 0x5EED_CE75_F3A5_1B0E;
    let mut env: std::collections::BTreeMap<String, Interval> = std::collections::BTreeMap::new();
    let mut hits = 0u64;
    for _ in 0..probes {
        for (name, def) in params {
            let u = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            env.insert((*name).to_string(), Interval::point(sample_def(def, u)));
        }
        let ok = exprs.iter().all(|e| {
            let v = eval_expr(e, &env);
            !v.maybe_nan && !v.can_be_zero() && !v.is_empty_range()
        });
        hits += ok as u64;
    }
    let (ci_lo, ci_hi) = wilson_interval(hits, probes, 1.96);
    McFeasibility {
        probes,
        hits,
        estimate: hits as f64 / probes.max(1) as f64,
        ci_lo,
        ci_hi,
    }
}

/// The Wilson score interval for a binomial proportion: `hits` successes
/// out of `n` trials at normal quantile `z` (1.96 ≈ 95 %).
///
/// Unlike the naive normal approximation `p̂ ± z √(p̂(1−p̂)/n)`, the Wilson
/// interval stays inside `[0, 1]` and keeps honest coverage at the extreme
/// proportions the `A003` thrash gate cares about (zero observed hits
/// still yields a strictly positive upper bound ≈ `z²/(n+z²)`).
pub fn wilson_interval(hits: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let p = hits as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Mirror of the `S003` membership test: does `default` live inside
/// `def`? Used to refuse a rewrite that would orphan a declared default
/// (a default may sit inside the declared domain yet violate a
/// constraint, in which case the contracted domain excludes it).
fn default_fits(def: &ParamDef, default: f64) -> bool {
    use cets_space::ParamValue;
    if !default.is_finite() {
        return true; // N002 territory; not ours to worsen
    }
    let value = match def {
        ParamDef::Real { .. } | ParamDef::Ordinal { .. } => ParamValue::Real(default),
        ParamDef::Integer { .. } => ParamValue::Int(default.round() as i64),
        ParamDef::Categorical { .. } => ParamValue::Index(default.round().max(0.0) as usize),
    };
    def.contains(&value)
}

/// A copy of `bundle` with every tightened domain applied — what
/// `cets analyze --contract` re-lints and what the methodology's
/// `contract_bounds` pre-pass builds its narrowed space from.
///
/// A parameter keeps its declared domain when the tightened one would
/// exclude its declared default: the contraction proved the default
/// violates a constraint, and silently moving the baseline is worse than
/// leaving the bound loose.
pub fn apply_contraction(bundle: &PlanBundle, analysis: &SpaceAnalysis) -> PlanBundle {
    let mut out = bundle.clone();
    if !analysis.analyzed || analysis.proved_empty {
        return out;
    }
    for p in &mut out.params {
        if let Some(t) = analysis.tightened_def(&p.name) {
            if p.default.is_none_or(|d| default_fits(t, d)) {
                p.def = t.clone();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};

    fn param(name: &str, def: ParamDef) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            def,
            default: None,
        }
    }

    fn constraint(name: &str, expr: &str) -> ConstraintSpec {
        ConstraintSpec {
            name: name.into(),
            expr: expr.into(),
        }
    }

    fn bundle(params: Vec<ParamSpec>, constraints: Vec<ConstraintSpec>) -> PlanBundle {
        PlanBundle {
            params,
            constraints,
            ..Default::default()
        }
    }

    #[test]
    fn classifies_unsat_tautology_contingent() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 1, hi: 8 })],
            vec![
                constraint("dead", "a > 100"),
                constraint("trivial", "a >= 0"),
                constraint("real", "a <= 4"),
            ],
        );
        let s = analyze_space(&b);
        assert!(s.analyzed);
        assert_eq!(s.constraints[0].class, ConstraintClass::ProvedUnsat);
        assert_eq!(s.constraints[1].class, ConstraintClass::Tautology);
        assert_eq!(s.constraints[2].class, ConstraintClass::Contingent);
        assert!(s.proved_empty, "an unsat constraint kills the plan");
        assert_eq!(s.feasible_fraction, 0.0);
    }

    #[test]
    fn contraction_and_fraction() {
        let b = bundle(
            vec![
                param("a", ParamDef::Integer { lo: 0, hi: 99 }),
                param("r", ParamDef::Real { lo: 0.0, hi: 10.0 }),
            ],
            vec![constraint("cap", "a <= 24"), constraint("rcap", "r <= 5")],
        );
        let s = analyze_space(&b);
        assert!(!s.proved_empty);
        assert!(s.converged);
        let a = &s.params[0];
        assert_eq!((a.contracted.lo, a.contracted.hi), (0.0, 24.0));
        assert!(a.narrowed());
        assert_eq!(a.tightened, Some(ParamDef::Integer { lo: 0, hi: 24 }));
        // fraction = 25/100 * (5+slack)/10 ≈ 0.125
        assert!(
            (s.feasible_fraction - 0.125).abs() < 1e-3,
            "{}",
            s.feasible_fraction
        );
    }

    #[test]
    fn skips_malformed_bundles() {
        let b = bundle(
            vec![
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
                param("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
            ],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "duplicate params: S001 territory"
        );
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 1.0, hi: 0.0 })],
            vec![],
        );
        assert!(
            !analyze_space(&b).analyzed,
            "invalid domain: S002 territory"
        );
    }

    #[test]
    fn skips_unparseable_and_unknown_constraints() {
        let b = bundle(
            vec![param("a", ParamDef::Real { lo: 0.0, hi: 1.0 })],
            vec![
                constraint("garbage", "?!?"),
                constraint("foreign", "zz <= 1"),
                constraint("fine", "a <= 2"),
            ],
        );
        let s = analyze_space(&b);
        assert_eq!(s.skipped_constraints, 2);
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn categorical_not_rewritten() {
        let b = bundle(
            vec![param(
                "impl",
                ParamDef::Categorical {
                    options: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                },
            )],
            vec![constraint("cap", "impl <= 1")],
        );
        let s = analyze_space(&b);
        let p = &s.params[0];
        assert!(p.narrowed(), "index interval narrows");
        assert!(p.tightened.is_none(), "but the option list is never sliced");
        assert!((s.feasible_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn apply_contraction_rewrites_defs() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 99 })],
            vec![constraint("cap", "a <= 9")],
        );
        let s = analyze_space(&b);
        let nb = apply_contraction(&b, &s);
        assert_eq!(nb.params[0].def, ParamDef::Integer { lo: 0, hi: 9 });
        // Re-analysis of the contracted bundle finds nothing to narrow:
        // the cap is now tautological.
        let s2 = analyze_space(&nb);
        assert!(!s2.any_narrowed());
        assert_eq!(s2.constraints[0].class, ConstraintClass::Tautology);
    }

    #[test]
    fn empty_bundle_is_trivially_full() {
        let s = analyze_space(&PlanBundle::default());
        assert!(s.analyzed);
        assert!(!s.proved_empty);
        assert_eq!(s.feasible_fraction, 1.0);
        assert!(s.converged);
        assert!(s.mc_feasible.is_none(), "nothing to probe");
    }

    #[test]
    fn wilson_interval_known_values() {
        // Zero successes: lower bound 0, upper ≈ z²/(n+z²).
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        let expect_hi = 1.96_f64.powi(2) / (100.0 + 1.96_f64.powi(2));
        assert!((hi - expect_hi).abs() < 1e-12, "{hi} vs {expect_hi}");
        // All successes mirrors it.
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!((hi - 1.0).abs() < 1e-12, "{hi}");
        assert!((lo - (1.0 - expect_hi)).abs() < 1e-12);
        // Half-and-half: symmetric around 0.5, inside (0, 1).
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(((lo + hi) / 2.0 - 0.5).abs() < 1e-12);
        assert!(lo > 0.4 && hi < 0.6);
        // Degenerate trial count: the vacuous interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn wilson_tightens_with_more_trials() {
        let w = |n| {
            let (lo, hi) = wilson_interval(n / 2, n, 1.96);
            hi - lo
        };
        assert!(w(1000) < w(100) && w(100) < w(10));
    }

    #[test]
    fn mc_estimate_matches_known_fraction() {
        // a <= 24 over {0..99}: exactly 25 % feasible.
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 0, hi: 99 })],
            vec![constraint("cap", "a <= 24")],
        );
        let s = analyze_space(&b);
        let mc = s.mc_feasible.expect("probed");
        assert_eq!(mc.probes, MC_PROBES);
        assert!(
            (mc.estimate - 0.25).abs() < 0.03,
            "estimate {} too far from 0.25",
            mc.estimate
        );
        assert!(mc.ci_lo < 0.25 && 0.25 < mc.ci_hi, "{mc:?}");
        // Deterministic: same bundle, same counts.
        let again = analyze_space(&b).mc_feasible.expect("probed");
        assert_eq!(mc, again);
    }

    #[test]
    fn mc_skipped_when_proved_empty() {
        let b = bundle(
            vec![param("a", ParamDef::Integer { lo: 1, hi: 8 })],
            vec![constraint("dead", "a > 100")],
        );
        assert!(analyze_space(&b).mc_feasible.is_none());
    }
}
