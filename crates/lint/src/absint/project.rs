//! Per-constraint interval projection: the feasible interval (or slab
//! union) of one parameter *given a partial assignment of the others*.
//!
//! This is what turns rejection sampling into construction: a sampler
//! walks the parameters in order, asks the projector for the feasible
//! slabs of the next coordinate under the coordinates already fixed, and
//! draws from those slabs directly. The projector pre-splits the
//! constraint set into disjunctive branches (see [`super::split`]) and
//! pre-contracts each branch once at build time; each query then pins the
//! fixed coordinates as point intervals, re-contracts the branch, and
//! unions the per-branch results.
//!
//! Projection is an *over-approximation* (HC4 + snapping is sound, not
//! complete): every feasible value lies inside the returned slabs, but a
//! returned slab may contain infeasible points when constraints are
//! non-octagonal and deeply coupled. Constructive samplers therefore keep
//! a final concrete validity check.

use super::congruence::{self, Congruence};
use super::contract::{contract, contract_from, initial_interval, snap};
use super::interval::Interval;
use super::split::{dnf_branches, merge_slabs, SPLIT_CAP};
use crate::bundle::PlanBundle;
use crate::expr::{self, Expr};
use cets_space::ParamDef;
use std::collections::{BTreeMap, BTreeSet};

/// A pre-split, pre-contracted view of a plan's constraint system,
/// supporting conditional feasibility queries.
#[derive(Debug, Clone)]
pub struct Projector {
    defs: Vec<(String, ParamDef)>,
    branches: Vec<ProjBranch>,
    /// Constraints skipped at build time (unparseable or with unknown
    /// references); the projector is still usable, just blind to them.
    pub skipped_constraints: usize,
}

#[derive(Debug, Clone)]
struct ProjBranch {
    exprs: Vec<Expr>,
    env: BTreeMap<String, Interval>,
}

impl Projector {
    /// Build a projector from a bundle. `None` in `S001`/`S002` territory
    /// (duplicate parameter names or invalid domains), mirroring
    /// [`super::analyze_space`]'s bail-out. Unparseable or unknown-ref
    /// constraints are skipped and counted.
    pub fn from_bundle(bundle: &PlanBundle) -> Option<Projector> {
        let mut seen = BTreeSet::new();
        for p in &bundle.params {
            if !seen.insert(p.name.as_str()) || initial_interval(&p.def).is_none() {
                return None;
            }
        }
        let defs: Vec<(String, ParamDef)> = bundle
            .params
            .iter()
            .map(|p| (p.name.clone(), p.def.clone()))
            .collect();
        let mut skipped = 0usize;
        let mut exprs: Vec<Expr> = Vec::new();
        for c in &bundle.constraints {
            match expr::parse(&c.expr) {
                Ok(e) if e.vars().iter().all(|v| bundle.has_param(v)) => exprs.push(e),
                _ => skipped += 1,
            }
        }
        let expr_refs: Vec<&Expr> = exprs.iter().collect();
        let (raw_branches, _capped) = dnf_branches(&expr_refs, SPLIT_CAP);
        let param_refs: Vec<(&str, &ParamDef)> =
            defs.iter().map(|(n, d)| (n.as_str(), d)).collect();
        let mut branches = Vec::new();
        for br in raw_branches {
            let refs: Vec<&Expr> = br.iter().collect();
            let c = contract(&param_refs, &refs);
            if c.proved_empty {
                continue;
            }
            branches.push(ProjBranch {
                exprs: br,
                env: c.env,
            });
        }
        Some(Projector {
            defs,
            branches,
            skipped_constraints: skipped,
        })
    }

    /// Declared parameter names, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.iter().map(|(n, _)| n.as_str())
    }

    /// The declared domain of `name`.
    pub fn def(&self, name: &str) -> Option<&ParamDef> {
        self.defs.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Were all branches pruned at build time (the constraint system is
    /// statically empty)?
    pub fn proved_empty(&self) -> bool {
        self.branches.is_empty() && !self.defs.is_empty()
    }

    /// The feasible slabs of `var` given `fixed` (numeric values on the
    /// constraint scale: ordinals by value, categoricals by index).
    /// Sorted, disjoint, domain-snapped; empty when no branch admits the
    /// partial assignment.
    pub fn project_slabs(&self, var: &str, fixed: &BTreeMap<String, f64>) -> Vec<Interval> {
        self.project_slabs_stride(var, fixed).0
    }

    /// [`Projector::project_slabs`] plus the congruence fact the reduced
    /// product proves for `var` under the same partial assignment: `Some
    /// ((m, r))` when every feasible value of `var` is ≡ `r` (mod `m`).
    /// Pinning divisors makes this conditional — with `nb = 256` fixed,
    /// `n % nb == 0` yields stride 256 for `n`. Only `Integer`-kind
    /// parameters carry strides (the grid is about integer points).
    pub fn project_slabs_stride(
        &self,
        var: &str,
        fixed: &BTreeMap<String, f64>,
    ) -> (Vec<Interval>, Option<(u64, u64)>) {
        let Some(def) = self.def(var) else {
            return (Vec::new(), None);
        };
        let param_refs: Vec<(&str, &ParamDef)> =
            self.defs.iter().map(|(n, d)| (n.as_str(), d)).collect();
        let mut slabs = Vec::new();
        let mut cong: Option<Congruence> = None;
        for br in &self.branches {
            let mut env = br.env.clone();
            let mut feasible = true;
            for (name, value) in fixed {
                if let Some(slot) = env.get_mut(name) {
                    let pinned = slot.meet(&Interval::point(*value));
                    if pinned.is_empty_range() {
                        feasible = false;
                        break;
                    }
                    *slot = pinned;
                }
            }
            if !feasible {
                continue;
            }
            let refs: Vec<&Expr> = br.exprs.iter().collect();
            let c = contract_from(env, &param_refs, &refs);
            if c.proved_empty {
                continue;
            }
            let mut env = c.env;
            let Some(facts) = congruence::refine_branch(&param_refs, &refs, &mut env) else {
                continue; // no residue fits this branch
            };
            let branch_cong = facts.get(var).copied().unwrap_or(Congruence::Top);
            cong = Some(match cong {
                Some(acc) => acc.join(&branch_cong),
                None => branch_cong,
            });
            if let Some(iv) = env.get(var) {
                let snapped = snap(def, *iv);
                if !snapped.is_empty_range() {
                    slabs.push(snapped);
                }
            }
        }
        let stride = if matches!(def, ParamDef::Integer { .. }) {
            cong.and_then(|c| c.as_stride())
        } else {
            None
        };
        (merge_slabs(Some(def), slabs), stride)
    }

    /// The feasible interval of `var` given `fixed`: the hull of
    /// [`Projector::project_slabs`]. Bottom when nothing is feasible.
    pub fn project(&self, var: &str, fixed: &BTreeMap<String, f64>) -> Interval {
        self.project_slabs(var, fixed)
            .into_iter()
            .fold(Interval::bottom(), |acc, iv| acc.join(&iv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{ConstraintSpec, ParamSpec};

    fn bundle(params: Vec<(&str, ParamDef)>, constraints: Vec<&str>) -> PlanBundle {
        PlanBundle {
            params: params
                .into_iter()
                .map(|(n, def)| ParamSpec {
                    name: n.into(),
                    def,
                    default: None,
                })
                .collect(),
            constraints: constraints
                .into_iter()
                .enumerate()
                .map(|(i, e)| ConstraintSpec {
                    name: format!("c{i}"),
                    expr: e.into(),
                })
                .collect(),
            ..Default::default()
        }
    }

    fn fix(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn unconstrained_projection_is_the_declared_box() {
        let b = bundle(vec![("a", ParamDef::Integer { lo: 0, hi: 9 })], vec![]);
        let p = Projector::from_bundle(&b).expect("valid bundle");
        let iv = p.project("a", &BTreeMap::new());
        assert_eq!((iv.lo, iv.hi), (0.0, 9.0));
    }

    #[test]
    fn projection_conditions_on_fixed_coordinates() {
        // a + b <= 10: with a = 7, b projects to [0, 3].
        let b = bundle(
            vec![
                ("a", ParamDef::Integer { lo: 0, hi: 10 }),
                ("b", ParamDef::Integer { lo: 0, hi: 10 }),
            ],
            vec!["a + b <= 10"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        let iv = p.project("b", &fix(&[("a", 7.0)]));
        assert_eq!((iv.lo, iv.hi), (0.0, 3.0));
    }

    #[test]
    fn disjunctive_projection_returns_both_slabs() {
        let b = bundle(
            vec![("a", ParamDef::Integer { lo: 0, hi: 10 })],
            vec!["a <= 1 || a >= 9"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        let slabs = p.project_slabs("a", &BTreeMap::new());
        assert_eq!(slabs.len(), 2, "{slabs:?}");
        assert_eq!((slabs[0].lo, slabs[0].hi), (0.0, 1.0));
        assert_eq!((slabs[1].lo, slabs[1].hi), (9.0, 10.0));
        // The hull is the vacuous answer; the slabs are the point.
        let hull = p.project("a", &BTreeMap::new());
        assert_eq!((hull.lo, hull.hi), (0.0, 10.0));
    }

    #[test]
    fn infeasible_pin_yields_no_slabs() {
        let b = bundle(
            vec![
                ("a", ParamDef::Integer { lo: 0, hi: 10 }),
                ("b", ParamDef::Integer { lo: 0, hi: 10 }),
            ],
            vec!["a + b <= 10", "a >= 8"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        // a is pinned outside its feasible range.
        assert!(p.project_slabs("b", &fix(&[("a", 2.0)])).is_empty());
    }

    #[test]
    fn product_constraint_projects_conditionally() {
        // g1 * zc <= 16384: with zc = 512, g1 projects to [32, 32].
        let b = bundle(
            vec![
                ("g1", ParamDef::Integer { lo: 32, hi: 1024 }),
                ("zc", ParamDef::Integer { lo: 32, hi: 1024 }),
            ],
            vec!["g1 * zc <= 16384"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        let iv = p.project("g1", &fix(&[("zc", 512.0)]));
        assert_eq!((iv.lo, iv.hi), (32.0, 32.0));
        let iv = p.project("g1", &fix(&[("zc", 32.0)]));
        assert_eq!((iv.lo, iv.hi), (32.0, 512.0));
    }

    #[test]
    fn stride_projection_is_conditional_on_pinned_divisor() {
        let b = bundle(
            vec![
                ("n", ParamDef::Integer { lo: 1, hi: 100_000 }),
                (
                    "nb",
                    ParamDef::Ordinal {
                        values: vec![128.0, 256.0],
                    },
                ),
            ],
            vec!["n % nb == 0"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        // Unpinned divisor: no single grid is sound.
        let (_, stride) = p.project_slabs_stride("n", &BTreeMap::new());
        assert_eq!(stride, None);
        // Pinned divisor: the grid appears and the slabs snap to it.
        let (slabs, stride) = p.project_slabs_stride("n", &fix(&[("nb", 256.0)]));
        assert_eq!(stride, Some((256, 0)));
        assert_eq!(slabs.len(), 1);
        assert_eq!((slabs[0].lo, slabs[0].hi), (256.0, 99_840.0));
    }

    #[test]
    fn unconstrained_projection_has_no_stride() {
        let b = bundle(
            vec![("a", ParamDef::Integer { lo: 0, hi: 9 })],
            vec!["a >= 1"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        let (slabs, stride) = p.project_slabs_stride("a", &BTreeMap::new());
        assert_eq!(stride, None);
        assert_eq!(slabs.len(), 1);
        assert_eq!((slabs[0].lo, slabs[0].hi), (1.0, 9.0));
    }

    #[test]
    fn malformed_bundles_yield_no_projector() {
        let b = bundle(
            vec![
                ("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
                ("a", ParamDef::Real { lo: 0.0, hi: 1.0 }),
            ],
            vec![],
        );
        assert!(Projector::from_bundle(&b).is_none());
    }

    #[test]
    fn statically_empty_system_is_flagged() {
        let b = bundle(
            vec![("a", ParamDef::Integer { lo: 0, hi: 10 })],
            vec!["a >= 9", "a <= 1"],
        );
        let p = Projector::from_bundle(&b).expect("valid bundle");
        assert!(p.proved_empty());
        assert!(p.project_slabs("a", &BTreeMap::new()).is_empty());
    }
}
