//! Forward interval evaluation of constraint expressions and HC4-revise
//! backward bound contraction.
//!
//! ## Forward ([`eval_expr`])
//!
//! Evaluates an [`Expr`] over an environment of per-parameter
//! [`Interval`]s using the transfer functions of
//! [`crate::absint::interval`]. The result *encloses* the concrete
//! [`Expr::eval`] on every point of the box (property-tested): if the
//! concrete value can be NaN the result's `maybe_nan` flag is set, and
//! every real concrete value lies in the result's range.
//!
//! ## Backward ([`contract`])
//!
//! HC4-revise: each constraint is asserted *satisfied* (top-level
//! semantics: real and non-zero, NaN excluded) and the assertion is pushed
//! down the AST, narrowing parameter intervals via the inverse transfer
//! functions (`a + b ∈ r ⇒ a ∈ r - b`, …). The fixpoint loop sweeps all
//! constraints until no interval moves more than [`CONVERGENCE_EPS`]
//! (relative) or [`ITER_CAP`] passes elapse, snapping integer/ordinal
//! domains to representable values after every pass.
//!
//! ## Floating-point soundness
//!
//! Forward evaluation is exactly sound (IEEE rounding is monotone), but
//! the backward identities (`x = s - y`) hold in real arithmetic, not in
//! floats: the concrete `s` is a *rounded* sum, and absorption can make
//! `x` differ from `s - y` by up to an ulp of `s`'s magnitude. Every
//! derived interval is therefore widened outward by a relative slack at
//! the magnitude of the participating ranges (`widen`), and non-finite
//! derived endpoints — where IEEE overflow breaks the field identities
//! entirely — are treated as unbounded. Contraction may therefore be
//! slightly looser than the real-arithmetic optimum, but it never excludes
//! a concretely satisfying point (property-tested).

use super::interval::Interval;
use crate::expr::{BinOp, Expr};
use cets_space::ParamDef;
use std::collections::BTreeMap;

/// Maximum fixpoint passes over the constraint set.
pub const ITER_CAP: usize = 64;

/// Relative endpoint movement below which the fixpoint is converged.
pub const CONVERGENCE_EPS: f64 = 1e-9;

/// Relative slack applied when inverting transfer functions, covering
/// IEEE rounding and absorption in the concrete evaluation.
const BACKWARD_SLACK: f64 = 1e-12;

/// Outcome of a contraction run.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Final per-parameter intervals (never wider than the initial box).
    pub env: BTreeMap<String, Interval>,
    /// Fixpoint passes executed (0 when there was nothing to do).
    pub iterations: usize,
    /// Did the loop stop because nothing moved (or the box emptied),
    /// rather than because [`ITER_CAP`] was reached?
    pub converged: bool,
    /// The constraints are jointly unsatisfiable over the box.
    pub proved_empty: bool,
}

/// The initial interval of a parameter domain, in the numeric view the
/// constraint language uses (ordinals by value, categoricals by option
/// index). `None` for invalid domains — those are `S002` territory and
/// the analysis skips the bundle.
pub fn initial_interval(def: &ParamDef) -> Option<Interval> {
    match def {
        ParamDef::Real { lo, hi } => {
            if lo.is_finite() && hi.is_finite() && lo < hi {
                Some(Interval::new(*lo, *hi))
            } else {
                None
            }
        }
        ParamDef::Integer { lo, hi } => {
            if lo <= hi {
                Some(Interval::new(*lo as f64, *hi as f64))
            } else {
                None
            }
        }
        ParamDef::Ordinal { values } => {
            if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
                None
            } else {
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some(Interval::new(lo, hi))
            }
        }
        ParamDef::Categorical { options } => {
            if options.is_empty() {
                None
            } else {
                Some(Interval::new(0.0, (options.len() - 1) as f64))
            }
        }
    }
}

/// Snap a contracted interval to the representable values of its domain:
/// integer bounds round inward, ordinal bounds tighten to the hull of the
/// surviving values. An empty result means the domain has no feasible
/// value left.
pub fn snap(def: &ParamDef, iv: Interval) -> Interval {
    if iv.is_empty_range() {
        return Interval::bottom();
    }
    match def {
        ParamDef::Real { .. } => iv,
        ParamDef::Integer { .. } | ParamDef::Categorical { .. } => {
            Interval::new(iv.lo.ceil(), iv.hi.floor())
        }
        ParamDef::Ordinal { values } => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in values {
                if iv.contains(v) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            Interval::new(lo, hi)
        }
    }
}

/// Forward interval evaluation. Unknown variables evaluate to the full
/// line with NaN possible (sound; the analysis driver skips constraints
/// with unknown references anyway, leaving them to rule `S005`).
pub fn eval_expr(e: &Expr, env: &BTreeMap<String, Interval>) -> Interval {
    match e {
        Expr::Num(x) => Interval::point(*x),
        Expr::Var(n) => env
            .get(n)
            .copied()
            .unwrap_or_else(|| Interval::top().with_nan(true)),
        Expr::Neg(inner) => eval_expr(inner, env).neg(),
        Expr::Bin(op, a, b) => {
            let x = eval_expr(a, env);
            let y = eval_expr(b, env);
            if x.is_bottom() || y.is_bottom() {
                return Interval::bottom();
            }
            match op {
                BinOp::Add => x.add(&y),
                BinOp::Sub => x.sub(&y),
                BinOp::Mul => x.mul(&y),
                BinOp::Div => x.div(&y),
                BinOp::Rem => x.rem(&y),
                BinOp::Le => x.le(&y),
                BinOp::Ge => x.ge(&y),
                BinOp::Lt => x.lt(&y),
                BinOp::Gt => x.gt(&y),
                BinOp::Eq => x.eq_cmp(&y),
                BinOp::Ne => x.ne_cmp(&y),
                BinOp::And => x.and(&y),
                BinOp::Or => x.or(&y),
            }
        }
    }
}

/// Witness that a constraint (or the conjunction) has no satisfying point
/// in the current box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

/// One ulp step upward (total; fixed points at `+inf` and NaN).
fn step_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        x
    } else if x == 0.0 {
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// One ulp step downward.
fn step_down(x: f64) -> f64 {
    -step_up(-x)
}

/// Round a derived upper-bound constant outward (upward): the relative
/// [`BACKWARD_SLACK`] plus two ulp steps, matching [`widen`]'s treatment
/// of interval endpoints. Total: non-finite inputs pass through (`+∞` is
/// already the loosest bound; NaN/`-∞` are filtered by the callers).
/// Shared with the octagon layer, whose closure arithmetic needs the same
/// outward rounding.
pub(crate) fn slack_up(c: f64) -> f64 {
    if !c.is_finite() {
        return c;
    }
    step_up(step_up(c + c.abs().max(1.0) * BACKWARD_SLACK))
}

/// Largest endpoint magnitude of a range (`0` when empty).
fn mag(iv: &Interval) -> f64 {
    if iv.is_empty_range() {
        0.0
    } else {
        iv.lo.abs().max(iv.hi.abs())
    }
}

/// Widen a derived (inverse-transfer) interval outward so it is sound
/// under IEEE rounding: relative slack at the larger of the endpoint's
/// and the operation's magnitude, plus two ulp steps for subnormal
/// granularity. Non-finite endpoints (overflow territory, where the
/// field identities break) become unbounded; a non-finite scale disables
/// the refinement entirely.
fn widen(iv: Interval, scale: f64) -> Interval {
    if !scale.is_finite() {
        return Interval::top();
    }
    let lo = if iv.lo.is_finite() {
        let slack = iv.lo.abs().max(scale) * BACKWARD_SLACK;
        step_down(step_down(iv.lo - slack))
    } else {
        f64::NEG_INFINITY
    };
    let hi = if iv.hi.is_finite() {
        let slack = iv.hi.abs().max(scale) * BACKWARD_SLACK;
        step_up(step_up(iv.hi + slack))
    } else {
        f64::INFINITY
    };
    Interval::new(lo, hi)
}

/// Assert `e` is truthy, narrowing `env` where the inverse transfer
/// functions allow. `Err(Infeasible)` proves no point of the current box
/// can satisfy the assertion.
///
/// At the top level (`allow_nan = false`) "truthy" is the `satisfied`
/// semantics: a real value other than zero. Under `&&` / `||`
/// (`allow_nan = true`) NaN also counts as truthy, because the concrete
/// semantics test `x != 0.0`.
fn backward_truthy(
    e: &Expr,
    allow_nan: bool,
    env: &mut BTreeMap<String, Interval>,
) -> Result<(), Infeasible> {
    let f = eval_expr(e, env);
    if !f.truthy_possible(allow_nan) {
        return Err(Infeasible);
    }
    match e {
        // No interval can express "anything but zero"; the feasibility
        // check above is all we can do for leaves.
        Expr::Num(_) | Expr::Var(_) => Ok(()),
        // -x is truthy exactly when x is (NaN and zero are fixed points).
        Expr::Neg(inner) => backward_truthy(inner, allow_nan, env),
        Expr::Bin(op, a, b) => match op {
            // A true conjunction needs both sides truthy in the
            // NaN-is-truthy sense (`x != 0.0`).
            BinOp::And => {
                backward_truthy(a, true, env)?;
                backward_truthy(b, true, env)
            }
            // A true disjunction only pins a side down when the other is
            // provably never truthy.
            BinOp::Or => {
                let fa = eval_expr(a, env);
                let fb = eval_expr(b, env);
                if !fa.truthy_possible(true) {
                    backward_truthy(b, true, env)
                } else if !fb.truthy_possible(true) {
                    backward_truthy(a, true, env)
                } else {
                    Ok(())
                }
            }
            // A true comparison (except `!=`, which NaN satisfies) forces
            // both operands real and ordered.
            BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt | BinOp::Eq => {
                require_true_cmp(*op, a, b, env)
            }
            // `!=` is true for NaN operands and carves a hole, not an
            // interval: no refinement.
            BinOp::Ne => Ok(()),
            // Bare arithmetic used as a predicate: the feasibility check
            // above is all (truthiness is a hole around zero).
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => Ok(()),
        },
    }
}

/// Push a required-true comparison into its operands. IEEE comparisons
/// with NaN are false, so a required-true comparison proves both operands
/// real; closed bounds keep the strict variants sound.
fn require_true_cmp(
    op: BinOp,
    a: &Expr,
    b: &Expr,
    env: &mut BTreeMap<String, Interval>,
) -> Result<(), Infeasible> {
    let fa = eval_expr(a, env);
    let fb = eval_expr(b, env);
    if fa.is_empty_range() || fb.is_empty_range() {
        return Err(Infeasible); // an operand can only be NaN (or nothing)
    }
    let (ra, rb) = match op {
        BinOp::Le | BinOp::Lt => (
            Interval::new(f64::NEG_INFINITY, fb.hi),
            Interval::new(fa.lo, f64::INFINITY),
        ),
        BinOp::Ge | BinOp::Gt => (
            Interval::new(fb.lo, f64::INFINITY),
            Interval::new(f64::NEG_INFINITY, fa.hi),
        ),
        BinOp::Eq => {
            let m = fa.meet(&fb);
            (m, m)
        }
        _ => return Ok(()),
    };
    let na = fa.meet(&ra);
    let nb = fb.meet(&rb);
    if na.is_empty_range() || nb.is_empty_range() {
        return Err(Infeasible);
    }
    backward_in(a, na, env)?;
    backward_in(b, nb, env)
}

fn backward_in(
    e: &Expr,
    r: Interval,
    env: &mut BTreeMap<String, Interval>,
) -> Result<(), Infeasible> {
    let f = eval_expr(e, env);
    let m = f.meet(&r);
    if m.is_empty_range() {
        // No real value of this subtree lies in the required range (a
        // NaN-only forward value also lands here: `In` excludes NaN).
        return Err(Infeasible);
    }
    match e {
        Expr::Num(_) => Ok(()), // the meet above already checked it
        Expr::Var(n) => {
            if let Some(slot) = env.get_mut(n) {
                *slot = Interval::new(m.lo, m.hi);
            }
            Ok(())
        }
        Expr::Neg(inner) => backward_in(inner, m.neg(), env),
        Expr::Bin(op, a, b) => {
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let fa = eval_expr(a, env);
                    let fb = eval_expr(b, env);
                    if fa.is_empty_range() || fb.is_empty_range() {
                        return Err(Infeasible); // real result needs real operands
                    }
                    let (da, db) = match op {
                        // a + b = m  ⇒  a ∈ m - b, b ∈ m - a
                        BinOp::Add => (
                            widen(m.sub(&fb), mag(&m).max(mag(&fb))),
                            widen(m.sub(&fa), mag(&m).max(mag(&fa))),
                        ),
                        // a - b = m  ⇒  a ∈ m + b, b ∈ a - m
                        BinOp::Sub => (
                            widen(m.add(&fb), mag(&m).max(mag(&fb))),
                            widen(fa.sub(&m), mag(&m).max(mag(&fa))),
                        ),
                        // a * b = m  ⇒  a ∈ m / b (no-op when 0 ∈ b).
                        BinOp::Mul => (widen(m.div(&fb), mag(&m)), widen(m.div(&fa), mag(&m))),
                        // a / b = m  ⇒  a ∈ m * b; b ∈ a / m only when m
                        // is bounded (an infinite quotient can come from
                        // overflow at any tiny divisor, so an unbounded m
                        // says nothing reliable about b).
                        BinOp::Div => (
                            widen(m.mul(&fb), mag(&m)),
                            if m.lo.is_finite() && m.hi.is_finite() {
                                widen(fa.div(&m), mag(&fa))
                            } else {
                                Interval::top()
                            },
                        ),
                        _ => (Interval::top(), Interval::top()),
                    };
                    let na = fa.meet(&da);
                    let nb = fb.meet(&db);
                    if na.is_empty_range() || nb.is_empty_range() {
                        return Err(Infeasible);
                    }
                    backward_in(a, na, env)?;
                    backward_in(b, nb, env)
                }
                // Remainder: with an integer point divisor `c` and an
                // exact integer required value `k`, the dividend lies
                // on the grid `cℤ + k` — truncated remainder subtracts
                // an *integer* multiple of the divisor, for real
                // dividends too. Snapping the dividend range inward to
                // the outermost grid members is exact integer
                // arithmetic (no rounding slack needed); an empty snap
                // proves the requirement unsatisfiable. Anything less
                // pinned keeps the forward meet above.
                BinOp::Rem => {
                    use super::congruence::{int_point, Congruence};
                    let fb = eval_expr(b, env);
                    let (Some(c), Some(k)) = (int_point(&fb), int_point(&m)) else {
                        return Ok(());
                    };
                    if c == 0 {
                        return Err(Infeasible); // x % 0 is NaN, never equal to k
                    }
                    let fa = eval_expr(a, env);
                    let na = Congruence::grid(c.unsigned_abs(), k).tighten(&fa);
                    if na.is_empty_range() {
                        return Err(Infeasible);
                    }
                    backward_in(a, Interval::new(na.lo, na.hi), env)
                }
                // Boolean-valued nodes: if the required range excludes
                // zero the node must be *true*; propagate that. A
                // required-false node is left alone (sound no-op).
                BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt | BinOp::Eq => {
                    if !m.can_be_zero() {
                        require_true_cmp(*op, a, b, env)
                    } else {
                        Ok(())
                    }
                }
                BinOp::Ne => Ok(()),
                BinOp::And => {
                    if !m.can_be_zero() {
                        backward_truthy(a, true, env)?;
                        backward_truthy(b, true, env)
                    } else {
                        Ok(())
                    }
                }
                BinOp::Or => {
                    if !m.can_be_zero() {
                        let fa = eval_expr(a, env);
                        let fb = eval_expr(b, env);
                        if !fa.truthy_possible(true) {
                            backward_truthy(b, true, env)
                        } else if !fb.truthy_possible(true) {
                            backward_truthy(a, true, env)
                        } else {
                            Ok(())
                        }
                    } else {
                        Ok(())
                    }
                }
            }
        }
    }
}

/// Relative distance between two endpoints, for convergence tests.
fn rel_delta(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0; // covers ±inf == ±inf
    }
    let d = (a - b).abs();
    if d.is_nan() {
        return f64::INFINITY;
    }
    d / a.abs().max(b.abs()).max(1.0)
}

/// Contract the box spanned by `params` to a (near-)fixpoint consistent
/// with every constraint in `exprs` being satisfied.
///
/// The caller is responsible for pre-filtering: every variable of every
/// expression should be a declared parameter with a valid domain (use
/// [`initial_interval`] to vet domains). The function is total either
/// way — unknown variables simply evaluate to ⊤ and never narrow.
pub fn contract(params: &[(&str, &ParamDef)], exprs: &[&Expr]) -> Contraction {
    let mut env: BTreeMap<String, Interval> = BTreeMap::new();
    for (name, def) in params {
        let iv = initial_interval(def).unwrap_or_else(Interval::top);
        env.insert((*name).to_string(), iv);
    }
    contract_from(env, params, exprs)
}

/// [`contract`] seeded with an explicit starting environment instead of
/// the declared box — the branch-and-prune splitter re-contracts each
/// disjunctive branch from its already-narrowed box, and the projection
/// API pins partial assignments as point intervals before contracting.
/// Parameters missing from `env` start at their declared interval.
pub fn contract_from(
    mut env: BTreeMap<String, Interval>,
    params: &[(&str, &ParamDef)],
    exprs: &[&Expr],
) -> Contraction {
    for (name, def) in params {
        env.entry((*name).to_string())
            .or_insert_with(|| initial_interval(def).unwrap_or_else(Interval::top));
    }
    // An already-empty seed interval proves emptiness before any pass.
    if params
        .iter()
        .any(|(name, _)| env.get(*name).is_some_and(|iv| iv.is_empty_range()))
    {
        return Contraction {
            env,
            iterations: 0,
            converged: true,
            proved_empty: true,
        };
    }
    let mut out = Contraction {
        env,
        iterations: 0,
        converged: true,
        proved_empty: false,
    };
    if exprs.is_empty() || params.is_empty() {
        return out;
    }
    out.converged = false;
    for pass in 1..=ITER_CAP {
        out.iterations = pass;
        let before = out.env.clone();
        for e in exprs {
            if backward_truthy(e, false, &mut out.env).is_err() {
                out.proved_empty = true;
                out.converged = true;
                return out;
            }
        }
        // Snap to representable values once per pass.
        for (name, def) in params {
            if let Some(slot) = out.env.get_mut(*name) {
                *slot = snap(def, *slot);
                if slot.is_empty_range() {
                    out.proved_empty = true;
                    out.converged = true;
                    return out;
                }
            }
        }
        let delta = before
            .iter()
            .filter_map(|(k, old)| {
                out.env
                    .get(k)
                    .map(|new| rel_delta(old.lo, new.lo).max(rel_delta(old.hi, new.hi)))
            })
            .fold(0.0, f64::max);
        if delta <= CONVERGENCE_EPS {
            out.converged = true;
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn env(pairs: &[(&str, f64, f64)]) -> BTreeMap<String, Interval> {
        pairs
            .iter()
            .map(|(n, lo, hi)| (n.to_string(), Interval::new(*lo, *hi)))
            .collect()
    }

    #[test]
    fn forward_arithmetic_and_comparison() {
        let m = env(&[("a", 0.0, 10.0), ("b", 2.0, 4.0)]);
        let v = eval_expr(&parse("a + b * 2").unwrap(), &m);
        assert_eq!((v.lo, v.hi), (4.0, 18.0));
        let v = eval_expr(&parse("a <= 20").unwrap(), &m);
        assert_eq!((v.lo, v.hi), (1.0, 1.0), "tautology collapses to true");
        let v = eval_expr(&parse("a > 100").unwrap(), &m);
        assert_eq!((v.lo, v.hi), (0.0, 0.0), "unsat collapses to false");
    }

    #[test]
    fn forward_division_poisoning() {
        let m = env(&[("a", -1.0, 1.0)]);
        let v = eval_expr(&parse("1 / a").unwrap(), &m);
        assert_eq!((v.lo, v.hi), (f64::NEG_INFINITY, f64::INFINITY));
        let v = eval_expr(&parse("a / a").unwrap(), &m);
        assert!(v.maybe_nan, "0/0 reachable");
    }

    #[test]
    fn forward_unknown_var_is_top() {
        let v = eval_expr(&parse("zz + 1").unwrap(), &BTreeMap::new());
        assert!(v.maybe_nan);
        assert_eq!((v.lo, v.hi), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn contracts_linear_upper_bound() {
        let def_a = ParamDef::Integer { lo: 32, hi: 1024 };
        let e = parse("a * 64 <= 49152").unwrap();
        let c = contract(&[("a", &def_a)], &[&e]);
        assert!(!c.proved_empty);
        assert!(c.converged);
        let a = c.env["a"];
        assert_eq!((a.lo, a.hi), (32.0, 768.0));
    }

    #[test]
    fn contracts_both_sides_of_sum() {
        let d = ParamDef::Real { lo: 0.0, hi: 100.0 };
        let e = parse("a + b <= 10").unwrap();
        let c = contract(&[("a", &d), ("b", &d)], &[&e]);
        let a = c.env["a"];
        assert_eq!(a.lo, 0.0);
        assert!(
            a.hi <= 10.0 + 1e-6 && a.hi >= 10.0,
            "a.hi ~ 10, got {}",
            a.hi
        );
    }

    #[test]
    fn proves_empty_conjunction() {
        let d = ParamDef::Real { lo: 0.0, hi: 10.0 };
        let hi = parse("a >= 9").unwrap();
        let lo = parse("a <= 1").unwrap();
        let c = contract(&[("a", &d)], &[&hi, &lo]);
        assert!(c.proved_empty);
        assert!(c.converged);
    }

    #[test]
    fn proves_empty_single_unsat() {
        let d = ParamDef::Integer { lo: 1, hi: 8 };
        let e = parse("a > 100").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        assert!(c.proved_empty);
    }

    #[test]
    fn integer_snap_tightens() {
        let d = ParamDef::Integer { lo: 0, hi: 100 };
        let e = parse("a * 3 <= 10").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        let a = c.env["a"];
        assert_eq!((a.lo, a.hi), (0.0, 3.0), "10/3 snaps to 3");
    }

    #[test]
    fn ordinal_snap_keeps_surviving_values() {
        let d = ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0, 8.0, 16.0],
        };
        let e = parse("v <= 5").unwrap();
        let c = contract(&[("v", &d)], &[&e]);
        let v = c.env["v"];
        assert_eq!((v.lo, v.hi), (1.0, 4.0));
    }

    #[test]
    fn equality_pins_to_point() {
        let d = ParamDef::Real { lo: -5.0, hi: 5.0 };
        let e = parse("a == 3").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        let a = c.env["a"];
        assert_eq!((a.lo, a.hi), (3.0, 3.0));
    }

    #[test]
    fn conjunction_narrows_from_both_ends() {
        let d = ParamDef::Real {
            lo: -100.0,
            hi: 100.0,
        };
        let e = parse("a >= -1 && a <= 1").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        let a = c.env["a"];
        assert!(a.lo >= -1.0 - 1e-9 && a.hi <= 1.0 + 1e-9, "{a:?}");
    }

    #[test]
    fn disjunction_does_not_overcontract() {
        let d = ParamDef::Real { lo: 0.0, hi: 10.0 };
        let e = parse("a <= 1 || a >= 9").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        let a = c.env["a"];
        // Both branches are possible: no narrowing allowed.
        assert_eq!((a.lo, a.hi), (0.0, 10.0));
    }

    #[test]
    fn chained_constraints_propagate() {
        let d = ParamDef::Real {
            lo: 0.0,
            hi: 1000.0,
        };
        let c1 = parse("a <= b").unwrap();
        let c2 = parse("b <= 10").unwrap();
        let c = contract(&[("a", &d), ("b", &d)], &[&c1, &c2]);
        assert!(c.env["a"].hi <= 10.0 + 1e-6, "{:?}", c.env["a"]);
        assert!(c.env["b"].hi <= 10.0 + 1e-6, "{:?}", c.env["b"]);
    }

    #[test]
    fn division_backward_is_cautious() {
        // y can be 0 (x/0 = inf satisfies > 1); no narrowing of y from an
        // unbounded quotient requirement.
        let dx = ParamDef::Real { lo: 1.0, hi: 2.0 };
        let dy = ParamDef::Real { lo: 0.0, hi: 4.0 };
        let e = parse("x / y > 1").unwrap();
        let c = contract(&[("x", &dx), ("y", &dy)], &[&e]);
        assert!(!c.proved_empty);
        let y = c.env["y"];
        assert_eq!(y.lo, 0.0, "y = 0 stays feasible (x/0 = inf > 1)");
    }

    #[test]
    fn rem_backward_contracts_to_grid() {
        let d = ParamDef::Integer { lo: 1, hi: 100_000 };
        let e = parse("n % 256 == 0").unwrap();
        let c = contract(&[("n", &d)], &[&e]);
        assert!(!c.proved_empty);
        let n = c.env["n"];
        assert_eq!((n.lo, n.hi), (256.0, 99_840.0));
    }

    #[test]
    fn rem_backward_applies_to_real_dividends() {
        // x % 2 == 1 forces x onto 2ℤ+1 even for a real-valued x.
        let d = ParamDef::Real { lo: 0.0, hi: 10.0 };
        let e = parse("x % 2 == 1").unwrap();
        let c = contract(&[("x", &d)], &[&e]);
        assert!(!c.proved_empty);
        let x = c.env["x"];
        assert_eq!((x.lo, x.hi), (1.0, 9.0));
    }

    #[test]
    fn rem_backward_proves_empty_between_multiples() {
        let d = ParamDef::Integer { lo: 257, hi: 511 };
        let e = parse("n % 256 == 0").unwrap();
        let c = contract(&[("n", &d)], &[&e]);
        assert!(c.proved_empty);
    }

    #[test]
    fn rem_with_pinned_divisor_contracts() {
        // The divisor is a variable pinned by a sibling constraint; the
        // fixpoint loop makes it a point, after which the grid applies.
        let dn = ParamDef::Integer { lo: 1, hi: 100_000 };
        let db = ParamDef::Integer { lo: 32, hi: 1024 };
        let pin = parse("nb == 256").unwrap();
        let align = parse("n % nb == 0").unwrap();
        let c = contract(&[("n", &dn), ("nb", &db)], &[&pin, &align]);
        assert!(!c.proved_empty);
        let n = c.env["n"];
        assert_eq!((n.lo, n.hi), (256.0, 99_840.0));
    }

    #[test]
    fn no_constraints_is_identity() {
        let d = ParamDef::Real { lo: 0.0, hi: 1.0 };
        let c = contract(&[("a", &d)], &[]);
        assert!(c.converged);
        assert_eq!(c.iterations, 0);
        assert_eq!((c.env["a"].lo, c.env["a"].hi), (0.0, 1.0));
    }

    #[test]
    fn terminates_on_slow_shrink_within_cap() {
        // a <= a / 2 + 1 over [0, big] halves the bound each pass; the cap
        // and epsilon must stop it without panicking.
        let d = ParamDef::Real { lo: 0.0, hi: 1e12 };
        let e = parse("a <= a / 2 + 1").unwrap();
        let c = contract(&[("a", &d)], &[&e]);
        assert!(c.iterations <= ITER_CAP);
        assert!(!c.proved_empty);
        assert!(c.env["a"].hi < 1e12, "some progress is made");
    }

    #[test]
    fn initial_intervals_match_domains() {
        assert_eq!(
            initial_interval(&ParamDef::Real { lo: -1.0, hi: 2.0 }),
            Some(Interval::new(-1.0, 2.0))
        );
        assert_eq!(
            initial_interval(&ParamDef::Integer { lo: 3, hi: 7 }),
            Some(Interval::new(3.0, 7.0))
        );
        assert_eq!(
            initial_interval(&ParamDef::Ordinal {
                values: vec![4.0, 1.0, 2.0]
            }),
            Some(Interval::new(1.0, 4.0))
        );
        assert_eq!(
            initial_interval(&ParamDef::Categorical {
                options: vec!["a".into(), "b".into()]
            }),
            Some(Interval::new(0.0, 1.0))
        );
        assert_eq!(initial_interval(&ParamDef::Integer { lo: 5, hi: 4 }), None);
        assert_eq!(
            initial_interval(&ParamDef::Ordinal { values: vec![] }),
            None
        );
    }

    #[test]
    fn widen_guards_nonfinite() {
        let w = widen(Interval::new(f64::INFINITY, f64::INFINITY), 1.0);
        assert_eq!((w.lo, w.hi), (f64::NEG_INFINITY, f64::INFINITY));
        let w = widen(Interval::new(0.0, 1.0), f64::INFINITY);
        assert_eq!((w.lo, w.hi), (f64::NEG_INFINITY, f64::INFINITY));
        let w = widen(Interval::new(2.0, 3.0), 1.0);
        assert!(w.lo < 2.0 && w.hi > 3.0);
    }
}
