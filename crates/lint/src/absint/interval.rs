//! The interval abstract domain.
//!
//! An [`Interval`] over-approximates the set of values a constraint
//! sub-expression can take: a closed range `[lo, hi]` over the extended
//! reals (`±inf` are attainable values — IEEE division produces them)
//! plus an explicit *NaN-poisoning* flag. The flag is tracked separately
//! because the constraint language's concrete semantics
//! ([`crate::expr::Expr::eval`]) treats NaN asymmetrically: every
//! comparison with NaN is false, but `&&` / `||` truthiness is `x != 0.0`,
//! which is **true** for NaN.
//!
//! ## Invariants
//!
//! * `lo` and `hi` are never NaN.
//! * The empty range is canonically `lo = +inf, hi = -inf`.
//! * [`Interval::is_bottom`] (empty range *and* no NaN) means no concrete
//!   value at all is possible.
//!
//! ## Soundness
//!
//! The forward transfer functions are *exactly* sound with respect to
//! IEEE-754 evaluation: rounding is monotone, and every endpoint we
//! compute is the rounding of the exact endpoint, so the concrete (rounded)
//! result of an operation on values inside the operand intervals lies
//! inside the result interval — no outward rounding needed. Where an
//! endpoint combination is itself NaN (`inf - inf`, `0 * inf`, `inf/inf`,
//! `x/0`), the function widens the range conservatively and raises
//! `maybe_nan`. This enclosure property is property-tested against
//! [`crate::expr::Expr::eval`] on random points.

use std::fmt;

/// A closed interval over the extended reals with a NaN-possibility flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint (never NaN; `+inf` when the range is empty).
    pub lo: f64,
    /// Upper endpoint (never NaN; `-inf` when the range is empty).
    pub hi: f64,
    /// Can the concrete value be NaN?
    pub maybe_nan: bool,
}

impl Interval {
    /// The canonical empty range (no real value, no NaN).
    pub const fn bottom() -> Self {
        Interval {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            maybe_nan: false,
        }
    }

    /// The full extended-real line, NaN excluded.
    pub const fn top() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            maybe_nan: false,
        }
    }

    /// `[lo, hi]` with NaN endpoints or inverted bounds collapsing to the
    /// empty range — the constructor is total.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::bottom()
        } else {
            Interval {
                lo,
                hi,
                maybe_nan: false,
            }
        }
    }

    /// A single value. `Interval::point(NaN)` is the NaN-only interval.
    pub fn point(x: f64) -> Self {
        if x.is_nan() {
            Interval::bottom().with_nan(true)
        } else {
            Interval::new(x, x)
        }
    }

    /// Copy with the NaN flag set to `nan`.
    pub fn with_nan(mut self, nan: bool) -> Self {
        self.maybe_nan = nan;
        self
    }

    /// Is the real range empty (the value, if any, can only be NaN)?
    pub fn is_empty_range(&self) -> bool {
        self.lo > self.hi
    }

    /// No concrete value at all (empty range and no NaN).
    pub fn is_bottom(&self) -> bool {
        self.is_empty_range() && !self.maybe_nan
    }

    /// Does the interval contain the real value `x`? NaN maps to the flag.
    pub fn contains(&self, x: f64) -> bool {
        if x.is_nan() {
            self.maybe_nan
        } else {
            self.lo <= x && x <= self.hi
        }
    }

    /// Can the value be `0.0` (a *falsy* concrete value)?
    pub fn can_be_zero(&self) -> bool {
        !self.is_empty_range() && self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Can the value be a real number other than zero? This is the
    /// *satisfiable* test for a top-level constraint, where NaN counts as
    /// unsatisfied.
    pub fn can_be_nonzero_real(&self) -> bool {
        !self.is_empty_range() && (self.lo != 0.0 || self.hi != 0.0)
    }

    /// Can the value be truthy under `&&`/`||` semantics (`x != 0.0`)?
    /// NaN is truthy there, so the flag counts when `allow_nan` is set.
    pub fn truthy_possible(&self, allow_nan: bool) -> bool {
        (allow_nan && self.maybe_nan) || self.can_be_nonzero_real()
    }

    /// Intersection of the real ranges; NaN flag is the conjunction.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
            .with_nan(self.maybe_nan && other.maybe_nan)
    }

    /// Convex hull of the real ranges; NaN flag is the disjunction.
    pub fn join(&self, other: &Interval) -> Interval {
        let i = if self.is_empty_range() {
            Interval::new(other.lo, other.hi)
        } else if other.is_empty_range() {
            Interval::new(self.lo, self.hi)
        } else {
            Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
        };
        i.with_nan(self.maybe_nan || other.maybe_nan)
    }

    /// Largest absolute value in the range (`0` when empty).
    fn max_abs(&self) -> f64 {
        if self.is_empty_range() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// Does the range reach `-inf`?
    fn has_neg_inf(&self) -> bool {
        !self.is_empty_range() && self.lo == f64::NEG_INFINITY
    }

    /// Does the range reach `+inf`?
    fn has_pos_inf(&self) -> bool {
        !self.is_empty_range() && self.hi == f64::INFINITY
    }

    /// Does the range contain an infinite value?
    fn has_inf(&self) -> bool {
        self.has_neg_inf() || self.has_pos_inf()
    }

    /// Unary negation: `[-hi, -lo]`, NaN preserved.
    pub fn neg(&self) -> Interval {
        if self.is_empty_range() {
            Interval::bottom().with_nan(self.maybe_nan)
        } else {
            Interval::new(-self.hi, -self.lo).with_nan(self.maybe_nan)
        }
    }

    /// Addition. NaN arises from `(-inf) + (+inf)` (and from NaN operands).
    pub fn add(&self, other: &Interval) -> Interval {
        let nan = self.maybe_nan
            || other.maybe_nan
            || (self.has_neg_inf() && other.has_pos_inf())
            || (self.has_pos_inf() && other.has_neg_inf());
        if self.is_empty_range() || other.is_empty_range() {
            return Interval::bottom().with_nan(nan);
        }
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        if lo.is_nan() || hi.is_nan() {
            // An endpoint sum was inf - inf; the real range is unbounded.
            Interval::top().with_nan(true)
        } else {
            Interval::new(lo, hi).with_nan(nan)
        }
    }

    /// Subtraction: `a - b = a + (-b)`.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Multiplication. NaN arises from `0 * ±inf`.
    pub fn mul(&self, other: &Interval) -> Interval {
        let nan = self.maybe_nan
            || other.maybe_nan
            || (self.can_be_zero() && other.has_inf())
            || (other.can_be_zero() && self.has_inf());
        if self.is_empty_range() || other.is_empty_range() {
            return Interval::bottom().with_nan(nan);
        }
        hull4(
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        .with_nan(nan)
    }

    /// Division. A divisor range containing zero widens the result to the
    /// full line (IEEE `x/0 = ±inf`, `0/0 = NaN`); `inf/inf` is NaN.
    pub fn div(&self, other: &Interval) -> Interval {
        let mut nan = self.maybe_nan || other.maybe_nan || (self.has_inf() && other.has_inf());
        if other.can_be_zero() {
            nan = nan || self.can_be_zero();
            if self.is_bottom() {
                return Interval::bottom().with_nan(nan);
            }
            return Interval::top().with_nan(nan);
        }
        if self.is_empty_range() || other.is_empty_range() {
            return Interval::bottom().with_nan(nan);
        }
        hull4(
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        )
        .with_nan(nan)
    }

    /// Remainder (`%`, IEEE `fmod`: sign of the dividend, `|r| < |y|`,
    /// `|r| <= |x|`). NaN arises from infinite dividends or zero divisors.
    ///
    /// Sign-aware: a non-negative dividend yields a non-negative
    /// remainder (and symmetrically for non-positive), and each side is
    /// further clipped by the dividend's own endpoint (`|r| <= |x|`).
    /// For a *point* divisor with a one-signed dividend the transfer is
    /// exact whenever the dividend range spans less than one period:
    /// `fmod` is exact in IEEE arithmetic, so endpoint remainders whose
    /// span equals the dividend span certify that no period boundary is
    /// crossed and `[lo % c, hi % c]` is the exact image.
    pub fn rem(&self, other: &Interval) -> Interval {
        let nan = self.maybe_nan || other.maybe_nan || self.has_inf() || other.can_be_zero();
        if self.is_empty_range() || other.is_empty_range() {
            return Interval::bottom().with_nan(nan);
        }
        let m = self.max_abs().min(other.max_abs());
        let lo = if self.lo >= 0.0 {
            0.0
        } else {
            (-m).max(self.lo)
        };
        let hi = if self.hi <= 0.0 { 0.0 } else { m.min(self.hi) };
        if !nan && other.lo == other.hi && (self.lo >= 0.0 || self.hi <= 0.0) {
            let c = other.lo;
            let (rl, rh) = (self.lo % c, self.hi % c);
            if rl <= rh && rh - rl == self.hi - self.lo {
                return Interval::new(rl, rh);
            }
        }
        Interval::new(lo, hi).with_nan(nan)
    }

    /// Boolean interval from "can the predicate be true / be false".
    fn boolean(can_true: bool, can_false: bool) -> Interval {
        match (can_true, can_false) {
            (true, true) => Interval::new(0.0, 1.0),
            (true, false) => Interval::point(1.0),
            (false, true) => Interval::point(0.0),
            (false, false) => Interval::bottom(),
        }
    }

    /// Can this operand participate in a comparison at all (has *some*
    /// concrete value)?
    fn can_exist(&self) -> bool {
        !self.is_bottom()
    }

    /// `a <= b` as a boolean interval. Comparisons never produce NaN;
    /// any NaN operand makes the comparison false.
    pub fn le(&self, other: &Interval) -> Interval {
        let reals = !self.is_empty_range() && !other.is_empty_range();
        let t = reals && self.lo <= other.hi;
        let f = (reals && self.hi > other.lo)
            || (self.maybe_nan && other.can_exist())
            || (other.maybe_nan && self.can_exist());
        Interval::boolean(t, f)
    }

    /// `a < b` as a boolean interval.
    pub fn lt(&self, other: &Interval) -> Interval {
        let reals = !self.is_empty_range() && !other.is_empty_range();
        let t = reals && self.lo < other.hi;
        let f = (reals && self.hi >= other.lo)
            || (self.maybe_nan && other.can_exist())
            || (other.maybe_nan && self.can_exist());
        Interval::boolean(t, f)
    }

    /// `a >= b` as a boolean interval.
    pub fn ge(&self, other: &Interval) -> Interval {
        other.le(self)
    }

    /// `a > b` as a boolean interval.
    pub fn gt(&self, other: &Interval) -> Interval {
        other.lt(self)
    }

    /// `a == b` as a boolean interval. False is only excluded when both
    /// sides are the same NaN-free singleton.
    pub fn eq_cmp(&self, other: &Interval) -> Interval {
        let reals = !self.is_empty_range() && !other.is_empty_range();
        let t = reals && self.lo <= other.hi && other.lo <= self.hi;
        let singleton = reals
            && self.lo == self.hi
            && other.lo == other.hi
            && self.lo == other.lo
            && !self.maybe_nan
            && !other.maybe_nan;
        let f = (self.can_exist() && other.can_exist()) && !singleton;
        Interval::boolean(t, f)
    }

    /// `a != b` as a boolean interval. Note IEEE: `NaN != y` is **true**.
    pub fn ne_cmp(&self, other: &Interval) -> Interval {
        let reals = !self.is_empty_range() && !other.is_empty_range();
        // True whenever the sides can differ, or either side can be NaN.
        let t = (reals && !(self.lo == self.hi && other.lo == other.hi && self.lo == other.lo))
            || (self.maybe_nan && other.can_exist())
            || (other.maybe_nan && self.can_exist());
        // False requires a shared real value.
        let f = reals && self.lo <= other.hi && other.lo <= self.hi;
        Interval::boolean(t, f)
    }

    /// `a && b` under the concrete semantics `x != 0.0 && y != 0.0`
    /// (NaN is truthy there).
    pub fn and(&self, other: &Interval) -> Interval {
        let t = self.truthy_possible(true) && other.truthy_possible(true);
        let f =
            (self.can_be_zero() && other.can_exist()) || (other.can_be_zero() && self.can_exist());
        Interval::boolean(t, f)
    }

    /// `a || b` under the concrete semantics `x != 0.0 || y != 0.0`.
    pub fn or(&self, other: &Interval) -> Interval {
        let t = (self.truthy_possible(true) && other.can_exist())
            || (other.truthy_possible(true) && self.can_exist());
        let f = self.can_be_zero() && other.can_be_zero();
        Interval::boolean(t, f)
    }

    /// Measure of the real range for feasible-fraction estimates: width
    /// for continuous use, `+inf` when unbounded, `0` when empty.
    pub fn width(&self) -> f64 {
        if self.is_empty_range() {
            0.0
        } else {
            self.hi - self.lo
        }
    }
}

/// Hull of four endpoint candidates, ignoring NaN candidates (those are
/// accounted for by the caller's NaN flag). All-NaN means the real range
/// is empty.
fn hull4(a: f64, b: f64, c: f64, d: f64) -> Interval {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in [a, b, c, d] {
        if !x.is_nan() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    Interval::new(lo, hi)
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty_range() {
            if self.maybe_nan {
                f.write_str("{NaN}")
            } else {
                f.write_str("(empty)")
            }
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)?;
            if self.maybe_nan {
                f.write_str(" or NaN")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn constructors_and_predicates() {
        assert!(Interval::bottom().is_bottom());
        assert!(Interval::new(1.0, 0.0).is_bottom());
        assert!(Interval::new(f64::NAN, 1.0).is_bottom());
        assert!(Interval::point(f64::NAN).maybe_nan);
        assert!(Interval::point(f64::NAN).is_empty_range());
        assert!(!Interval::point(f64::NAN).is_bottom());
        assert!(iv(-1.0, 1.0).can_be_zero());
        assert!(!iv(1.0, 2.0).can_be_zero());
        assert!(iv(0.0, 0.0).contains(0.0));
        assert!(!iv(0.0, 0.0).can_be_nonzero_real());
        assert!(iv(0.0, 1.0).can_be_nonzero_real());
        assert!(Interval::point(f64::NAN).truthy_possible(true));
        assert!(!Interval::point(f64::NAN).truthy_possible(false));
    }

    #[test]
    fn meet_and_join() {
        let a = iv(0.0, 5.0);
        let b = iv(3.0, 8.0);
        assert_eq!(a.meet(&b), iv(3.0, 5.0));
        assert_eq!(a.join(&b), iv(0.0, 8.0));
        assert!(a.meet(&iv(6.0, 7.0)).is_bottom());
        assert_eq!(Interval::bottom().join(&a), a);
    }

    #[test]
    fn arithmetic_basic() {
        assert_eq!(iv(1.0, 2.0).add(&iv(10.0, 20.0)), iv(11.0, 22.0));
        assert_eq!(iv(1.0, 2.0).sub(&iv(10.0, 20.0)), iv(-19.0, -8.0));
        assert_eq!(iv(-2.0, 3.0).mul(&iv(4.0, 5.0)), iv(-10.0, 15.0));
        assert_eq!(iv(1.0, 2.0).neg(), iv(-2.0, -1.0));
        assert_eq!(iv(8.0, 16.0).div(&iv(2.0, 4.0)), iv(2.0, 8.0));
    }

    #[test]
    fn nan_poisoning_add_mul() {
        let top_pos = iv(0.0, f64::INFINITY);
        let top_neg = iv(f64::NEG_INFINITY, 0.0);
        assert!(top_pos.add(&top_neg).maybe_nan, "inf + -inf can be NaN");
        assert!(!iv(0.0, 1.0).add(&iv(0.0, 1.0)).maybe_nan);
        let zero = iv(-1.0, 1.0);
        assert!(zero.mul(&top_pos).maybe_nan, "0 * inf can be NaN");
        assert!(!iv(1.0, 2.0).mul(&iv(3.0, 4.0)).maybe_nan);
    }

    #[test]
    fn division_by_zero_interval() {
        let r = iv(1.0, 2.0).div(&iv(-1.0, 1.0));
        assert_eq!((r.lo, r.hi), (f64::NEG_INFINITY, f64::INFINITY));
        assert!(!r.maybe_nan, "nonzero / zero is ±inf, not NaN");
        let r = iv(-1.0, 1.0).div(&iv(-1.0, 1.0));
        assert!(r.maybe_nan, "0/0 is NaN");
        // Exactly-zero divisor: same story.
        let r = iv(3.0, 3.0).div(&iv(0.0, 0.0));
        assert!(!r.maybe_nan);
        assert_eq!((r.lo, r.hi), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn rem_bounds() {
        let r = iv(0.0, 100.0).rem(&iv(1.0, 7.0));
        assert_eq!((r.lo, r.hi), (0.0, 7.0));
        assert!(!r.maybe_nan);
        let r = iv(-5.0, 100.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (-3.0, 3.0));
        assert!(iv(0.0, 1.0).rem(&iv(-1.0, 1.0)).maybe_nan, "x % 0 is NaN");
        assert!(
            iv(0.0, f64::INFINITY).rem(&iv(1.0, 2.0)).maybe_nan,
            "inf % y is NaN"
        );
    }

    #[test]
    fn rem_sign_boundaries() {
        // Mixed-sign dividend, point divisor: the remainder keeps the
        // dividend's sign, so the result spans both signs but stays
        // within one period.
        let r = iv(-5.0, 5.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (-3.0, 3.0));
        assert!(!r.maybe_nan);
        // Divisor range touching zero: NaN-poisoned, range still bounded
        // by the largest divisor magnitude.
        let r = iv(0.0, 10.0).rem(&iv(0.0, 2.0));
        assert_eq!((r.lo, r.hi), (0.0, 2.0));
        assert!(r.maybe_nan, "x % 0 reachable");
        // Non-positive dividend mirrors the non-negative case.
        let r = iv(-10.0, 0.0).rem(&iv(1.0, 7.0));
        assert_eq!((r.lo, r.hi), (-7.0, 0.0));
        // |r| <= |x| clips tighter than the divisor when the dividend is
        // small.
        let r = iv(0.0, 3.0).rem(&iv(5.0, 5.0));
        assert_eq!((r.lo, r.hi), (0.0, 3.0));
        let r = iv(-2.0, 2.0).rem(&iv(100.0, 100.0));
        assert_eq!((r.lo, r.hi), (-2.0, 2.0));
    }

    #[test]
    fn rem_point_divisor_single_period_is_exact() {
        // No period boundary crossed: exact image of the endpoints.
        let r = iv(7.0, 8.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (1.0, 2.0));
        let r = iv(-8.0, -7.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (-2.0, -1.0));
        // fmod ignores the divisor's sign.
        let r = iv(7.0, 8.0).rem(&iv(-3.0, -3.0));
        assert_eq!((r.lo, r.hi), (1.0, 2.0));
        // A boundary inside the range falls back to the sign-aware hull.
        let r = iv(2.0, 4.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (0.0, 3.0));
        // Width exactly one period: wraps, falls back.
        let r = iv(0.0, 3.0).rem(&iv(3.0, 3.0));
        assert_eq!((r.lo, r.hi), (0.0, 3.0));
    }

    #[test]
    fn comparisons() {
        assert_eq!(iv(0.0, 1.0).le(&iv(2.0, 3.0)), Interval::point(1.0));
        assert_eq!(iv(2.0, 3.0).le(&iv(0.0, 1.0)), Interval::point(0.0));
        assert_eq!(iv(0.0, 2.0).le(&iv(1.0, 3.0)), iv(0.0, 1.0));
        assert_eq!(iv(1.0, 1.0).eq_cmp(&iv(1.0, 1.0)), Interval::point(1.0));
        assert_eq!(iv(1.0, 1.0).eq_cmp(&iv(2.0, 2.0)), Interval::point(0.0));
        assert_eq!(iv(1.0, 1.0).ne_cmp(&iv(1.0, 1.0)), Interval::point(0.0));
        // NaN operand: comparison is false, but != is true.
        let nan = Interval::point(f64::NAN);
        assert_eq!(nan.le(&iv(0.0, 1.0)), Interval::point(0.0));
        assert_eq!(nan.ne_cmp(&iv(0.0, 1.0)), Interval::point(1.0));
        // Comparisons never carry NaN.
        assert!(!nan.le(&iv(0.0, 1.0)).maybe_nan);
    }

    #[test]
    fn logic_treats_nan_truthy() {
        let nan = Interval::point(f64::NAN);
        let one = Interval::point(1.0);
        let zero = Interval::point(0.0);
        assert_eq!(nan.and(&one), Interval::point(1.0));
        assert_eq!(nan.and(&zero), Interval::point(0.0));
        assert_eq!(zero.or(&nan), Interval::point(1.0));
        assert_eq!(zero.or(&zero), Interval::point(0.0));
        assert_eq!(iv(-1.0, 1.0).and(&one), iv(0.0, 1.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(iv(1.0, 2.5).to_string(), "[1, 2.5]");
        assert_eq!(Interval::bottom().to_string(), "(empty)");
        assert_eq!(Interval::point(f64::NAN).to_string(), "{NaN}");
        assert_eq!(iv(0.0, 1.0).with_nan(true).to_string(), "[0, 1] or NaN");
    }
}
