//! The octagon relational domain: conjunctions of `±x ± y ≤ c`
//! constraints represented as a difference-bound matrix (DBM).
//!
//! ## Encoding
//!
//! Each variable `x_i` contributes two vertices: `V_{2i} = +x_i` and
//! `V_{2i+1} = -x_i`. Entry `m[u][v] = c` asserts `V_v - V_u ≤ c`
//! (absent bounds are `+∞`). Every octagonal constraint becomes one or
//! two matrix entries:
//!
//! * `x_i ≤ hi`            → `m[2i+1][2i] = 2·hi` (since `x_i - (-x_i) = 2x_i`)
//! * `x_i ≥ lo`            → `m[2i][2i+1] = -2·lo`
//! * `x_i - x_j ≤ c`       → `m[2j][2i] = c` (and the coherent mirror)
//! * `x_i + x_j ≤ c`       → `m[2j+1][2i] = c` (and the mirror)
//! * `-x_i - x_j ≤ c`      → `m[2j][2i+1] = c` (and the mirror)
//!
//! ## Closure
//!
//! [`Octagon::close`] runs Floyd–Warshall shortest paths followed by the
//! octagonal *strengthening* step `m[u][v] ← min(m[u][v],
//! (m[u][ū] + m[v̄][v]) / 2)`, iterated to a fixpoint (the combination
//! propagates unary bounds through binary relations and vice versa). A
//! negative diagonal entry after closure proves the octagon empty — a
//! negative-weight cycle means some `V_u - V_u < 0`.
//!
//! ## Floating-point soundness
//!
//! Closure arithmetic rounds to nearest, which can tighten a bound by a
//! fraction of an ulp below its real-arithmetic value. All *derived*
//! constants handed back to the interval layer ([`Octagon::var_interval`],
//! [`Octagon::sum_bound`], [`Octagon::diff_bound`]) and all constants
//! computed during atom extraction (divisions, the product relaxation) are
//! therefore widened outward by the same relative slack the backward
//! interval transfer functions use.

use super::contract::slack_up;
use super::interval::Interval;
use crate::expr::{BinOp, Expr};
use std::collections::BTreeMap;

/// Closure sweeps cap. Each sweep is a full Floyd–Warshall plus a
/// strengthening pass; entries only ever decrease, and on real workloads
/// the fixpoint lands in one or two sweeps. The cap only bounds work on
/// adversarial inputs — stopping early is sound (just less precise).
const CLOSE_CAP: usize = 8;

/// One octagonal constraint over variable *indices* (the caller maps
/// names to indices). Signs are `+1` / `-1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OctAtom {
    /// `s·x_i ≤ c`.
    One { i: usize, s: i8, c: f64 },
    /// `si·x_i + sj·x_j ≤ c` with `i ≠ j`. `derived` marks bounds the
    /// extractor *inferred* (e.g. the product relaxation) rather than
    /// restated from a literal linear constraint; the `A006` diagnostic
    /// only reports genuinely inferred relations.
    Two {
        i: usize,
        si: i8,
        j: usize,
        sj: i8,
        c: f64,
        derived: bool,
    },
    /// The constraint folds to a constant falsehood (e.g. `a - a >= 1`):
    /// the whole box is infeasible.
    False,
}

/// A difference-bound matrix over `2n` vertices (see module docs).
#[derive(Debug, Clone)]
pub struct Octagon {
    n: usize,
    m: Vec<f64>,
}

impl Octagon {
    /// The top octagon over `n` variables: no constraints.
    pub fn top(n: usize) -> Octagon {
        let d = 2 * n;
        let mut m = vec![f64::INFINITY; d * d];
        for u in 0..d {
            m[u * d + u] = 0.0;
        }
        Octagon { n, m }
    }

    /// An octagon holding the box constraints of `bounds` (one interval
    /// per variable, in index order). An already-empty interval poisons
    /// the octagon.
    pub fn from_box(bounds: &[Interval]) -> Octagon {
        let mut o = Octagon::top(bounds.len());
        for (i, iv) in bounds.iter().enumerate() {
            if iv.is_empty_range() {
                o.poison();
                continue;
            }
            o.add_atom(&OctAtom::One { i, s: 1, c: iv.hi });
            o.add_atom(&OctAtom::One {
                i,
                s: -1,
                c: -iv.lo,
            });
        }
        o
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, u: usize, v: usize) -> usize {
        u * 2 * self.n + v
    }

    /// Record `V_v - V_u ≤ c` if it tightens the current entry.
    /// Non-finite constants are ignored (`+∞` is a no-op and `-∞`/NaN
    /// would poison the arithmetic).
    fn tighten(&mut self, u: usize, v: usize, c: f64) {
        if c.is_finite() {
            let k = self.at(u, v);
            if c < self.m[k] {
                self.m[k] = c;
            }
        }
    }

    /// Force emptiness (a self-loop of negative weight).
    fn poison(&mut self) {
        if self.n > 0 {
            let k = self.at(0, 0);
            self.m[k] = -1.0;
        }
    }

    /// Add one octagonal constraint.
    pub fn add_atom(&mut self, a: &OctAtom) {
        match *a {
            OctAtom::One { i, s, c } => {
                if i >= self.n {
                    return;
                }
                // s·x_i ≤ c  ⇔  V_a - V_ā ≤ 2c with V_a = s·x_i.
                let va = if s > 0 { 2 * i } else { 2 * i + 1 };
                self.tighten(va ^ 1, va, 2.0 * c);
            }
            OctAtom::Two {
                i, si, j, sj, c, ..
            } => {
                if i >= self.n || j >= self.n || i == j {
                    return;
                }
                // si·x_i + sj·x_j ≤ c  ⇔  V_a - V_b ≤ c with
                // V_a = si·x_i and V_b = -sj·x_j.
                let va = if si > 0 { 2 * i } else { 2 * i + 1 };
                let vb = if sj > 0 { 2 * j + 1 } else { 2 * j };
                self.tighten(vb, va, c);
                self.tighten(va ^ 1, vb ^ 1, c);
            }
            OctAtom::False => self.poison(),
        }
    }

    /// Shortest-path closure with octagonal strengthening (see module
    /// docs). Idempotent up to the sweep cap; sound at any cut-off.
    pub fn close(&mut self) {
        let d = 2 * self.n;
        for _ in 0..CLOSE_CAP {
            let mut changed = false;
            // Floyd–Warshall.
            for k in 0..d {
                for u in 0..d {
                    let muk = self.m[self.at(u, k)];
                    if !muk.is_finite() {
                        continue; // +∞ never shortens; -∞ only on negative cycles
                    }
                    for v in 0..d {
                        let cand = muk + self.m[self.at(k, v)];
                        let slot = self.at(u, v);
                        if cand < self.m[slot] {
                            self.m[slot] = cand;
                            changed = true;
                        }
                    }
                }
            }
            // Strengthening: combine the two unary bounds on a path
            // u → ū and v̄ → v. (A NaN candidate — only reachable via
            // ±∞ mixtures — compares false and is skipped.)
            for u in 0..d {
                for v in 0..d {
                    let cand = (self.m[self.at(u, u ^ 1)] + self.m[self.at(v ^ 1, v)]) / 2.0;
                    let slot = self.at(u, v);
                    if cand < self.m[slot] {
                        self.m[slot] = cand;
                        changed = true;
                    }
                }
            }
            if !changed || self.is_empty() {
                break;
            }
        }
    }

    /// Is the octagon empty? Meaningful after [`Octagon::close`] (a
    /// negative diagonal entry is a negative-weight cycle).
    pub fn is_empty(&self) -> bool {
        let d = 2 * self.n;
        (0..d).any(|u| self.m[self.at(u, u)] < 0.0)
    }

    /// The interval implied for `x_i`, outward-widened for float
    /// soundness. Meaningful after [`Octagon::close`].
    pub fn var_interval(&self, i: usize) -> Interval {
        if i >= self.n {
            return Interval::top();
        }
        let hi = self.m[self.at(2 * i + 1, 2 * i)] / 2.0;
        let lo = -self.m[self.at(2 * i, 2 * i + 1)] / 2.0;
        Interval::new(-slack_up(-lo), slack_up(hi))
    }

    /// Bounds on `x_i + x_j` (outward-widened). `[-∞, +∞]` when nothing
    /// is known.
    pub fn sum_bound(&self, i: usize, j: usize) -> Interval {
        if i >= self.n || j >= self.n || i == j {
            return Interval::top();
        }
        let hi = self.m[self.at(2 * j + 1, 2 * i)];
        let lo = -self.m[self.at(2 * j, 2 * i + 1)];
        Interval::new(-slack_up(-lo), slack_up(hi))
    }

    /// Bounds on `x_i - x_j` (outward-widened). For `i == j` the DBM
    /// diagonal yields exactly `[0, 0]` — the relational answer the
    /// interval domain cannot give.
    pub fn diff_bound(&self, i: usize, j: usize) -> Interval {
        if i >= self.n || j >= self.n {
            return Interval::top();
        }
        if i == j {
            return Interval::point(0.0);
        }
        let hi = self.m[self.at(2 * j, 2 * i)];
        let lo = -self.m[self.at(2 * i, 2 * j)];
        Interval::new(-slack_up(-lo), slack_up(hi))
    }

    /// In-place join (least upper bound): entrywise max. Both octagons
    /// should be closed; the result over-approximates their union.
    pub fn join_with(&mut self, other: &Octagon) {
        debug_assert_eq!(self.n, other.n);
        if self.n != other.n {
            return;
        }
        for (a, b) in self.m.iter_mut().zip(&other.m) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

/// A linear form `Σ coeff_k · x_k + c` over variable indices.
/// `None` when the expression is not (recognisably) linear.
fn linear_form(e: &Expr, idx: &BTreeMap<&str, usize>) -> Option<(BTreeMap<usize, f64>, f64)> {
    match e {
        Expr::Num(x) => x.is_finite().then(|| (BTreeMap::new(), *x)),
        Expr::Var(n) => {
            let i = idx.get(n.as_str())?;
            Some(([(*i, 1.0)].into_iter().collect(), 0.0))
        }
        Expr::Neg(inner) => {
            let (mut coeffs, c) = linear_form(inner, idx)?;
            for v in coeffs.values_mut() {
                *v = -*v;
            }
            Some((coeffs, -c))
        }
        Expr::Bin(BinOp::Add, a, b) | Expr::Bin(BinOp::Sub, a, b) => {
            let (mut ca, ka) = linear_form(a, idx)?;
            let (cb, kb) = linear_form(b, idx)?;
            let sign = if matches!(e, Expr::Bin(BinOp::Add, _, _)) {
                1.0
            } else {
                -1.0
            };
            for (i, v) in cb {
                *ca.entry(i).or_insert(0.0) += sign * v;
            }
            ca.retain(|_, v| *v != 0.0);
            Some((ca, ka + sign * kb))
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            let fa = linear_form(a, idx);
            let fb = linear_form(b, idx);
            match (fa, fb) {
                (Some((ca, ka)), Some((cb, kb))) if ca.is_empty() => scale(cb, kb, ka),
                (Some((ca, ka)), Some((cb, kb))) if cb.is_empty() => scale(ca, ka, kb),
                _ => None,
            }
        }
        Expr::Bin(BinOp::Div, a, b) => {
            let (ca, ka) = linear_form(a, idx)?;
            let (cb, kb) = linear_form(b, idx)?;
            if cb.is_empty() && kb != 0.0 && kb.is_finite() {
                scale(ca, ka, 1.0 / kb)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn scale(mut coeffs: BTreeMap<usize, f64>, k: f64, s: f64) -> Option<(BTreeMap<usize, f64>, f64)> {
    if !s.is_finite() {
        return None;
    }
    for v in coeffs.values_mut() {
        *v *= s;
    }
    coeffs.retain(|_, v| *v != 0.0);
    let c = k * s;
    c.is_finite().then_some((coeffs, c))
}

/// Push `Σ coeffs·x ≤ bound` as octagonal atoms. Coefficients must have
/// equal magnitude for a two-variable atom; anything wider is skipped.
fn emit(coeffs: &BTreeMap<usize, f64>, bound: f64, out: &mut Vec<OctAtom>) {
    if !bound.is_finite() && bound != f64::INFINITY {
        return; // NaN or -∞ constants carry no usable information
    }
    let entries: Vec<(usize, f64)> = coeffs.iter().map(|(i, v)| (*i, *v)).collect();
    match entries.as_slice() {
        // 0 ≤ bound: constant truth or falsehood. A small slack keeps
        // constant-folding rounding from fabricating an infeasibility.
        [] if bound < -(1e-9 * bound.abs().max(1.0)) => out.push(OctAtom::False),
        [] => {}
        [(i, a)] => {
            if *a > 0.0 {
                out.push(OctAtom::One {
                    i: *i,
                    s: 1,
                    c: slack_up(bound / a),
                });
            } else if *a < 0.0 {
                out.push(OctAtom::One {
                    i: *i,
                    s: -1,
                    c: slack_up(bound / -a),
                });
            }
        }
        [(i, a), (j, b)] if a.abs() == b.abs() && *a != 0.0 => {
            out.push(OctAtom::Two {
                i: *i,
                si: if *a > 0.0 { 1 } else { -1 },
                j: *j,
                sj: if *b > 0.0 { 1 } else { -1 },
                c: slack_up(bound / a.abs()),
                derived: false,
            });
        }
        _ => {}
    }
}

/// McCormick-style relaxation of `x·y ≤ c` over a box with non-negative
/// lower bounds `lx, ly` (with `min(lx, ly) > 0`):
///
/// `(x - lx)(y - ly) ≥ 0` gives `ly·x + lx·y ≤ c + lx·ly`, and since
/// `min(lx, ly) ≤ lx, ly` with `x, y ≥ 0`, this weakens to
/// `x + y ≤ (c + lx·ly) / min(lx, ly)` — a *relational* bound no single
/// interval can express.
fn product_relaxation(
    a: &Expr,
    b: &Expr,
    c: f64,
    idx: &BTreeMap<&str, usize>,
    bounds: &[Interval],
) -> Option<OctAtom> {
    let (Expr::Var(na), Expr::Var(nb)) = (a, b) else {
        return None;
    };
    let i = *idx.get(na.as_str())?;
    let j = *idx.get(nb.as_str())?;
    if i == j || !c.is_finite() {
        return None;
    }
    let (lx, ly) = (bounds.get(i)?.lo, bounds.get(j)?.lo);
    let mn = lx.min(ly);
    if !(lx >= 0.0 && ly >= 0.0 && mn > 0.0 && lx.is_finite() && ly.is_finite()) {
        return None;
    }
    Some(OctAtom::Two {
        i,
        si: 1,
        j,
        sj: 1,
        c: slack_up((c + lx * ly) / mn),
        derived: true,
    })
}

/// Extract the octagonal atoms implied by asserting `e` true. Handles
/// conjunctions, linear comparisons (strict comparisons relax to their
/// closed forms — sound for contraction), equalities (both directions)
/// and the product relaxation for `x·y ≤ c` shapes. `Or` nodes contribute
/// nothing here — the branch-and-prune splitter owns disjunctions.
pub fn octagonal_atoms(e: &Expr, idx: &BTreeMap<&str, usize>, bounds: &[Interval]) -> Vec<OctAtom> {
    let mut out = Vec::new();
    collect_atoms(e, idx, bounds, &mut out);
    out
}

fn collect_atoms(
    e: &Expr,
    idx: &BTreeMap<&str, usize>,
    bounds: &[Interval],
    out: &mut Vec<OctAtom>,
) {
    let Expr::Bin(op, a, b) = e else {
        return;
    };
    match op {
        BinOp::And => {
            collect_atoms(a, idx, bounds, out);
            collect_atoms(b, idx, bounds, out);
        }
        BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt | BinOp::Eq => {
            let la = linear_form(a, idx);
            let lb = linear_form(b, idx);
            if let (Some((ca, ka)), Some((cb, kb))) = (la, lb) {
                // lhs ≤ rhs  ⇔  Σ(ca - cb)·x ≤ kb - ka.
                let mut diff = ca;
                for (i, v) in cb {
                    *diff.entry(i).or_insert(0.0) -= v;
                }
                diff.retain(|_, v| *v != 0.0);
                let neg = |m: &BTreeMap<usize, f64>| m.iter().map(|(i, v)| (*i, -*v)).collect();
                match op {
                    BinOp::Le | BinOp::Lt => emit(&diff, kb - ka, out),
                    BinOp::Ge | BinOp::Gt => emit(&neg(&diff), ka - kb, out),
                    BinOp::Eq => {
                        emit(&diff, kb - ka, out);
                        emit(&neg(&diff), ka - kb, out);
                    }
                    _ => {}
                }
            } else {
                // Not linear: try the product relaxation on `x*y ≤ c`
                // (or its mirrored `c ≥ x*y`).
                let upper = match op {
                    BinOp::Le | BinOp::Lt => const_product(a, b, idx),
                    BinOp::Ge | BinOp::Gt => const_product(b, a, idx),
                    _ => None,
                };
                if let Some((x, y, c)) = upper {
                    if let Some(atom) = product_relaxation(x, y, c, idx, bounds) {
                        out.push(atom);
                    }
                }
            }
        }
        _ => {}
    }
}

/// Match `lhs = x*y` against a constant-valued `rhs`, returning the two
/// factors and the folded constant.
fn const_product<'e>(
    lhs: &'e Expr,
    rhs: &Expr,
    idx: &BTreeMap<&str, usize>,
) -> Option<(&'e Expr, &'e Expr, f64)> {
    let Expr::Bin(BinOp::Mul, x, y) = lhs else {
        return None;
    };
    let (coeffs, c) = linear_form(rhs, idx)?;
    coeffs.is_empty().then_some((x.as_ref(), y.as_ref(), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn idx(names: &[&'static str]) -> BTreeMap<&'static str, usize> {
        names.iter().enumerate().map(|(i, n)| (*n, i)).collect()
    }

    fn boxed(bounds: &[(f64, f64)]) -> Vec<Interval> {
        bounds
            .iter()
            .map(|(lo, hi)| Interval::new(*lo, *hi))
            .collect()
    }

    #[test]
    fn x_minus_x_is_exactly_zero() {
        // The relational answer the interval domain cannot give: the DBM
        // diagonal pins x - x to [0, 0] with no closure needed.
        let o = Octagon::from_box(&boxed(&[(0.0, 100.0)]));
        let d = o.diff_bound(0, 0);
        assert_eq!((d.lo, d.hi), (0.0, 0.0));
    }

    #[test]
    fn x_minus_x_constraint_folds_to_false() {
        // `a - a >= 1` normalises to `0 ≥ 1`: constant falsehood.
        let e = parse("a - a >= 1").unwrap();
        let atoms = octagonal_atoms(&e, &idx(&["a"]), &boxed(&[(0.0, 10.0)]));
        assert_eq!(atoms, vec![OctAtom::False]);
        let mut o = Octagon::from_box(&boxed(&[(0.0, 10.0)]));
        for a in &atoms {
            o.add_atom(a);
        }
        o.close();
        assert!(o.is_empty());
    }

    #[test]
    fn closure_combines_sum_and_difference() {
        // a + b <= 10 and a - b <= 2 imply 2a <= 12, i.e. a <= 6 — a
        // bound HC4 cannot reach (it sees a <= 10 at best).
        let names = idx(&["a", "b"]);
        let bounds = boxed(&[(0.0, 100.0), (0.0, 100.0)]);
        let mut o = Octagon::from_box(&bounds);
        for src in ["a + b <= 10", "a - b <= 2"] {
            for atom in octagonal_atoms(&parse(src).unwrap(), &names, &bounds) {
                o.add_atom(&atom);
            }
        }
        o.close();
        assert!(!o.is_empty());
        let a = o.var_interval(0);
        assert!(a.hi >= 6.0 && a.hi < 6.0 + 1e-6, "a.hi ~ 6, got {}", a.hi);
    }

    #[test]
    fn negative_cycle_proves_empty() {
        // x - y <= -10 and y - x <= -10: a negative cycle the interval
        // fixpoint can only chase by shrinking 20 units per pass.
        let names = idx(&["x", "y"]);
        let bounds = boxed(&[(0.0, 1e9), (0.0, 1e9)]);
        let mut o = Octagon::from_box(&bounds);
        for src in ["x - y <= -10", "y - x <= -10"] {
            for atom in octagonal_atoms(&parse(src).unwrap(), &names, &bounds) {
                o.add_atom(&atom);
            }
        }
        o.close();
        assert!(o.is_empty());
    }

    #[test]
    fn product_relaxation_matches_hand_computation() {
        // g1 * zc <= 16384 over [32, 512]^2: the relaxation gives
        // g1 + zc <= (16384 + 32*32) / 32 = 544 — far below the
        // box-implied 1024.
        let names = idx(&["g1", "zc"]);
        let bounds = boxed(&[(32.0, 512.0), (32.0, 512.0)]);
        let e = parse("g1 * zc <= 16384").unwrap();
        let atoms = octagonal_atoms(&e, &names, &bounds);
        assert_eq!(atoms.len(), 1);
        let mut o = Octagon::from_box(&bounds);
        o.add_atom(&atoms[0]);
        o.close();
        let s = o.sum_bound(0, 1);
        assert!(s.hi >= 544.0 && s.hi < 544.0 + 1e-6, "sum hi {}", s.hi);
        assert!(matches!(atoms[0], OctAtom::Two { derived: true, .. }));
    }

    #[test]
    fn product_relaxation_requires_positive_lower_bounds() {
        let names = idx(&["x", "y"]);
        let e = parse("x * y <= 100").unwrap();
        // Zero lower bound: relaxation unavailable (division by min = 0).
        assert!(octagonal_atoms(&e, &names, &boxed(&[(0.0, 10.0), (1.0, 10.0)])).is_empty());
        // Negative lower bound: the sign argument breaks down.
        assert!(octagonal_atoms(&e, &names, &boxed(&[(-1.0, 10.0), (1.0, 10.0)])).is_empty());
    }

    #[test]
    fn linear_extraction_handles_scaling_and_conjunction() {
        let names = idx(&["a", "b"]);
        let bounds = boxed(&[(0.0, 100.0), (0.0, 100.0)]);
        // Scaled two-var form: 2a + 2b <= 20 normalises to a + b <= 10.
        let e = parse("2 * a + 2 * b <= 20").unwrap();
        let atoms = octagonal_atoms(&e, &names, &bounds);
        assert_eq!(atoms.len(), 1);
        match atoms[0] {
            OctAtom::Two {
                si, sj, c, derived, ..
            } => {
                assert_eq!((si, sj), (1, 1));
                assert!((c - 10.0).abs() < 1e-9, "c = {c}");
                assert!(!derived);
            }
            other => panic!("expected Two, got {other:?}"),
        }
        // Conjunctions split into their atoms.
        let e = parse("a <= 5 && a - b >= 1").unwrap();
        assert_eq!(octagonal_atoms(&e, &names, &bounds).len(), 2);
        // Unequal coefficient magnitudes are not octagonal.
        let e = parse("a + 2 * b <= 10").unwrap();
        assert!(octagonal_atoms(&e, &names, &bounds).is_empty());
        // Disjunctions are the splitter's business.
        let e = parse("a <= 1 || a >= 9").unwrap();
        assert!(octagonal_atoms(&e, &names, &bounds).is_empty());
    }

    #[test]
    fn strict_comparisons_relax_to_closed_bounds() {
        let names = idx(&["a"]);
        let bounds = boxed(&[(0.0, 10.0)]);
        let e = parse("a < 4").unwrap();
        let atoms = octagonal_atoms(&e, &names, &bounds);
        match atoms.as_slice() {
            [OctAtom::One { s: 1, c, .. }] => assert!(*c >= 4.0 && *c < 4.0 + 1e-9),
            other => panic!("unexpected atoms {other:?}"),
        }
    }

    #[test]
    fn equality_emits_both_directions() {
        let names = idx(&["a", "b"]);
        let bounds = boxed(&[(0.0, 10.0), (0.0, 10.0)]);
        let e = parse("a - b == 3").unwrap();
        let atoms = octagonal_atoms(&e, &names, &bounds);
        assert_eq!(atoms.len(), 2);
        let mut o = Octagon::from_box(&bounds);
        for a in &atoms {
            o.add_atom(a);
        }
        o.close();
        let d = o.diff_bound(0, 1);
        assert!(
            (d.lo - 3.0).abs() < 1e-6 && (d.hi - 3.0).abs() < 1e-6,
            "{d}"
        );
    }

    #[test]
    fn join_encloses_both_operands() {
        let bounds = boxed(&[(0.0, 10.0)]);
        let mut a = Octagon::from_box(&bounds);
        a.add_atom(&OctAtom::One { i: 0, s: 1, c: 1.0 }); // x <= 1
        a.close();
        let mut b = Octagon::from_box(&bounds);
        b.add_atom(&OctAtom::One {
            i: 0,
            s: -1,
            c: -9.0,
        }); // x >= 9
        b.close();
        a.join_with(&b);
        let iv = a.var_interval(0);
        assert!(iv.lo <= 0.0 && iv.hi >= 10.0 - 1e-9, "{iv}");
    }

    #[test]
    fn var_interval_tightens_through_closure() {
        // Box [0, 100] plus x <= 7 via atom: closure keeps the tighter.
        let bounds = boxed(&[(0.0, 100.0)]);
        let mut o = Octagon::from_box(&bounds);
        o.add_atom(&OctAtom::One { i: 0, s: 1, c: 7.0 });
        o.close();
        let iv = o.var_interval(0);
        assert!(iv.hi >= 7.0 && iv.hi < 7.0 + 1e-9, "{iv}");
        assert!(iv.lo <= 0.0 && iv.lo > -1e-9, "{iv}");
    }
}
