//! Disjunctive branch-and-prune: expand the `Or` structure of a
//! constraint set into a bounded set of conjunctive branches.
//!
//! HC4-revise handles `a <= 1 || a >= 9` with the vacuous hull — neither
//! side is refutable, so nothing narrows. Branch-and-prune instead
//! rewrites the constraint set into (bounded) disjunctive normal form:
//! each branch is a plain conjunction, contracts to its own fixpoint, and
//! the per-parameter results join into a *union of slabs* whose hull is
//! still sound but whose structure the samplers can exploit.
//!
//! The expansion is capped at [`SPLIT_CAP`] branches. A constraint whose
//! expansion would blow the cap stays un-split inside every existing
//! branch — sound (the weak `Or` contraction still applies), just less
//! precise — and the driver reports the cap via diagnostic `A008`.

use super::interval::Interval;
use crate::expr::{BinOp, Expr};
use cets_space::ParamDef;

/// Default maximum number of disjunctive branches explored per analysis.
/// Every branch pays a full interval fixpoint plus an octagon closure, so
/// the cap bounds analysis cost on adversarial `Or` towers.
pub const SPLIT_CAP: usize = 16;

/// Expand `exprs` into conjunctive branches (bounded DNF). Returns the
/// branch list and whether any expansion hit the cap. With no `Or` nodes
/// the result is the single original conjunction.
pub fn dnf_branches(exprs: &[&Expr], cap: usize) -> (Vec<Vec<Expr>>, bool) {
    let cap = cap.max(1);
    let mut branches: Vec<Vec<Expr>> = vec![Vec::new()];
    let mut capped = false;
    for e in exprs {
        let (alts, c) = alternatives(e, cap);
        capped |= c;
        if alts.len() <= 1 || branches.len() * alts.len() > cap {
            if alts.len() > 1 {
                capped = true;
            }
            for b in &mut branches {
                b.push((*e).clone());
            }
            continue;
        }
        let mut next = Vec::with_capacity(branches.len() * alts.len());
        for b in &branches {
            for alt in &alts {
                let mut nb = b.clone();
                nb.extend(alt.iter().cloned());
                next.push(nb);
            }
        }
        branches = next;
    }
    (branches, capped)
}

/// The alternative conjunctions of one constraint: DNF of its `Or`/`And`
/// shell, with leaves kept opaque. Capped; a sub-expression whose
/// expansion exceeds `cap` collapses back to itself as a single opaque
/// alternative.
fn alternatives(e: &Expr, cap: usize) -> (Vec<Vec<Expr>>, bool) {
    match e {
        Expr::Bin(BinOp::Or, a, b) => {
            let (mut la, ca) = alternatives(a, cap);
            let (lb, cb) = alternatives(b, cap);
            if la.len() + lb.len() > cap {
                return (vec![vec![e.clone()]], true);
            }
            la.extend(lb);
            (la, ca || cb)
        }
        Expr::Bin(BinOp::And, a, b) => {
            let (la, ca) = alternatives(a, cap);
            let (lb, cb) = alternatives(b, cap);
            if la.len() * lb.len() > cap {
                return (vec![vec![e.clone()]], true);
            }
            let mut out = Vec::with_capacity(la.len() * lb.len());
            for x in &la {
                for y in &lb {
                    let mut v = x.clone();
                    v.extend(y.iter().cloned());
                    out.push(v);
                }
            }
            (out, ca || cb)
        }
        _ => (vec![vec![e.clone()]], false),
    }
}

/// Merge a list of per-branch intervals into a minimal sorted union of
/// disjoint slabs. Merging is domain-aware: two integer (or categorical
/// index) slabs separated by a gap smaller than one representable value
/// are contiguous, and two ordinal slabs merge when no declared value
/// lies strictly between them — so the slab list never fabricates a gap
/// that contains no representable point.
pub(crate) fn merge_slabs(def: Option<&ParamDef>, mut ivs: Vec<Interval>) -> Vec<Interval> {
    ivs.retain(|iv| !iv.is_empty_range());
    ivs.sort_by(|a, b| a.lo.total_cmp(&b.lo).then(a.hi.total_cmp(&b.hi)));
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if !gap_has_point(def, last.hi, iv.lo) => {
                if iv.hi > last.hi {
                    *last = Interval::new(last.lo, iv.hi);
                }
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Is there a representable value strictly between `hi` and `lo` (the gap
/// between two candidate slabs)? When not, the slabs are contiguous.
fn gap_has_point(def: Option<&ParamDef>, hi: f64, lo: f64) -> bool {
    if lo <= hi {
        return false; // overlapping or touching
    }
    match def {
        Some(ParamDef::Integer { .. }) | Some(ParamDef::Categorical { .. }) => {
            // Snapped integer slabs have integral endpoints; a gap is real
            // only if it contains an integer strictly between them.
            lo - hi > 1.0 + 1e-9
        }
        Some(ParamDef::Ordinal { values }) => values.iter().any(|v| *v > hi && *v < lo),
        _ => true, // reals: any positive gap is real
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn branches_of(srcs: &[&str], cap: usize) -> (Vec<Vec<Expr>>, bool) {
        let exprs: Vec<Expr> = srcs.iter().map(|s| parse(s).unwrap()).collect();
        let refs: Vec<&Expr> = exprs.iter().collect();
        dnf_branches(&refs, cap)
    }

    #[test]
    fn no_or_yields_single_branch() {
        let (b, capped) = branches_of(&["a <= 1", "b >= 2"], 16);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 2);
        assert!(!capped);
    }

    #[test]
    fn simple_or_splits_in_two() {
        let (b, capped) = branches_of(&["a <= 1 || a >= 9"], 16);
        assert_eq!(b.len(), 2);
        assert!(!capped);
    }

    #[test]
    fn ors_multiply_across_constraints() {
        let (b, capped) = branches_of(&["a <= 1 || a >= 9", "b <= 2 || b >= 8"], 16);
        assert_eq!(b.len(), 4);
        assert!(!capped);
    }

    #[test]
    fn and_distributes_over_or() {
        // (p || q) && r  →  {p, r}, {q, r}.
        let (b, capped) = branches_of(&["(a <= 1 || a >= 9) && b <= 5"], 16);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|br| br.len() == 2));
        assert!(!capped);
    }

    #[test]
    fn cap_keeps_constraint_unsplit() {
        // 2 * 2 * 2 = 8 branches would exceed a cap of 4: the third
        // disjunction stays opaque in all four branches.
        let (b, capped) = branches_of(
            &["a <= 1 || a >= 9", "b <= 1 || b >= 9", "c <= 1 || c >= 9"],
            4,
        );
        assert_eq!(b.len(), 4);
        assert!(capped);
        assert!(b.iter().all(|br| br.len() == 3));
    }

    #[test]
    fn merge_slabs_joins_touching_and_keeps_gaps() {
        let slabs = merge_slabs(
            None,
            vec![
                Interval::new(9.0, 10.0),
                Interval::new(0.0, 1.0),
                Interval::new(0.5, 2.0),
            ],
        );
        assert_eq!(slabs.len(), 2);
        assert_eq!((slabs[0].lo, slabs[0].hi), (0.0, 2.0));
        assert_eq!((slabs[1].lo, slabs[1].hi), (9.0, 10.0));
    }

    #[test]
    fn merge_slabs_is_domain_aware() {
        let int = ParamDef::Integer { lo: 0, hi: 10 };
        // {0..1} and {2..5} are contiguous integers: one slab.
        let slabs = merge_slabs(
            Some(&int),
            vec![Interval::new(0.0, 1.0), Interval::new(2.0, 5.0)],
        );
        assert_eq!(slabs.len(), 1);
        // {0..1} and {9..10} are not.
        let slabs = merge_slabs(
            Some(&int),
            vec![Interval::new(0.0, 1.0), Interval::new(9.0, 10.0)],
        );
        assert_eq!(slabs.len(), 2);
        // Ordinal: no declared value between 4 and 16 → contiguous.
        let ord = ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0, 16.0, 32.0],
        };
        let slabs = merge_slabs(
            Some(&ord),
            vec![Interval::new(1.0, 4.0), Interval::new(16.0, 32.0)],
        );
        assert_eq!(slabs.len(), 1);
    }
}
