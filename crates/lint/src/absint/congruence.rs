//! The congruence abstract domain (Granger): `x ≡ r (mod m)` lattice
//! over the integers, run as a reduced product with the interval
//! analysis.
//!
//! ## Elements
//!
//! * `Top` — no congruence information (any real value, even NaN).
//! * `Point(p)` — the value is exactly the integer `p`.
//! * `Grid { m, r }` — the value lies on the arithmetic progression
//!   `mℤ + r` (with `m ≥ 1` and `0 ≤ r < m`). `Grid { m: 1, r: 0 }`
//!   is "some integer".
//! * `Bottom` — no value satisfies the accumulated congruences.
//!
//! ## Where facts come from
//!
//! The constraint language's `%` is IEEE `fmod` (truncated remainder):
//! for any real `x` and nonzero `c`, `x % c == k` forces
//! `x = c·trunc(x/c) + k`, i.e. `x ∈ cℤ + k` — the quotient is an
//! integer even when `x` is real-valued. [`constraint_facts`] scans a
//! constraint for `sub % d == k` conjuncts whose divisor and target
//! evaluate to exact integer points under the current interval
//! environment (so a divisor *pinned* by another constraint, like
//! `nb == 256`, works), and pushes the resulting grid down the
//! subexpression through `+`, `-`, unary `-` and `*`-by-constant.
//!
//! ## Reduction with intervals
//!
//! [`Congruence::tighten`] snaps interval endpoints inward to the
//! nearest congruent point — exact integer arithmetic, no rounding
//! slack needed because the snap only ever moves bounds *inward to a
//! member of the grid*, never past one — and proves emptiness when no
//! residue fits the interval. [`refine_branch`] runs the loop
//! facts → tighten → re-contract to a small fixpoint.
//!
//! ## Soundness notes
//!
//! * Division by a constant ([`Congruence::div_exact`], the backward
//!   inverse of `*`) assumes an *integer-valued* operand; the real
//!   solutions of `c·x ≡ r (mod m)` need not be integers. Facts are
//!   therefore only *applied* (tightened) to `Integer`-kind parameters;
//!   grids pushed through `+`/`-` alone are sound for reals too, but the
//!   uniform rule keeps the reduction obviously safe.
//! * All arithmetic is exact `i64`/`i128`; anything that could exceed
//!   2^53 (the f64-exact range) or overflow widens to `Top`.

use super::contract::contract_from;
use super::interval::Interval;
use crate::expr::{BinOp, Expr};
use cets_space::ParamDef;
use std::collections::BTreeMap;

/// Largest integer magnitude we trust to round-trip through `f64`.
const MAX_EXACT: i64 = 1 << 53;

/// Fixpoint rounds for the facts → tighten → re-contract loop.
const CONG_ROUNDS: usize = 4;

/// One element of the congruence lattice. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Congruence {
    /// No congruence information.
    Top,
    /// Exactly the integer `p`.
    Point(i64),
    /// The progression `mℤ + r` with `m ≥ 1`, `0 ≤ r < m`.
    Grid {
        /// Modulus (stride of the progression), at least 1.
        m: u64,
        /// Residue, strictly less than `m`.
        r: u64,
    },
    /// Unsatisfiable.
    Bottom,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclid on non-negative inputs: returns `(g, x, y)` with
/// `a·x + b·y = g = gcd(a, b)`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of `a` mod `m` (requires `gcd(a, m) == 1`, `m >= 2`).
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = ext_gcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(m as i128) as u64)
}

impl Congruence {
    /// Canonical grid constructor: normalizes the residue, collapses
    /// `m == 0` (a degenerate "progression" with a single member) to a
    /// point.
    pub fn grid(m: u64, r: i64) -> Congruence {
        if m == 0 {
            return Congruence::Point(r);
        }
        if m > MAX_EXACT as u64 {
            return Congruence::Top; // residue arithmetic would overflow
        }
        Congruence::Grid {
            m,
            r: r.rem_euclid(m as i64) as u64,
        }
    }

    /// The congruence of a known constant: a `Point` when the value is
    /// an exactly-representable integer, `Top` otherwise.
    pub fn constant(v: f64) -> Congruence {
        if v.is_finite() && v.fract() == 0.0 && v.abs() < MAX_EXACT as f64 {
            Congruence::Point(v as i64)
        } else {
            Congruence::Top
        }
    }

    /// `(m, r)` when this is a grid with a non-trivial stride.
    pub fn as_stride(&self) -> Option<(u64, u64)> {
        match self {
            Congruence::Grid { m, r } if *m >= 2 => Some((*m, *r)),
            _ => None,
        }
    }

    /// Least upper bound (sound for set union).
    pub fn join(&self, other: &Congruence) -> Congruence {
        use Congruence::*;
        match (*self, *other) {
            (Bottom, x) | (x, Bottom) => x,
            (Top, _) | (_, Top) => Top,
            (Point(a), Point(b)) => {
                if a == b {
                    Point(a)
                } else {
                    Congruence::grid(a.abs_diff(b), a)
                }
            }
            (Point(p), Grid { m, r }) | (Grid { m, r }, Point(p)) => {
                let d = (p - r as i64).unsigned_abs();
                Congruence::grid(gcd(m, d), r as i64)
            }
            (Grid { m: m1, r: r1 }, Grid { m: m2, r: r2 }) => {
                let d = (r1 as i64).abs_diff(r2 as i64);
                Congruence::grid(gcd(gcd(m1, m2), d), r1 as i64)
            }
        }
    }

    /// Greatest lower bound (CRT). On modulus overflow the meet returns
    /// `self` unchanged — an over-approximation of the true
    /// intersection, which is sound.
    pub fn meet(&self, other: &Congruence) -> Congruence {
        use Congruence::*;
        match (*self, *other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Top, x) | (x, Top) => x,
            (Point(a), Point(b)) => {
                if a == b {
                    Point(a)
                } else {
                    Bottom
                }
            }
            (Point(p), Grid { m, r }) | (Grid { m, r }, Point(p)) => {
                if p.rem_euclid(m as i64) as u64 == r {
                    Point(p)
                } else {
                    Bottom
                }
            }
            (Grid { m: m1, r: r1 }, Grid { m: m2, r: r2 }) => {
                // Solve x ≡ r1 (mod m1), x ≡ r2 (mod m2).
                let g = gcd(m1, m2);
                if (r1 as i64 - r2 as i64).rem_euclid(g as i64) != 0 {
                    return Bottom;
                }
                let Some(l) = (m1 / g).checked_mul(m2) else {
                    return *self;
                };
                if l > MAX_EXACT as u64 {
                    return *self;
                }
                // x = r1 + m1·t where m1·t ≡ r2 - r1 (mod m2), i.e.
                // (m1/g)·t ≡ (r2-r1)/g (mod m2/g).
                let mg = m2 / g;
                if mg == 1 {
                    return Congruence::grid(l, r1 as i64);
                }
                let a = (m1 / g) % mg;
                let Some(inv) = mod_inverse(a, mg) else {
                    return *self;
                };
                let diff = ((r2 as i128 - r1 as i128) / g as i128).rem_euclid(mg as i128) as u128;
                let t = (diff * inv as u128 % mg as u128) as i128;
                let r = (r1 as i128 + m1 as i128 * t).rem_euclid(l as i128) as i64;
                Congruence::grid(l, r)
            }
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> Congruence {
        use Congruence::*;
        match *self {
            Top => Top,
            Bottom => Bottom,
            Point(p) => p.checked_neg().map_or(Top, Point),
            Grid { m, r } => Congruence::grid(m, -(r as i64)),
        }
    }

    fn combine_linear(&self, other: &Congruence, sub: bool) -> Congruence {
        use Congruence::*;
        let rhs = if sub { other.neg() } else { *other };
        match (*self, rhs) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Top, _) | (_, Top) => Top,
            (Point(a), Point(b)) => a.checked_add(b).map_or(Top, Point),
            (Point(p), Grid { m, r }) | (Grid { m, r }, Point(p)) => {
                if p.checked_add(r as i64).is_none() {
                    return Top;
                }
                Congruence::grid(m, p.wrapping_add(r as i64))
            }
            (Grid { m: m1, r: r1 }, Grid { m: m2, r: r2 }) => {
                Congruence::grid(gcd(m1, m2), r1 as i64 + r2 as i64)
            }
        }
    }

    /// Addition.
    pub fn add(&self, other: &Congruence) -> Congruence {
        self.combine_linear(other, false)
    }

    /// Subtraction.
    pub fn sub(&self, other: &Congruence) -> Congruence {
        self.combine_linear(other, true)
    }

    /// Multiplication.
    pub fn mul(&self, other: &Congruence) -> Congruence {
        use Congruence::*;
        match (*self, *other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Point(0), _) | (_, Point(0)) => {
                // 0·x is 0 for every finite x; an infinite operand gives
                // NaN, which only Top covers — but the operands of `%`
                // facts flow through intervals that exclude NaN before a
                // grid is ever applied, so Point(0) stays sound there.
                // Keep the conservative answer for unknown operands.
                if matches!((*self, *other), (Top, _) | (_, Top)) {
                    Top
                } else {
                    Point(0)
                }
            }
            (Top, _) | (_, Top) => Top,
            (Point(a), Point(b)) => a.checked_mul(b).map_or(Top, Point),
            (Point(c), Grid { m, r }) | (Grid { m, r }, Point(c)) => {
                let mm = m.checked_mul(c.unsigned_abs());
                let rr = (r as i64).checked_mul(c);
                match (mm, rr) {
                    (Some(mm), Some(rr)) if mm <= MAX_EXACT as u64 => Congruence::grid(mm, rr),
                    _ => Top,
                }
            }
            (Grid { m: m1, r: r1 }, Grid { m: m2, r: r2 }) => {
                // (m1s + r1)(m2t + r2) ≡ r1·r2 (mod gcd(m1·m2, m1·r2, m2·r1))
                fn gcd128(mut a: u128, mut b: u128) -> u128 {
                    while b != 0 {
                        let t = a % b;
                        a = b;
                        b = t;
                    }
                    a
                }
                let g = gcd128(
                    gcd128(m1 as u128 * m2 as u128, m1 as u128 * r2 as u128),
                    m2 as u128 * r1 as u128,
                );
                if g > MAX_EXACT as u128 {
                    return Top;
                }
                let rr = (r1 as i128 * r2 as i128).rem_euclid(g as i128) as i64;
                Congruence::grid(g as u64, rr)
            }
        }
    }

    /// Remainder by a point divisor: `x % c` with `x ≡ r (mod m)` is
    /// congruent to `r` modulo `gcd(m, |c|)` (truncated remainder
    /// subtracts a multiple of `c`). Non-point divisors yield `Top`.
    pub fn rem(&self, other: &Congruence) -> Congruence {
        use Congruence::*;
        match (*self, *other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Point(a), Point(c)) if c != 0 => Point(a % c),
            (Grid { m, r }, Point(c)) if c != 0 => {
                Congruence::grid(gcd(m, c.unsigned_abs()), r as i64)
            }
            _ => Top,
        }
    }

    /// Division: float division only preserves the lattice for exact
    /// integer quotients of known points; everything else is `Top`.
    pub fn div(&self, other: &Congruence) -> Congruence {
        use Congruence::*;
        match (*self, *other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Point(a), Point(c)) if c != 0 && a % c == 0 => Point(a / c),
            _ => Top,
        }
    }

    /// Backward inverse of multiplication by the constant `c`: the
    /// congruence of integer `x` given `c·x` satisfies `self`.
    /// **Only sound for integer-valued `x`** (the real solutions of
    /// `c·x ≡ r (mod m)` form a finer, possibly non-integer grid).
    pub fn div_exact(&self, c: i64) -> Option<Congruence> {
        use Congruence::*;
        if c == 0 {
            return None;
        }
        match *self {
            Top => Some(Top),
            Bottom => Some(Bottom),
            Point(p) => Some(if p % c == 0 { Point(p / c) } else { Bottom }),
            Grid { m, r } => {
                // Solve c·x ≡ r (mod m) over the integers.
                let cm = (c as i128).rem_euclid(m as i128) as u64;
                if cm == 0 {
                    // m | c: c·x ≡ 0, solvable iff r == 0, any integer x.
                    return Some(if r == 0 {
                        Congruence::grid(1, 0)
                    } else {
                        Bottom
                    });
                }
                let g = gcd(cm, m);
                if r % g != 0 {
                    return Some(Bottom);
                }
                let mg = m / g;
                if mg == 1 {
                    return Some(Congruence::grid(1, 0));
                }
                let inv = mod_inverse(cm / g, mg)?;
                let rr = ((r / g) as u128 * inv as u128 % mg as u128) as i64;
                Some(Congruence::grid(mg, rr))
            }
        }
    }

    /// Reduce an interval by this congruence: snap both endpoints
    /// inward to the nearest grid member; an inverted result proves no
    /// member fits. Endpoints outside the f64-exact integer range are
    /// left untouched (snapping them could round past a member).
    pub fn tighten(&self, iv: &Interval) -> Interval {
        use Congruence::*;
        if iv.is_empty_range() {
            return *iv;
        }
        match *self {
            Top => *iv,
            Bottom => Interval::bottom().with_nan(iv.maybe_nan),
            Point(p) => iv.meet(&Interval::point(p as f64)).with_nan(iv.maybe_nan),
            Grid { m, r } => {
                if m <= 1 {
                    // "Some integer": snap like an integer domain.
                    let lo = iv.lo.ceil();
                    let hi = iv.hi.floor();
                    return Interval::new(lo, hi).with_nan(iv.maybe_nan);
                }
                let mut lo = iv.lo;
                let mut hi = iv.hi;
                if lo.is_finite() && lo.abs() < MAX_EXACT as f64 {
                    let l = lo.ceil() as i64;
                    let up = (r as i64 - l).rem_euclid(m as i64);
                    if let Some(s) = l.checked_add(up) {
                        if s.abs() < MAX_EXACT {
                            lo = s as f64;
                        }
                    }
                }
                if hi.is_finite() && hi.abs() < MAX_EXACT as f64 {
                    let h = hi.floor() as i64;
                    let down = (h - r as i64).rem_euclid(m as i64);
                    if let Some(s) = h.checked_sub(down) {
                        if s.abs() < MAX_EXACT {
                            hi = s as f64;
                        }
                    }
                }
                Interval::new(lo, hi).with_nan(iv.maybe_nan)
            }
        }
    }
}

impl std::fmt::Display for Congruence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Congruence::Top => f.write_str("⊤"),
            Congruence::Bottom => f.write_str("⊥"),
            Congruence::Point(p) => write!(f, "{{{p}}}"),
            Congruence::Grid { m, r } => write!(f, "{m}ℤ+{r}"),
        }
    }
}

/// Forward congruence evaluation of an arithmetic expression over a
/// congruence environment. Comparison and boolean nodes are not
/// number-valued in any useful congruence sense and evaluate to `Top`.
pub fn eval_cong(e: &Expr, env: &BTreeMap<String, Congruence>) -> Congruence {
    match e {
        Expr::Num(x) => Congruence::constant(*x),
        Expr::Var(n) => env.get(n).copied().unwrap_or(Congruence::Top),
        Expr::Neg(inner) => eval_cong(inner, env).neg(),
        Expr::Bin(op, a, b) => {
            let x = eval_cong(a, env);
            let y = eval_cong(b, env);
            match op {
                BinOp::Add => x.add(&y),
                BinOp::Sub => x.sub(&y),
                BinOp::Mul => x.mul(&y),
                BinOp::Div => x.div(&y),
                BinOp::Rem => x.rem(&y),
                _ => Congruence::Top,
            }
        }
    }
}

/// The exact integer point of a forward interval evaluation, if any.
pub(crate) fn int_point(iv: &Interval) -> Option<i64> {
    if iv.is_empty_range() || iv.maybe_nan || iv.lo != iv.hi {
        return None;
    }
    let v = iv.lo;
    if v.fract() == 0.0 && v.abs() < MAX_EXACT as f64 {
        Some(v as i64)
    } else {
        None
    }
}

/// Push a required congruence down an expression to its variable
/// leaves. Descends through `+`/`-`/unary-`-` when the sibling operand
/// is a known integer point, and through `*`-by-constant via
/// [`Congruence::div_exact`].
fn push_need(
    e: &Expr,
    need: Congruence,
    env: &BTreeMap<String, Interval>,
    out: &mut Vec<(String, Congruence)>,
) {
    use super::contract::eval_expr;
    match e {
        Expr::Num(_) => {}
        Expr::Var(n) => out.push((n.clone(), need)),
        Expr::Neg(inner) => push_need(inner, need.neg(), env, out),
        Expr::Bin(op, a, b) => match op {
            BinOp::Add => {
                if let Some(c) = int_point(&eval_expr(b, env)) {
                    push_need(a, need.sub(&Congruence::Point(c)), env, out);
                } else if let Some(c) = int_point(&eval_expr(a, env)) {
                    push_need(b, need.sub(&Congruence::Point(c)), env, out);
                }
            }
            BinOp::Sub => {
                if let Some(c) = int_point(&eval_expr(b, env)) {
                    push_need(a, need.add(&Congruence::Point(c)), env, out);
                } else if let Some(c) = int_point(&eval_expr(a, env)) {
                    push_need(b, Congruence::Point(c).sub(&need), env, out);
                }
            }
            BinOp::Mul => {
                let (var_side, konst) = if let Some(c) = int_point(&eval_expr(b, env)) {
                    (a, c)
                } else if let Some(c) = int_point(&eval_expr(a, env)) {
                    (b, c)
                } else {
                    return;
                };
                if let Some(x) = need.div_exact(konst) {
                    push_need(var_side, x, env, out);
                }
            }
            _ => {}
        },
    }
}

/// Scan a constraint for congruence facts under the current interval
/// environment: top-level conjuncts of the form `sub % d == k` (either
/// orientation) with integer-point `d` and `k` become grid requirements
/// on `sub`'s variables; plain `sub == k` becomes a point requirement.
pub fn constraint_facts(
    e: &Expr,
    env: &BTreeMap<String, Interval>,
    out: &mut Vec<(String, Congruence)>,
) {
    use super::contract::eval_expr;
    match e {
        Expr::Bin(BinOp::And, a, b) => {
            constraint_facts(a, env, out);
            constraint_facts(b, env, out);
        }
        Expr::Bin(BinOp::Eq, a, b) => {
            let (target, kside) = if int_point(&eval_expr(b, env)).is_some() {
                (a, b)
            } else if int_point(&eval_expr(a, env)).is_some() {
                (b, a)
            } else {
                return;
            };
            let Some(k) = int_point(&eval_expr(kside, env)) else {
                return;
            };
            if let Expr::Bin(BinOp::Rem, sub, d) = &**target {
                let Some(c) = int_point(&eval_expr(d, env)) else {
                    return;
                };
                if c == 0 {
                    return; // x % 0 is NaN; never equal to k
                }
                // x % c == k ⇒ x ∈ cℤ + k (see module docs). |k| ≥ |c|
                // is unsatisfiable for a remainder, but leave that to
                // the interval transfer; the grid below still encloses.
                push_need(sub, Congruence::grid(c.unsigned_abs(), k), env, out);
            } else {
                push_need(target, Congruence::Point(k), env, out);
            }
        }
        _ => {}
    }
}

/// Run the congruence reduction on one (already interval-contracted)
/// branch: extract facts, tighten `Integer`-kind parameters, re-contract
/// the intervals, repeat to a small fixpoint. Returns the accumulated
/// per-parameter facts, or `None` when the branch is proved empty.
pub fn refine_branch(
    params: &[(&str, &ParamDef)],
    exprs: &[&Expr],
    env: &mut BTreeMap<String, Interval>,
) -> Option<BTreeMap<String, Congruence>> {
    let mut facts: BTreeMap<String, Congruence> = BTreeMap::new();
    if exprs.is_empty() {
        return Some(facts);
    }
    for _ in 0..CONG_ROUNDS {
        let mut found = Vec::new();
        for e in exprs {
            constraint_facts(e, env, &mut found);
        }
        let mut facts_moved = false;
        for (name, c) in found {
            let slot = facts.entry(name).or_insert(Congruence::Top);
            let met = slot.meet(&c);
            if met != *slot {
                *slot = met;
                facts_moved = true;
            }
        }
        let mut env_moved = false;
        for (name, def) in params {
            if !matches!(def, ParamDef::Integer { .. }) {
                continue;
            }
            let Some(c) = facts.get(*name) else { continue };
            let Some(iv) = env.get(*name).copied() else {
                continue;
            };
            let t = c.tighten(&iv);
            if t.is_empty_range() {
                return None; // no integer of the grid fits the interval
            }
            if t != iv {
                env.insert((*name).to_string(), t);
                env_moved = true;
            }
        }
        if env_moved {
            let c = contract_from(env.clone(), params, exprs);
            if c.proved_empty {
                return None;
            }
            *env = c.env;
        } else if !facts_moved {
            break;
        }
    }
    Some(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn grid(m: u64, r: i64) -> Congruence {
        Congruence::grid(m, r)
    }

    #[test]
    fn constructors_normalize() {
        assert_eq!(grid(4, -1), Congruence::Grid { m: 4, r: 3 });
        assert_eq!(grid(0, 7), Congruence::Point(7));
        assert_eq!(Congruence::constant(256.0), Congruence::Point(256));
        assert_eq!(Congruence::constant(0.5), Congruence::Top);
        assert_eq!(Congruence::constant(f64::NAN), Congruence::Top);
    }

    #[test]
    fn join_is_gcd() {
        assert_eq!(Congruence::Point(3).join(&Congruence::Point(7)), grid(4, 3));
        assert_eq!(grid(8, 2).join(&grid(12, 6)), grid(4, 2));
        assert_eq!(grid(6, 1).join(&Congruence::Point(7)), grid(6, 1));
        assert_eq!(Congruence::Bottom.join(&grid(5, 2)), grid(5, 2));
        assert_eq!(Congruence::Top.join(&grid(5, 2)), Congruence::Top);
    }

    #[test]
    fn meet_is_crt() {
        // x ≡ 2 (mod 3), x ≡ 3 (mod 5) ⇒ x ≡ 8 (mod 15).
        assert_eq!(grid(3, 2).meet(&grid(5, 3)), grid(15, 8));
        // Incompatible residues mod the gcd.
        assert_eq!(grid(4, 1).meet(&grid(6, 2)), Congruence::Bottom);
        // Point membership.
        assert_eq!(grid(4, 1).meet(&Congruence::Point(9)), Congruence::Point(9));
        assert_eq!(grid(4, 1).meet(&Congruence::Point(8)), Congruence::Bottom);
        // Same modulus.
        assert_eq!(grid(4, 1).meet(&grid(4, 1)), grid(4, 1));
        assert_eq!(grid(4, 1).meet(&grid(4, 2)), Congruence::Bottom);
    }

    #[test]
    fn arithmetic_transfers() {
        assert_eq!(grid(6, 2).add(&grid(4, 3)), grid(2, 1));
        assert_eq!(grid(6, 2).add(&Congruence::Point(5)), grid(6, 1));
        assert_eq!(grid(6, 2).sub(&Congruence::Point(2)), grid(6, 0));
        assert_eq!(grid(6, 2).neg(), grid(6, 4));
        assert_eq!(grid(6, 2).mul(&Congruence::Point(3)), grid(18, 6));
        assert_eq!(
            Congruence::Point(4).mul(&Congruence::Point(5)),
            Congruence::Point(20)
        );
        // (4ℤ+2)(6ℤ+3) = 24st + 12s + 12t + 6 ≡ 6 (mod 12).
        assert_eq!(grid(4, 2).mul(&grid(6, 3)), grid(12, 6));
        assert_eq!(grid(12, 5).rem(&Congruence::Point(4)), grid(4, 1));
        assert_eq!(
            Congruence::Point(14).rem(&Congruence::Point(4)),
            Congruence::Point(2)
        );
        assert_eq!(
            Congruence::Point(-14).rem(&Congruence::Point(4)),
            Congruence::Point(-2),
            "truncated remainder keeps the dividend sign"
        );
        assert_eq!(
            Congruence::Point(12).div(&Congruence::Point(4)),
            Congruence::Point(3)
        );
        assert_eq!(
            Congruence::Point(12).div(&Congruence::Point(5)),
            Congruence::Top
        );
    }

    #[test]
    fn div_exact_inverts_mul() {
        // 3x ≡ 6 (mod 12) over ℤ ⇔ x ≡ 2 (mod 4).
        assert_eq!(grid(12, 6).div_exact(3), Some(grid(4, 2)));
        // 2x ≡ 1 (mod 4): no integer solution.
        assert_eq!(grid(4, 1).div_exact(2), Some(Congruence::Bottom));
        // 4x ≡ 0 (mod 2): every integer works.
        assert_eq!(grid(2, 0).div_exact(4), Some(grid(1, 0)));
        assert_eq!(
            Congruence::Point(12).div_exact(4),
            Some(Congruence::Point(3))
        );
        assert_eq!(Congruence::Point(13).div_exact(4), Some(Congruence::Bottom));
        assert_eq!(grid(4, 2).div_exact(0), None);
    }

    #[test]
    fn tighten_snaps_and_proves_empty() {
        let iv = Interval::new(1.0, 100_000.0);
        let t = grid(256, 0).tighten(&iv);
        assert_eq!((t.lo, t.hi), (256.0, 99_840.0));
        // No multiple of 256 in [257, 511].
        let t = grid(256, 0).tighten(&Interval::new(257.0, 511.0));
        assert!(t.is_empty_range());
        // Residue shifts the grid.
        let t = grid(4, 3).tighten(&Interval::new(0.0, 10.0));
        assert_eq!((t.lo, t.hi), (3.0, 7.0));
        // Points and integers.
        let t = Congruence::Point(5).tighten(&Interval::new(0.0, 10.0));
        assert_eq!((t.lo, t.hi), (5.0, 5.0));
        let t = grid(1, 0).tighten(&Interval::new(0.5, 2.5));
        assert_eq!((t.lo, t.hi), (1.0, 2.0));
        // Negative ranges.
        let t = grid(3, 0).tighten(&Interval::new(-10.0, -1.0));
        assert_eq!((t.lo, t.hi), (-9.0, -3.0));
        // Unbounded endpoints pass through.
        let t = grid(3, 0).tighten(&Interval::new(f64::NEG_INFINITY, 7.0));
        assert_eq!((t.lo, t.hi), (f64::NEG_INFINITY, 6.0));
    }

    #[test]
    fn tighten_is_idempotent() {
        for (m, r, lo, hi) in [
            (256u64, 0i64, 1.0, 100_000.0),
            (7, 3, -100.0, 100.0),
            (2, 1, 0.0, 9.0),
            (5, 4, 3.0, 3.0),
        ] {
            let g = grid(m, r);
            let once = g.tighten(&Interval::new(lo, hi));
            let twice = g.tighten(&once);
            assert_eq!(once, twice, "tighten must be idempotent for {g}");
        }
    }

    #[test]
    fn facts_from_rem_eq() {
        let env: BTreeMap<String, Interval> = [
            ("n".to_string(), Interval::new(1.0, 100_000.0)),
            ("nb".to_string(), Interval::new(256.0, 256.0)),
        ]
        .into();
        let e = parse("n % nb == 0").unwrap();
        let mut out = Vec::new();
        constraint_facts(&e, &env, &mut out);
        assert_eq!(out, vec![("n".to_string(), grid(256, 0))]);
        // Push-down through + and *: (2*n + 3) % 8 == 1 ⇒ 2n ≡ -2 ≡ 6
        // (mod 8) ⇒ n ≡ 3 (mod 4).
        let e = parse("(2 * n + 3) % 8 == 1").unwrap();
        let mut out = Vec::new();
        constraint_facts(&e, &env, &mut out);
        assert_eq!(out, vec![("n".to_string(), grid(4, 3))]);
        // Unpinned divisor: no fact.
        let env2: BTreeMap<String, Interval> = [
            ("n".to_string(), Interval::new(1.0, 100_000.0)),
            ("nb".to_string(), Interval::new(96.0, 256.0)),
        ]
        .into();
        let e = parse("n % nb == 0").unwrap();
        let mut out = Vec::new();
        constraint_facts(&e, &env2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn refine_branch_contracts_to_grid() {
        use cets_space::ParamDef;
        let dn = ParamDef::Integer { lo: 1, hi: 100_000 };
        let dnb = ParamDef::Integer { lo: 32, hi: 1024 };
        let pin = parse("nb == 256").unwrap();
        let align = parse("n % nb == 0").unwrap();
        let params: Vec<(&str, &ParamDef)> = vec![("n", &dn), ("nb", &dnb)];
        let exprs = vec![&pin, &align];
        let c = super::super::contract::contract(&params, &exprs);
        assert!(!c.proved_empty);
        let mut env = c.env;
        let facts = refine_branch(&params, &exprs, &mut env).expect("feasible");
        assert_eq!(facts.get("n"), Some(&grid(256, 0)));
        let n = env["n"];
        assert_eq!((n.lo, n.hi), (256.0, 99_840.0));
    }

    #[test]
    fn refine_branch_proves_empty_grid() {
        use cets_space::ParamDef;
        let dn = ParamDef::Integer { lo: 257, hi: 511 };
        let dnb = ParamDef::Integer { lo: 32, hi: 1024 };
        let pin = parse("nb == 256").unwrap();
        let align = parse("n % nb == 0").unwrap();
        let params: Vec<(&str, &ParamDef)> = vec![("n", &dn), ("nb", &dnb)];
        let exprs = vec![&pin, &align];
        let c = super::super::contract::contract(&params, &exprs);
        if c.proved_empty {
            return; // already caught by the interval layer: fine
        }
        let mut env = c.env;
        assert!(refine_branch(&params, &exprs, &mut env).is_none());
    }

    #[test]
    fn eval_cong_forward() {
        let env: BTreeMap<String, Congruence> = [
            ("a".to_string(), grid(6, 2)),
            ("b".to_string(), Congruence::Point(3)),
        ]
        .into();
        let v = eval_cong(&parse("a + b * 2").unwrap(), &env);
        assert_eq!(v, grid(6, 2)); // 6ℤ+2 + 6 = 6ℤ+2
        let v = eval_cong(&parse("a % 4").unwrap(), &env);
        assert_eq!(v, grid(2, 0));
        let v = eval_cong(&parse("a <= b").unwrap(), &env);
        assert_eq!(v, Congruence::Top);
    }
}
