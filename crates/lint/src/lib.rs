//! # cets-lint — static analysis for CETS tuning plans
//!
//! The methodology of the paper front-loads *cheap* analysis (sensitivity,
//! influence graphs, staged plans) before any *expensive* objective
//! evaluation. This crate extends that philosophy to correctness: it
//! statically validates a whole plan bundle — search space, influence DAG,
//! staged search plan, constraints, and GP kernel configuration — **before**
//! a single HPC run is spent, and reports problems as stable, documented
//! diagnostic codes.
//!
//! ## Diagnostic code families
//!
//! | Family | Concern | Codes |
//! |--------|---------|-------|
//! | `S0xx` | search **s**pace   | `S001` duplicates, `S002` invalid domains, `S003` defaults outside domains, `S004` unsatisfiable-looking constraints, `S005` unknown references |
//! | `G0xx` | influence **g**raph / plan | `G001` dependency cycles, `G002` cut-off-orphaned tuned parameters, `G003` dimension cap violations, `G004` shared-parameter ownership |
//! | `N0xx` | **n**umerics | `N001` PSD-fragile kernels, `N002` non-finite inputs, `N003` zero-variance dimensions |
//! | `A0xx` | **a**bstract interpretation | `A001` proved-unsat plans, `A002` tautological constraints, `A003` rejection-sampling thrash risk, `A004` contractible bounds, `A005` contraction not converged, `A006` inferred relational bounds, `A007` disjoint feasible slabs, `A008` disjunctive split cap, `A009` congruence-contracted bounds, `A010` dead ordinal/categorical options, `A011` parameter forced to a single value |
//!
//! The `A`-codes come from the relational analysis engine in [`absint`]
//! (forward constraint classification, HC4-revise backward bound
//! contraction, an octagon domain for two-parameter relations,
//! disjunctive branch-and-prune over `or` constraints, and the reduced
//! product with congruence and finite-set domains) and are opt-in:
//! [`analyze`] /
//! [`Registry::with_analysis_rules`] run them, the plain [`lint`] entry
//! point does not — `A004` is advice about *optimizable* bounds, not a
//! defect, so the default gate stays quiet about it.
//!
//! See the individual modules under [`rules`] for the full story behind
//! each code, and `DESIGN.md` for the user-facing diagnostics reference.
//!
//! ## Typical use
//!
//! ```no_run
//! use cets_lint::{lint, load_path, render_human};
//!
//! let bundle = load_path(std::path::Path::new("plan.json")).unwrap();
//! let report = lint(&bundle);
//! println!("{}", render_human(&report));
//! if !report.is_clean() {
//!     std::process::exit(1);
//! }
//! ```
//!
//! ## Guarantees
//!
//! - **Total**: linting never panics, whatever the bundle contains
//!   (property-tested). Structurally broken *files* fail at
//!   [`load_str`]/[`load_path`] with `Err`, not at lint time.
//! - **Pure**: [`lint`] does no I/O and is deterministic — the same bundle
//!   always yields the same report, byte for byte.
//! - **Stable**: codes are append-only; a code is never reused for a
//!   different condition.
//!
//! ## Extending
//!
//! New rules are one file each: implement [`Lint`], add the module under
//! [`rules`], and register it in [`Registry::with_default_rules`].

pub mod absint;
pub mod bundle;
pub mod campaign;
pub mod diag;
pub mod explain;
pub mod expr;
pub mod loader;
pub mod registry;
pub mod reporter;
pub mod rules;
pub mod span;

pub use absint::Congruence;
pub use absint::{
    analyze_space, analyze_space_with, apply_contraction, wilson_interval, AnalysisOptions,
    ConstraintClass, Domain, Interval, McFeasibility, Projector, Relation, RelationKind,
    SpaceAnalysis,
};
pub use bundle::{
    ConstraintSpec, KernelSpec, ParamSpec, PlanBundle, PlanSpec, SearchSpec, UnresolvedRef,
};
pub use campaign::{validate_campaign, CAMPAIGN_CODES};
pub use diag::{Diagnostic, Location, Severity};
pub use explain::{explain, render_explain, CodeEntry, CODES};
pub use loader::{load_path, load_str, rewrite_contracted};
pub use registry::{analyze, analyze_with, lint, Lint, Registry, Report};
pub use reporter::{render_human, render_json, render_sarif};
pub use span::{index_spans, Span, SpanTable};
