//! Load a [`PlanBundle`] from a JSON plan file.
//!
//! The loader is deliberately forgiving about *semantic* problems — a
//! dangling owner name or a score row for an unknown parameter is recorded
//! in [`PlanBundle::unresolved`] so the `S005` rule can report it with a
//! proper diagnostic instead of aborting the whole lint run. Only
//! *structural* problems (malformed JSON, a parameter without a name, a
//! score that is not a number) abort with `Err`.
//!
//! ## Schema
//!
//! ```text
//! {
//!   "params": [
//!     {"name": "tb", "kind": "integer", "lo": 1, "hi": 32, "default": 8},
//!     {"name": "lr", "kind": "real", "lo": 0.0, "hi": 1.0},
//!     {"name": "vec", "kind": "ordinal", "values": [1, 2, 4]},
//!     {"name": "impl", "kind": "categorical", "options": ["cuda", "hip"]}
//!   ],
//!   "constraints": [{"name": "smem", "expr": "tb * 64 <= 2048"}],
//!   "routines": ["A", "B"],
//!   "owners": {"tb": "A"},
//!   "scores": {"tb": [0.9, 0.1]},
//!   "cutoff": 0.25,
//!   "max_dims": 10,
//!   "precedence": ["A"],
//!   "shared_params": [["zc_tb"]],
//!   "kernel": {"noise_floor": 1e-6, "length_scales": [0.3], "signal_variance": 1.0},
//!   "plan": {"stages": [[{"name": "G1", "params": ["tb"], "routines": ["A"]}]]}
//! }
//! ```
//!
//! Every top-level field is optional except `params` may be empty; absent
//! fields keep the [`PlanBundle`] defaults (`cutoff = 0.25`,
//! `max_dims = 10`).

use crate::bundle::{
    ConstraintSpec, KernelSpec, ParamSpec, PlanBundle, PlanSpec, SearchSpec, UnresolvedRef,
};
use cets_graph::InfluenceGraph;
use cets_space::ParamDef;
use serde::Value;

/// Parse `src` (JSON text) into a [`PlanBundle`].
///
/// Returns `Err` with a human-readable message for structural problems;
/// semantic dangling references are deferred to the `S005` lint.
pub fn load_str(src: &str) -> Result<PlanBundle, String> {
    let v = serde_json::parse_value(src).map_err(|e| format!("invalid JSON: {e}"))?;
    let mut b = from_value(&v)?;
    b.spans = crate::span::index_spans(src);
    Ok(b)
}

/// Read and parse a plan file from disk. Unlike [`load_str`], the
/// resulting bundle's spans carry the file path, so diagnostics render
/// with `file:line:col` physical locations.
pub fn load_path(path: &std::path::Path) -> Result<PlanBundle, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut b = load_str(&src)?;
    b.spans.file = Some(path.display().to_string());
    Ok(b)
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    match v {
        Value::String(s) => Ok(s),
        other => Err(format!("{what} must be a string, got {other:?}")),
    }
}

fn as_num(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::UInt(u) => Ok(*u as f64),
        Value::Float(f) => Ok(*f),
        other => Err(format!("{what} must be a number, got {other:?}")),
    }
}

fn as_int(v: &Value, what: &str) -> Result<i64, String> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u).map_err(|_| format!("{what} is out of range")),
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
        other => Err(format!("{what} must be an integer, got {other:?}")),
    }
}

fn as_arr<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], String> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(format!("{what} must be an array, got {other:?}")),
    }
}

fn as_obj<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], String> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, got {other:?}")),
    }
}

fn num_list(v: &Value, what: &str) -> Result<Vec<f64>, String> {
    as_arr(v, what)?
        .iter()
        .enumerate()
        .map(|(i, x)| as_num(x, &format!("{what}[{i}]")))
        .collect()
}

fn str_list(v: &Value, what: &str) -> Result<Vec<String>, String> {
    as_arr(v, what)?
        .iter()
        .enumerate()
        .map(|(i, x)| as_str(x, &format!("{what}[{i}]")).map(str::to_string))
        .collect()
}

fn parse_param(v: &Value, idx: usize) -> Result<ParamSpec, String> {
    let ctx = format!("params[{idx}]");
    let obj = as_obj(v, &ctx)?;
    let _ = obj; // field access goes through get_field below
    let name = match v.get_field("name") {
        Value::Null => return Err(format!("{ctx} is missing `name`")),
        other => as_str(other, &format!("{ctx}.name"))?.to_string(),
    };
    let kind = match v.get_field("kind") {
        Value::Null => return Err(format!("{ctx} (`{name}`) is missing `kind`")),
        other => as_str(other, &format!("{ctx}.kind"))?,
    };
    let def = match kind {
        "real" => ParamDef::Real {
            lo: as_num(v.get_field("lo"), &format!("{ctx}.lo"))?,
            hi: as_num(v.get_field("hi"), &format!("{ctx}.hi"))?,
        },
        "integer" => ParamDef::Integer {
            lo: as_int(v.get_field("lo"), &format!("{ctx}.lo"))?,
            hi: as_int(v.get_field("hi"), &format!("{ctx}.hi"))?,
        },
        "ordinal" => ParamDef::Ordinal {
            values: num_list(v.get_field("values"), &format!("{ctx}.values"))?,
        },
        "categorical" => ParamDef::Categorical {
            options: str_list(v.get_field("options"), &format!("{ctx}.options"))?,
        },
        other => {
            return Err(format!(
                "{ctx} (`{name}`) has unknown kind `{other}` \
                 (expected real | integer | ordinal | categorical)"
            ))
        }
    };
    let default = match v.get_field("default") {
        Value::Null => None,
        other => Some(as_num(other, &format!("{ctx}.default"))?),
    };
    Ok(ParamSpec { name, def, default })
}

fn parse_search(v: &Value, stage: usize, idx: usize) -> Result<SearchSpec, String> {
    let ctx = format!("plan.stages[{stage}][{idx}]");
    let name = match v.get_field("name") {
        Value::Null => format!("stage{stage}-search{idx}"),
        other => as_str(other, &format!("{ctx}.name"))?.to_string(),
    };
    let params = match v.get_field("params") {
        Value::Null => Vec::new(),
        other => str_list(other, &format!("{ctx}.params"))?,
    };
    let routines = match v.get_field("routines") {
        Value::Null => Vec::new(),
        other => str_list(other, &format!("{ctx}.routines"))?,
    };
    Ok(SearchSpec {
        name,
        params,
        routines,
    })
}

fn from_value(v: &Value) -> Result<PlanBundle, String> {
    as_obj(v, "plan file")?;
    let mut b = PlanBundle::default();

    if let arr @ (Value::Array(_) | Value::Null) = v.get_field("params") {
        if let Value::Array(items) = arr {
            for (i, p) in items.iter().enumerate() {
                b.params.push(parse_param(p, i)?);
            }
        }
    } else {
        return Err("`params` must be an array".into());
    }

    match v.get_field("constraints") {
        Value::Null => {}
        cs => {
            for (i, c) in as_arr(cs, "constraints")?.iter().enumerate() {
                let ctx = format!("constraints[{i}]");
                let expr = match c.get_field("expr") {
                    Value::Null => return Err(format!("{ctx} is missing `expr`")),
                    other => as_str(other, &format!("{ctx}.expr"))?.to_string(),
                };
                let name = match c.get_field("name") {
                    Value::Null => format!("c{i}"),
                    other => as_str(other, &format!("{ctx}.name"))?.to_string(),
                };
                b.constraints.push(ConstraintSpec { name, expr });
            }
        }
    }

    // Graph: only built when `routines` is present.
    match v.get_field("routines") {
        Value::Null => {}
        r => {
            let routines = str_list(r, "routines")?;
            let param_names: Vec<String> = b.params.iter().map(|p| p.name.clone()).collect();
            let mut g = InfluenceGraph::new(routines, param_names);

            match v.get_field("scores") {
                Value::Null => {}
                s => {
                    for (pname, row) in as_obj(s, "scores")? {
                        let scores = num_list(row, &format!("scores.{pname}"))?;
                        if scores.len() != g.routines().len() {
                            return Err(format!(
                                "scores.{pname} has {} entries but there are {} routines",
                                scores.len(),
                                g.routines().len()
                            ));
                        }
                        if g.set_scores(pname, &scores).is_err() {
                            b.unresolved.push(UnresolvedRef {
                                context: "scores".into(),
                                name: pname.clone(),
                            });
                        }
                    }
                }
            }

            match v.get_field("owners") {
                Value::Null => {}
                o => {
                    for (pname, routine) in as_obj(o, "owners")? {
                        let rname = as_str(routine, &format!("owners.{pname}"))?;
                        if g.set_owner(pname, rname).is_err() {
                            b.unresolved.push(UnresolvedRef {
                                context: "owners".into(),
                                name: format!("{pname} -> {rname}"),
                            });
                        }
                    }
                }
            }

            b.graph = Some(g);
        }
    }

    match v.get_field("cutoff") {
        Value::Null => {}
        c => b.cutoff = as_num(c, "cutoff")?,
    }
    match v.get_field("max_dims") {
        Value::Null => {}
        m => {
            let raw = as_int(m, "max_dims")?;
            b.max_dims = usize::try_from(raw).map_err(|_| "max_dims must be >= 0".to_string())?;
        }
    }
    match v.get_field("precedence") {
        Value::Null => {}
        p => b.precedence = str_list(p, "precedence")?,
    }
    match v.get_field("shared_params") {
        Value::Null => {}
        s => {
            for (i, group) in as_arr(s, "shared_params")?.iter().enumerate() {
                b.shared_params
                    .push(str_list(group, &format!("shared_params[{i}]"))?);
            }
        }
    }

    match v.get_field("kernel") {
        Value::Null => {}
        k => {
            as_obj(k, "kernel")?;
            let noise_floor = match k.get_field("noise_floor") {
                Value::Null => return Err("kernel is missing `noise_floor`".into()),
                other => as_num(other, "kernel.noise_floor")?,
            };
            let length_scales = match k.get_field("length_scales") {
                Value::Null => Vec::new(),
                other => num_list(other, "kernel.length_scales")?,
            };
            let signal_variance = match k.get_field("signal_variance") {
                Value::Null => None,
                other => Some(as_num(other, "kernel.signal_variance")?),
            };
            b.kernel = Some(KernelSpec {
                noise_floor,
                length_scales,
                signal_variance,
            });
        }
    }

    match v.get_field("plan") {
        Value::Null => {}
        p => {
            let stages_v = match p.get_field("stages") {
                Value::Null => return Err("plan is missing `stages`".into()),
                other => other,
            };
            let mut stages = Vec::new();
            for (si, stage) in as_arr(stages_v, "plan.stages")?.iter().enumerate() {
                let mut searches = Vec::new();
                for (gi, s) in as_arr(stage, &format!("plan.stages[{si}]"))?
                    .iter()
                    .enumerate()
                {
                    searches.push(parse_search(s, si, gi)?);
                }
                stages.push(searches);
            }
            b.plan = Some(PlanSpec { stages });
        }
    }

    Ok(b)
}

/// Replace `obj[key]`, appending the field when absent.
fn set_field(obj: &mut Vec<(String, Value)>, key: &str, val: Value) {
    match obj.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = val,
        None => obj.push((key.to_string(), val)),
    }
}

/// Render `x` as an integer JSON value when it is one, a float otherwise
/// (keeps `--contract` output free of gratuitous `4.0`-style literals).
fn num_value(x: f64) -> Value {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.is_finite() && x.fract() == 0.0 && x.abs() < EXACT {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

/// Rewrite the plan JSON `src` with the tightened domains of `analysis`
/// applied — the engine behind `cets analyze --contract`.
///
/// The rewrite is surgical: the original `Value` tree is re-emitted with
/// only the `lo` / `hi` / `values` fields of narrowed parameters
/// replaced, so comments-in-strings, extra fields and the overall shape
/// of the file survive (modulo pretty-printing). Parameters whose
/// tightened domain would exclude their declared default keep their
/// bounds, exactly as in [`crate::absint::apply_contraction`].
///
/// Returns `Err` when `src` is not a loadable plan file.
pub fn rewrite_contracted(
    src: &str,
    analysis: &crate::absint::SpaceAnalysis,
) -> Result<String, String> {
    let bundle = load_str(src)?;
    let contracted = crate::absint::apply_contraction(&bundle, analysis);
    let mut v = serde_json::parse_value(src).map_err(|e| format!("invalid JSON: {e}"))?;

    if let Value::Object(top) = &mut v {
        if let Some((_, Value::Array(params))) = top.iter_mut().find(|(k, _)| k == "params") {
            for pv in params.iter_mut() {
                let Value::Object(fields) = pv else { continue };
                let Some((_, Value::String(name))) =
                    fields.iter().find(|(k, _)| k == "name").cloned()
                else {
                    continue;
                };
                let (Some(old), Some(new)) = (bundle.param(&name), contracted.param(&name)) else {
                    continue;
                };
                if old.def == new.def {
                    continue;
                }
                match &new.def {
                    ParamDef::Real { lo, hi } => {
                        set_field(fields, "lo", Value::Float(*lo));
                        set_field(fields, "hi", Value::Float(*hi));
                    }
                    ParamDef::Integer { lo, hi } => {
                        set_field(fields, "lo", Value::Int(*lo));
                        set_field(fields, "hi", Value::Int(*hi));
                    }
                    ParamDef::Ordinal { values } => {
                        set_field(
                            fields,
                            "values",
                            Value::Array(values.iter().copied().map(num_value).collect()),
                        );
                    }
                    // Only prefix-surviving sets reach here (suffix drops
                    // never renumber the indices constraints refer to).
                    ParamDef::Categorical { options } => {
                        set_field(
                            fields,
                            "options",
                            Value::Array(options.iter().cloned().map(Value::String).collect()),
                        );
                    }
                }
            }
        }
    }

    serde_json::to_string_pretty(&v).map_err(|e| format!("re-rendering failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
        "params": [
            {"name": "tb", "kind": "integer", "lo": 1, "hi": 32, "default": 8},
            {"name": "lr", "kind": "real", "lo": 0.0, "hi": 1.0},
            {"name": "vec", "kind": "ordinal", "values": [1, 2, 4]},
            {"name": "impl", "kind": "categorical", "options": ["cuda", "hip"]}
        ],
        "constraints": [{"name": "smem", "expr": "tb * 64 <= 2048"}],
        "routines": ["A", "B"],
        "owners": {"tb": "A"},
        "scores": {"tb": [0.9, 0.1], "lr": [0.2, 0.8]},
        "cutoff": 0.3,
        "max_dims": 6,
        "precedence": ["A"],
        "shared_params": [["tb"]],
        "kernel": {"noise_floor": 1e-6, "length_scales": [0.3], "signal_variance": 1.0},
        "plan": {"stages": [[{"name": "G1", "params": ["tb"], "routines": ["A"]}]]}
    }"#;

    #[test]
    fn rewrite_contracted_patches_only_narrowed_params() {
        let src = r#"{
            "params": [
                {"name": "a", "kind": "integer", "lo": 32, "hi": 1024, "default": 64},
                {"name": "b", "kind": "real", "lo": 0.0, "hi": 1.0}
            ],
            "constraints": [{"name": "smem", "expr": "a * 64 <= 49152"}],
            "cutoff": 0.3
        }"#;
        let bundle = load_str(src).unwrap();
        let analysis = crate::absint::analyze_space(&bundle);
        let out = rewrite_contracted(src, &analysis).expect("rewrites");
        let nb = load_str(&out).expect("rewritten plan still loads");
        assert_eq!(
            nb.params[0].def,
            cets_space::ParamDef::Integer { lo: 32, hi: 768 }
        );
        assert_eq!(
            nb.params[1].def,
            cets_space::ParamDef::Real { lo: 0.0, hi: 1.0 },
            "untouched param keeps its domain"
        );
        assert_eq!(nb.params[0].default, Some(64.0), "default survives");
        assert_eq!(nb.cutoff, 0.3, "unrelated fields survive");
        // The rewrite is idempotent: re-analyzing finds nothing to narrow.
        let again = crate::absint::analyze_space(&nb);
        assert!(!again.any_narrowed());
        assert_eq!(rewrite_contracted(&out, &again).unwrap(), out);
    }

    #[test]
    fn rewrite_contracted_keeps_bounds_that_would_orphan_the_default() {
        // default 1000 is inside the declared domain but violates the
        // constraint; contraction must not strand it outside the box.
        let src = r#"{
            "params": [
                {"name": "a", "kind": "integer", "lo": 32, "hi": 1024, "default": 1000}
            ],
            "constraints": [{"name": "smem", "expr": "a * 64 <= 49152"}]
        }"#;
        let bundle = load_str(src).unwrap();
        let analysis = crate::absint::analyze_space(&bundle);
        assert!(
            analysis.any_narrowed(),
            "analysis still reports the narrowing"
        );
        let out = rewrite_contracted(src, &analysis).unwrap();
        let nb = load_str(&out).unwrap();
        assert_eq!(
            nb.params[0].def,
            cets_space::ParamDef::Integer { lo: 32, hi: 1024 },
            "domain kept: the tightened bounds exclude the declared default"
        );
    }

    #[test]
    fn rewrite_contracted_prunes_dead_options_and_values() {
        // `bcast <= 1` kills the suffix of the option list; `nb` keeps
        // only the divisors of the pinned `n`. Both rewrites must be
        // idempotent under re-analysis.
        let src = r#"{
            "params": [
                {"name": "n", "kind": "integer", "lo": 768, "hi": 768},
                {"name": "nb", "kind": "ordinal", "values": [96, 128, 144, 192]},
                {"name": "bcast", "kind": "categorical", "options": ["1rg", "1rM", "2rg", "Lng"]}
            ],
            "constraints": [
                {"name": "blk", "expr": "n % nb == 0"},
                {"name": "topo", "expr": "bcast <= 1"}
            ]
        }"#;
        let bundle = load_str(src).unwrap();
        let analysis = crate::absint::analyze_space(&bundle);
        let out = rewrite_contracted(src, &analysis).expect("rewrites");
        let nb = load_str(&out).expect("rewritten plan still loads");
        assert_eq!(
            nb.params[1].def,
            cets_space::ParamDef::Ordinal {
                values: vec![96.0, 128.0, 192.0], // 144 does not divide 768
            }
        );
        assert_eq!(
            nb.params[2].def,
            cets_space::ParamDef::Categorical {
                options: vec!["1rg".into(), "1rM".into()],
            }
        );
        let again = crate::absint::analyze_space(&nb);
        assert_eq!(rewrite_contracted(&out, &again).unwrap(), out, "idempotent");
    }

    #[test]
    fn rewrite_contracted_keeps_options_that_would_orphan_the_default() {
        // The declared default selects a dead option: pruning would
        // strand the baseline, so the option list is kept.
        let src = r#"{
            "params": [
                {"name": "bcast", "kind": "categorical",
                 "options": ["1rg", "1rM", "2rg", "Lng"], "default": 3}
            ],
            "constraints": [{"name": "topo", "expr": "bcast <= 1"}]
        }"#;
        let bundle = load_str(src).unwrap();
        let analysis = crate::absint::analyze_space(&bundle);
        let out = rewrite_contracted(src, &analysis).unwrap();
        let nb = load_str(&out).unwrap();
        assert_eq!(
            nb.params[0].def,
            cets_space::ParamDef::Categorical {
                options: vec!["1rg".into(), "1rM".into(), "2rg".into(), "Lng".into()],
            }
        );
    }

    #[test]
    fn rewrite_contracted_rejects_garbage() {
        let analysis = crate::absint::analyze_space(&PlanBundle::default());
        assert!(rewrite_contracted("not json", &analysis).is_err());
    }

    #[test]
    fn full_plan_loads() {
        let b = load_str(FULL).expect("full plan loads");
        assert_eq!(b.params.len(), 4);
        assert_eq!(b.params[0].default, Some(8.0));
        assert_eq!(b.constraints.len(), 1);
        assert_eq!(b.cutoff, 0.3);
        assert_eq!(b.max_dims, 6);
        assert_eq!(b.precedence, vec!["A".to_string()]);
        assert_eq!(b.shared_params, vec![vec!["tb".to_string()]]);
        let g = b.graph.as_ref().expect("graph built");
        assert_eq!(g.routines().len(), 2);
        let ti = g.param_index("tb").expect("tb present");
        assert_eq!(g.score_at(ti, 0), 0.9);
        let k = b.kernel.as_ref().expect("kernel present");
        assert_eq!(k.noise_floor, 1e-6);
        let plan = b.plan.as_ref().expect("plan present");
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0][0].name, "G1");
        assert!(b.unresolved.is_empty());
    }

    #[test]
    fn minimal_plan_uses_defaults() {
        let b = load_str(r#"{"params": []}"#).expect("minimal plan loads");
        assert_eq!(b.cutoff, 0.25);
        assert_eq!(b.max_dims, 10);
        assert!(b.graph.is_none());
        assert!(b.plan.is_none());
    }

    #[test]
    fn dangling_names_deferred_not_fatal() {
        let b = load_str(
            r#"{
                "params": [{"name": "a", "kind": "real", "lo": 0, "hi": 1}],
                "routines": ["R"],
                "owners": {"ghost": "R"},
                "scores": {"phantom": [0.5]}
            }"#,
        )
        .expect("dangling names are deferred");
        assert_eq!(b.unresolved.len(), 2);
        assert!(b.unresolved.iter().any(|u| u.context == "owners"));
        assert!(b.unresolved.iter().any(|u| u.context == "scores"));
    }

    #[test]
    fn structural_errors_are_fatal() {
        assert!(load_str("not json").is_err());
        assert!(load_str(r#"{"params": [{"kind": "real"}]}"#).is_err());
        assert!(load_str(r#"{"params": [{"name": "a", "kind": "weird"}]}"#).is_err());
        assert!(
            load_str(r#"{"params": [{"name": "a", "kind": "real", "lo": "x", "hi": 1}]}"#).is_err()
        );
        // wrong-length score row is structural (set_scores would assert)
        assert!(load_str(
            r#"{"params": [{"name": "a", "kind": "real", "lo": 0, "hi": 1}],
                "routines": ["R", "S"], "scores": {"a": [0.5]}}"#
        )
        .is_err());
    }

    #[test]
    fn invalid_domains_still_load() {
        // Semantically invalid (lo > hi) but structurally fine: S002's job.
        let b = load_str(r#"{"params": [{"name": "a", "kind": "integer", "lo": 9, "hi": 1}]}"#)
            .expect("invalid domains load");
        assert!(b.params[0].def.validate().is_err());
    }
}
