//! `--explain` reference entries for every diagnostic code.
//!
//! Each code the registry can emit has one [`CodeEntry`] here: what the
//! diagnostic means, a minimal plan fragment that triggers it, and how to
//! fix it. `cets analyze --explain A009` prints the entry; the table is
//! also the single place the documented code list lives in code, so the
//! registry tests cross-check it against every rule's `codes()`.

/// One reference entry of the diagnostics documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeEntry {
    /// Stable diagnostic code, e.g. `"A009"`.
    pub code: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// What the diagnostic means and why it matters.
    pub description: &'static str,
    /// A minimal triggering example.
    pub example: &'static str,
    /// How to resolve it.
    pub remediation: &'static str,
}

/// Every documented diagnostic code, in family-then-number order.
pub const CODES: &[CodeEntry] = &[
    CodeEntry {
        code: "S001",
        title: "duplicate parameter names",
        description: "Two parameters in the search space share one name. Every later \
                      lookup (constraints, plan stages, graph edges) is ambiguous, so all \
                      deeper analysis is skipped for the bundle.",
        example: "two `\"name\": \"nb\"` entries under `params`",
        remediation: "rename one of the parameters; names must be unique",
    },
    CodeEntry {
        code: "S002",
        title: "invalid parameter domain",
        description: "A parameter's declared domain is malformed: inverted or non-finite \
                      numeric bounds, an empty ordinal value list, or an empty categorical \
                      option list. No point can be drawn from it.",
        example: "`{\"kind\": \"integer\", \"lo\": 9, \"hi\": 1}`",
        remediation: "fix the bounds so lo <= hi and lists are non-empty",
    },
    CodeEntry {
        code: "S003",
        title: "default outside its domain",
        description: "A parameter's default value does not belong to its declared domain, \
                      so the untuned baseline configuration is invalid.",
        example: "`\"default\": 7` on an ordinal whose values are [2, 4, 8]",
        remediation: "pick a default that is a member of the domain",
    },
    CodeEntry {
        code: "S004",
        title: "constraint looks unsatisfiable",
        description: "Deterministic probing found no point satisfying a constraint. This \
                      is sampling evidence, not a proof — the A001 analysis upgrade proves \
                      it when the interval engine can.",
        example: "`a > 100` over `a` in [1, 8]",
        remediation: "widen the bounds or fix the constraint expression",
    },
    CodeEntry {
        code: "S005",
        title: "unknown reference",
        description: "A constraint, plan stage, or graph edge names a parameter that the \
                      search space does not declare.",
        example: "constraint `nx * ny <= 4096` with no `ny` parameter",
        remediation: "declare the missing parameter or fix the name",
    },
    CodeEntry {
        code: "G001",
        title: "influence graph cycle",
        description: "The influence DAG contains a dependency cycle that is not resolved \
                      by merging the cycle into one tuning stage, so no stage order exists.",
        example: "edges a -> b, b -> c, c -> a across three stages",
        remediation: "break the cycle or merge the cyclic parameters into one stage",
    },
    CodeEntry {
        code: "G002",
        title: "orphaned tuned parameter",
        description: "A parameter survives the influence cut-off but no plan stage tunes \
                      it: its influence is paid for but never exploited.",
        example: "a high-scoring parameter missing from every stage's dimension list",
        remediation: "add the parameter to a stage or lower its score below the cut-off",
    },
    CodeEntry {
        code: "G003",
        title: "dimension cap exceeded",
        description: "A plan stage tunes more dimensions than the configured cap. The \
                      paper's methodology bounds per-stage dimensionality to keep BO \
                      sample-efficient.",
        example: "a stage tuning 12 parameters under `max_dims: 8`",
        remediation: "split the stage or raise `max_dims` deliberately",
    },
    CodeEntry {
        code: "G004",
        title: "shared parameter ownership conflict",
        description: "A parameter shared between routines is tuned by a stage owned by a \
                      routine that does not own the parameter, or by several owners with \
                      no declared precedence.",
        example: "`threads` owned by Slater but tuned in an MPI stage",
        remediation: "declare the sharing (`shared_params`) or set `precedence`",
    },
    CodeEntry {
        code: "N001",
        title: "PSD-fragile kernel configuration",
        description: "The GP kernel configuration (length-scales, variance, noise floor) \
                      risks a non-positive-definite covariance matrix, which breaks the \
                      Cholesky factorization inside BO.",
        example: "`noise_floor: 0` with near-duplicate training inputs",
        remediation: "raise the noise floor or fix the degenerate hyperparameters",
    },
    CodeEntry {
        code: "N002",
        title: "non-finite numeric input",
        description: "A bound, score, or kernel field is NaN or infinite; downstream \
                      arithmetic would silently poison every derived quantity.",
        example: "`\"score\": NaN` in the influence list",
        remediation: "replace the non-finite value with a real number",
    },
    CodeEntry {
        code: "N003",
        title: "zero-variance dimension",
        description: "A tuned dimension's domain contains a single point, so BO wastes a \
                      dimension modelling a constant.",
        example: "tuning `p` with domain [4, 4]",
        remediation: "pin the parameter and drop it from the stage",
    },
    CodeEntry {
        code: "A001",
        title: "plan proved infeasible",
        description: "The abstract interpreter proved a constraint (or the conjunction of \
                      all of them) unsatisfiable over the declared domains: no feasible \
                      point exists. Unlike S004 this is a proof, so it is an error.",
        example: "`n % 512 == 0` over `n` in [513, 1023]",
        remediation: "widen the bounds or remove the conflicting constraint",
    },
    CodeEntry {
        code: "A002",
        title: "tautological constraint",
        description: "Every point of the declared box satisfies the constraint; it can \
                      never reject a candidate and only costs evaluation time.",
        example: "`a >= 0` over `a` in [1, 8]",
        remediation: "drop the constraint, or tighten the bounds it was meant to guard",
    },
    CodeEntry {
        code: "A003",
        title: "rejection-sampling thrash risk",
        description: "The statically feasible fraction of the box is below 1e-3: uniform \
                      rejection sampling will discard almost every draw. The diagnostic \
                      carries a fixed-seed Monte-Carlo cross-check with a Wilson interval.",
        example: "`a <= 0` over `a` in [0, 99999]",
        remediation: "apply `cets analyze --contract`, or use the constructive sampler",
    },
    CodeEntry {
        code: "A004",
        title: "contractible bounds",
        description: "Backward contraction (HC4-revise) tightened a parameter's bounds: \
                      the declared domain is provably larger than the feasible region.",
        example: "`a * 64 <= 49152` contracts `a` in [32, 1024] to [32, 768]",
        remediation: "run `cets analyze --contract` to rewrite the plan",
    },
    CodeEntry {
        code: "A005",
        title: "contraction not converged",
        description: "The contraction fixpoint hit its iteration cap. The reported \
                      intervals are sound but may be looser than the true fixpoint.",
        example: "slowly-shrinking mutual bounds like `x <= y - 1`, `y <= x + 0.9`",
        remediation: "informational; tighten bounds manually if precision matters",
    },
    CodeEntry {
        code: "A006",
        title: "inferred relational bound",
        description: "The octagon closure inferred a two-parameter bound (x + y <= c or \
                      x - y <= c) strictly tighter than the per-parameter boxes imply and \
                      not already stated as a constraint.",
        example: "`g1 * zc <= 16384` infers `g1 + zc <= 544` by McCormick relaxation",
        remediation: "informational; samplers ignoring constraints overdraw that corner",
    },
    CodeEntry {
        code: "A007",
        title: "disjoint feasible slabs",
        description: "Disjunctive branch-and-prune recovered a union of disjoint slabs \
                      for a parameter: the feasible set is not an interval, and the hull \
                      overstates it.",
        example: "`a <= 1 || a >= 9` over [0, 10] leaves [0,1] and [9,10]",
        remediation: "informational; constructive samplers draw from the slab union",
    },
    CodeEntry {
        code: "A008",
        title: "disjunctive split cap reached",
        description: "The disjunctive expansion hit its branch cap; un-split `or` \
                      constraints fall back to the sound interval hull.",
        example: "five independent two-way disjunctions want 32 > 16 branches",
        remediation: "informational; simplify or merge disjunctive constraints",
    },
    CodeEntry {
        code: "A009",
        title: "congruence-contracted bounds",
        description: "The congruence domain proved an integer parameter lives on a \
                      residue grid n ≡ r (mod m): bounds snap to the outermost grid \
                      members and only one value in m is feasible, which rejection \
                      sampling cannot see.",
        example: "`n % 256 == 0` over [1, 100000] snaps to [256, 99840], stride 256",
        remediation: "use the constructive sampler (stride-aware) or contract the plan",
    },
    CodeEntry {
        code: "A010",
        title: "dead ordinal/categorical options",
        description: "The finite-set pass proved some declared ordinal values or \
                      categorical options infeasible under every constraint branch: the \
                      sampler keeps drawing options that can never be selected.",
        example: "`bcast <= 3` over six broadcast algorithms leaves two dead",
        remediation: "run `cets analyze --contract` (prefix survivors) or prune manually",
    },
    CodeEntry {
        code: "A011",
        title: "parameter forced to a single value",
        description: "Constraints statically force a parameter to one value: it is not a \
                      search dimension at all, only a constant the constraints already \
                      determine, and BO would waste a dimension on it.",
        example: "`mode == 2` over a three-option categorical",
        remediation: "pin the parameter to the forced value and drop it from the search",
    },
];

/// Look up the reference entry for `code` (case-insensitive). Covers the
/// plan-lint catalogue and the campaign-spec (`C`) family.
pub fn explain(code: &str) -> Option<&'static CodeEntry> {
    CODES
        .iter()
        .find(|e| e.code.eq_ignore_ascii_case(code.trim()))
        .or_else(|| crate::campaign::explain_campaign(code))
}

/// Render one entry as the `--explain` page.
pub fn render_explain(entry: &CodeEntry) -> String {
    format!(
        "{code}: {title}\n\n{description}\n\nexample:\n  {example}\n\nremediation:\n  {remediation}\n",
        code = entry.code,
        title = entry.title,
        description = entry.description,
        example = entry.example,
        remediation = entry.remediation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert_eq!(explain("a009").unwrap().code, "A009");
        assert_eq!(explain(" S001 ").unwrap().code, "S001");
        assert!(explain("Z999").is_none());
        assert!(explain("").is_none());
    }

    #[test]
    fn every_registry_code_has_an_entry_and_vice_versa() {
        use crate::registry::Registry;
        let mut emittable = Registry::with_analysis_rules().all_codes();
        emittable.sort_unstable();
        emittable.dedup();
        let documented: Vec<&str> = CODES.iter().map(|e| e.code).collect();
        for c in &emittable {
            assert!(documented.contains(c), "code {c} lacks an --explain entry");
        }
        for d in &documented {
            assert!(
                emittable.contains(d),
                "entry {d} matches no registered rule"
            );
        }
    }

    #[test]
    fn rendering_contains_all_sections() {
        let page = render_explain(explain("A010").unwrap());
        assert!(page.contains("A010"));
        assert!(page.contains("example:"));
        assert!(page.contains("remediation:"));
    }
}
