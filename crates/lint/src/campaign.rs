//! Campaign-spec validation for the `cets serve` intake path.
//!
//! A campaign spec is the JSON job description dropped into the service's
//! spool directory. Validation here is *syntactic* — shape, ranges, and
//! the objective-reference grammar — and runs before the service touches
//! its write-ahead log, so malformed submissions are rejected with stable
//! `C0xx` diagnostic codes instead of failing deep inside the runtime.
//! Semantic checks that need the instantiated objective (do the stage
//! parameters exist in its search space?) happen in `cets-serve` when the
//! objective is built; everything checkable from the JSON alone lives
//! here, reusing the same [`Diagnostic`] model as the plan lints.
//!
//! The `C` family is documented in [`CAMPAIGN_CODES`] and served by
//! `cets lint --explain` alongside the plan codes.

use crate::diag::{Diagnostic, Location};
use crate::explain::CodeEntry;
use serde::Value;

/// Objective families a campaign may reference, with their case ranges
/// (`None` = the family takes no case suffix). This is the grammar the
/// service implements; keep the two in sync.
pub const OBJECTIVE_FAMILIES: &[(&str, Option<(usize, usize)>)] =
    &[("sphere", None), ("synthetic", Some((1, 5)))];

/// Ceiling on per-stage evaluation budgets: a spec asking for more than
/// this is a typo, not a campaign.
pub const MAX_STAGE_EVALS: usize = 1_000_000;

/// Reference entries for the campaign-spec (`C`) diagnostic family.
pub const CAMPAIGN_CODES: &[CodeEntry] = &[
    CodeEntry {
        code: "C001",
        title: "missing or malformed campaign id",
        description: "Every campaign needs a stable `id` string (1-64 characters from \
                      [A-Za-z0-9._-]). The id keys the write-ahead log, dedupes spool \
                      re-scans after a crash, and names the campaign in summaries; without \
                      a well-formed id the service cannot track the campaign durably.",
        example: "`{\"objective\": \"sphere\", \"seed\": 1}` (no `id` field)",
        remediation: "add a unique `id` string using only letters, digits, `.`, `_`, `-`",
    },
    CodeEntry {
        code: "C002",
        title: "unknown objective reference",
        description: "The `objective` field must name a built-in family, optionally with a \
                      case suffix: `sphere` or `synthetic:1`..`synthetic:5`. Anything else \
                      cannot be instantiated by the service.",
        example: "`\"objective\": \"synthetic:9\"`",
        remediation: "use one of the documented objective references",
    },
    CodeEntry {
        code: "C003",
        title: "invalid evaluation budget",
        description: "`max_evals` (per stage) must be a positive integer no larger than \
                      1,000,000, and `n_init` (initial design size, default 4) must be \
                      positive and no larger than `max_evals` — otherwise a stage cannot \
                      complete its initial design, or the request is likely a typo.",
        example: "`\"max_evals\": 0`",
        remediation: "set 1 <= n_init <= max_evals <= 1000000",
    },
    CodeEntry {
        code: "C004",
        title: "malformed stage list",
        description: "`stages`, when present, must be a non-empty array of non-empty arrays \
                      of parameter-name strings, with no parameter repeated within or \
                      across stages. Each inner array becomes one sequential search over \
                      that parameter group; duplicates would tune the same parameter twice \
                      with conflicting results.",
        example: "`\"stages\": [[\"x0\"], [\"x0\", \"x1\"]]` (x0 repeated)",
        remediation: "list each parameter in exactly one stage, and no empty stages",
    },
    CodeEntry {
        code: "C005",
        title: "invalid fault or retry settings",
        description: "`flaky_rate` (injected failure probability, default 0) must be a \
                      finite number in [0, 1], and `max_retries` (default 1) an integer \
                      no larger than 10. Values outside these ranges either make the \
                      campaign unrunnable (every evaluation fails) or hammer a failing \
                      objective with unbounded retries.",
        example: "`\"flaky_rate\": 1.5`",
        remediation: "keep 0 <= flaky_rate <= 1 and 0 <= max_retries <= 10",
    },
];

/// Look up a `C`-family reference entry (case-insensitive).
pub fn explain_campaign(code: &str) -> Option<&'static CodeEntry> {
    CAMPAIGN_CODES
        .iter()
        .find(|e| e.code.eq_ignore_ascii_case(code.trim()))
}

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::error(code, Location::Plan, message)
}

fn is_valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Does `objective` match the [`OBJECTIVE_FAMILIES`] grammar?
pub fn is_known_objective(objective: &str) -> bool {
    let (family, case) = match objective.split_once(':') {
        Some((f, c)) => (f, Some(c)),
        None => (objective, None),
    };
    OBJECTIVE_FAMILIES
        .iter()
        .any(|(name, range)| match (range, case) {
            _ if *name != family => false,
            (None, None) => true,
            (Some((lo, hi)), Some(c)) => c.parse::<usize>().is_ok_and(|n| n >= *lo && n <= *hi),
            _ => false,
        })
}

/// Validate a raw campaign-spec JSON value. Returns every finding; the
/// intake path rejects the spec iff any finding is [`crate::Severity::Error`].
pub fn validate_campaign(v: &Value) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !matches!(v, Value::Object(_)) {
        out.push(err("C001", "campaign spec must be a JSON object".into()));
        return out;
    }

    match v.get_field("id") {
        Value::String(id) if is_valid_id(id) => {}
        Value::String(id) => out.push(err(
            "C001",
            format!("campaign id `{id}` must be 1-64 characters from [A-Za-z0-9._-]"),
        )),
        Value::Null => out.push(err(
            "C001",
            "campaign spec is missing the `id` field".into(),
        )),
        _ => out.push(err("C001", "campaign `id` must be a string".into())),
    }

    match v.get_field("objective") {
        Value::String(obj) if is_known_objective(obj) => {}
        Value::String(obj) => out.push(err(
            "C002",
            format!(
                "unknown objective `{obj}` (expected `sphere` or `synthetic:1`..`synthetic:5`)"
            ),
        )),
        Value::Null => out.push(err(
            "C002",
            "campaign spec is missing the `objective` field".into(),
        )),
        _ => out.push(err("C002", "campaign `objective` must be a string".into())),
    }

    if v.get_field("seed").as_u64().is_err() {
        out.push(err(
            "C003",
            "campaign `seed` must be a non-negative integer".into(),
        ));
    }

    let max_evals = match v.get_field("max_evals").as_u64() {
        Ok(n) if (1..=MAX_STAGE_EVALS as u64).contains(&n) => Some(n),
        Ok(n) => {
            out.push(err(
                "C003",
                format!("max_evals {n} outside 1..={MAX_STAGE_EVALS}"),
            ));
            None
        }
        Err(_) => {
            out.push(err(
                "C003",
                "campaign `max_evals` must be a positive integer".into(),
            ));
            None
        }
    };
    match v.get_field("n_init") {
        Value::Null => {}
        other => match (other.as_u64(), max_evals) {
            (Ok(0), _) => out.push(err("C003", "n_init must be positive".into())),
            (Ok(n), Some(me)) if n > me => out.push(err(
                "C003",
                format!("n_init {n} exceeds max_evals {me}: the initial design cannot complete"),
            )),
            (Ok(_), _) => {}
            (Err(_), _) => out.push(err("C003", "n_init must be a positive integer".into())),
        },
    }

    match v.get_field("stages") {
        Value::Null => {}
        stages => match stages.as_array() {
            Err(_) => out.push(err("C004", "stages must be an array of arrays".into())),
            Ok([]) => out.push(err(
                "C004",
                "stages, when present, must be non-empty".into(),
            )),
            Ok(list) => {
                let mut seen: Vec<&str> = Vec::new();
                for (si, stage) in list.iter().enumerate() {
                    match stage.as_array() {
                        Err(_) => out.push(err(
                            "C004",
                            format!("stage {si} must be an array of parameter names"),
                        )),
                        Ok([]) => out.push(err("C004", format!("stage {si} is empty"))),
                        Ok(params) => {
                            for p in params {
                                match p {
                                    Value::String(name) => {
                                        if seen.contains(&name.as_str()) {
                                            out.push(err(
                                                "C004",
                                                format!(
                                                    "parameter `{name}` appears in more than \
                                                     one stage entry"
                                                ),
                                            ));
                                        } else {
                                            seen.push(name);
                                        }
                                    }
                                    _ => out.push(err(
                                        "C004",
                                        format!("stage {si} contains a non-string entry"),
                                    )),
                                }
                            }
                        }
                    }
                }
            }
        },
    }

    match v.get_field("flaky_rate") {
        Value::Null => {}
        other => match other.as_f64() {
            Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => {}
            _ => out.push(err(
                "C005",
                "flaky_rate must be a finite number in [0, 1]".into(),
            )),
        },
    }
    match v.get_field("max_retries") {
        Value::Null => {}
        other => match other.as_u64() {
            Ok(n) if n <= 10 => {}
            _ => out.push(err(
                "C005",
                "max_retries must be an integer no larger than 10".into(),
            )),
        },
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::from_str;

    fn parse(s: &str) -> Value {
        from_str::<Value>(s).unwrap()
    }

    fn codes(v: &Value) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = validate_campaign(v).iter().map(|d| d.code).collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    #[test]
    fn valid_spec_is_clean() {
        let v = parse(
            r#"{"id": "demo-1", "objective": "sphere", "seed": 7, "max_evals": 10,
                "n_init": 4, "stages": [["x0", "x1"], ["x2"]],
                "flaky_rate": 0.2, "max_retries": 2}"#,
        );
        assert!(validate_campaign(&v).is_empty());
    }

    #[test]
    fn minimal_spec_is_clean() {
        let v = parse(r#"{"id": "m", "objective": "synthetic:3", "seed": 0, "max_evals": 5}"#);
        assert!(validate_campaign(&v).is_empty());
    }

    #[test]
    fn each_code_fires_on_its_defect() {
        let cases: Vec<(&str, &str)> = vec![
            (
                "C001",
                r#"{"objective": "sphere", "seed": 1, "max_evals": 5}"#,
            ),
            (
                "C001",
                r#"{"id": "bad id!", "objective": "sphere", "seed": 1, "max_evals": 5}"#,
            ),
            (
                "C002",
                r#"{"id": "a", "objective": "synthetic:9", "seed": 1, "max_evals": 5}"#,
            ),
            (
                "C002",
                r#"{"id": "a", "objective": "sphere:1", "seed": 1, "max_evals": 5}"#,
            ),
            (
                "C003",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 0}"#,
            ),
            (
                "C003",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 5, "n_init": 9}"#,
            ),
            (
                "C004",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 5,
                    "stages": [["x0"], ["x0"]]}"#,
            ),
            (
                "C004",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 5, "stages": [[]]}"#,
            ),
            (
                "C005",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 5,
                    "flaky_rate": 1.5}"#,
            ),
            (
                "C005",
                r#"{"id": "a", "objective": "sphere", "seed": 1, "max_evals": 5,
                    "max_retries": 99}"#,
            ),
        ];
        for (code, spec) in cases {
            let found = codes(&parse(spec));
            assert!(
                found.contains(&code),
                "{spec} should raise {code}, got {found:?}"
            );
        }
    }

    #[test]
    fn every_emitted_code_is_documented_and_unique() {
        // Every code the validator can emit has a CAMPAIGN_CODES entry,
        // entries are unique, and the family does not collide with the
        // plan-lint catalogue.
        let documented: Vec<&str> = CAMPAIGN_CODES.iter().map(|e| e.code).collect();
        for e in CAMPAIGN_CODES {
            assert!(e.code.starts_with('C'), "{} not in the C family", e.code);
            assert!(
                crate::explain::CODES.iter().all(|p| p.code != e.code),
                "{} collides with the plan catalogue",
                e.code
            );
        }
        let mut uniq = documented.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), documented.len(), "duplicate campaign codes");
        // Exercised codes (from the defect matrix above) are a subset.
        for code in ["C001", "C002", "C003", "C004", "C005"] {
            assert!(documented.contains(&code), "{code} undocumented");
            assert!(explain_campaign(code).is_some());
        }
    }

    #[test]
    fn non_object_spec_rejected() {
        assert_eq!(codes(&parse("[1, 2]")), vec!["C001"]);
    }
}
