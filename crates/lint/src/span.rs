//! Physical source spans for plan files.
//!
//! The JSON loader ([`crate::loader`]) parses into plain data and loses
//! all source positions; this module recovers them with a second,
//! *structural* pass over the raw text. [`index_spans`] walks the byte
//! stream with a tiny lossless scanner and records the byte range of
//! every object in the top-level `params` and `constraints` arrays, keyed
//! by the same names the loader assigns (`name` field, or `c{i}` for an
//! unnamed constraint). The result powers `physicalLocation` regions in
//! the SARIF reporter and `--> file:line:col` arrows in the human one.
//!
//! The scanner is total and best-effort: on any byte it does not
//! understand it stops and returns whatever it has indexed so far — a
//! diagnostic without a span still renders, it just loses the precise
//! file region. It never panics and never allocates proportionally to
//! nesting depth beyond the recursion guard.

use crate::diag::Location;
use std::collections::BTreeMap;

/// A byte region of the plan source, with 1-based line/column of its
/// start for editors that want positions instead of offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Source path, when the bundle was loaded from disk.
    pub file: Option<String>,
    /// Byte offset of the region start.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
    /// 1-based line of the region start.
    pub line: usize,
    /// 1-based column (in bytes) of the region start.
    pub col: usize,
}

/// Spans of the named entities of one plan file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTable {
    /// Source path attached to every looked-up span (set by
    /// [`crate::loader::load_path`]).
    pub file: Option<String>,
    params: BTreeMap<String, Span>,
    constraints: BTreeMap<String, Span>,
}

impl SpanTable {
    /// No spans recorded at all?
    pub fn is_empty(&self) -> bool {
        self.params.is_empty() && self.constraints.is_empty()
    }

    /// The span for a diagnostic location, when the source region is
    /// known. Only parameter and constraint locations map to file
    /// regions; plan-level findings have no natural anchor.
    pub fn lookup(&self, loc: &Location) -> Option<Span> {
        let span = match loc {
            Location::Param(n) => self.params.get(n),
            Location::Constraint(n) => self.constraints.get(n),
            _ => None,
        }?;
        let mut s = span.clone();
        s.file = self.file.clone();
        Some(s)
    }
}

/// Index the `params` / `constraints` object spans of `src`.
pub fn index_spans(src: &str) -> SpanTable {
    let mut table = SpanTable::default();
    let mut sc = Scanner {
        b: src.as_bytes(),
        i: 0,
        depth: 0,
    };
    sc.scan_top(&mut table);
    finish_lines(src, &mut table);
    table
}

/// Fill in line/col for every recorded span in one pass over `src`.
fn finish_lines(src: &str, table: &mut SpanTable) {
    let mut offsets: Vec<usize> = table
        .params
        .values()
        .chain(table.constraints.values())
        .map(|s| s.offset)
        .collect();
    offsets.sort_unstable();
    offsets.dedup();
    let mut pos: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut next = offsets.iter().peekable();
    for (i, ch) in src.bytes().enumerate() {
        while let Some(&&o) = next.peek() {
            if o == i {
                pos.insert(o, (line, col));
                next.next();
            } else {
                break;
            }
        }
        if next.peek().is_none() {
            break;
        }
        if ch == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    for s in table
        .params
        .values_mut()
        .chain(table.constraints.values_mut())
    {
        if let Some(&(l, c)) = pos.get(&s.offset) {
            s.line = l;
            s.col = c;
        }
    }
}

/// Recursion guard: deeper nesting than any sane plan file uses.
const MAX_DEPTH: usize = 128;

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Consume a string literal (cursor on the opening quote), returning
    /// its raw contents. `None` on malformed input or when the string
    /// contains escapes — names with escapes just lose their span.
    fn string(&mut self) -> Option<Option<String>> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.i;
        let mut escaped = false;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    let raw = &self.b[start..self.i];
                    self.i += 1;
                    return Some(if escaped {
                        None
                    } else {
                        std::str::from_utf8(raw).ok().map(str::to_string)
                    });
                }
                b'\\' => {
                    escaped = true;
                    self.i += 1;
                    if self.peek().is_some() {
                        self.i += 1;
                    }
                }
                _ => self.i += 1,
            }
        }
        None // unterminated
    }

    /// Skip any JSON value. `None` aborts the whole scan (best-effort).
    fn skip_value(&mut self) -> Option<()> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match self.peek()? {
            b'"' => self.string().map(|_| ()),
            b'{' => self.skip_delimited(b'{', b'}'),
            b'[' => self.skip_delimited(b'[', b']'),
            _ => {
                // number / true / false / null: consume the token.
                while let Some(c) = self.peek() {
                    if matches!(c, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                        break;
                    }
                    self.i += 1;
                }
                Some(())
            }
        }
    }

    fn skip_delimited(&mut self, open: u8, close: u8) -> Option<()> {
        if !self.eat(open) {
            return None;
        }
        self.depth += 1;
        loop {
            self.skip_ws();
            match self.peek()? {
                c if c == close => {
                    self.i += 1;
                    self.depth -= 1;
                    return Some(());
                }
                b',' | b':' => self.i += 1,
                b'"' => {
                    self.string()?;
                }
                _ => self.skip_value()?,
            }
        }
    }

    /// Skip one object while capturing its `"name"` string field.
    fn object_capturing_name(&mut self) -> Option<Option<String>> {
        self.skip_ws();
        if !self.eat(b'{') {
            return None;
        }
        self.depth += 1;
        let mut name = None;
        loop {
            self.skip_ws();
            match self.peek()? {
                b'}' => {
                    self.i += 1;
                    self.depth -= 1;
                    return Some(name);
                }
                b',' => self.i += 1,
                b'"' => {
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return None;
                    }
                    self.skip_ws();
                    if key.as_deref() == Some("name") && self.peek() == Some(b'"') {
                        name = self.string()?;
                    } else {
                        self.skip_value()?;
                    }
                }
                _ => return None,
            }
        }
    }

    /// Walk the top-level object, indexing `params` / `constraints`.
    fn scan_top(&mut self, table: &mut SpanTable) -> Option<()> {
        self.skip_ws();
        if !self.eat(b'{') {
            return None;
        }
        self.depth += 1;
        loop {
            self.skip_ws();
            match self.peek()? {
                b'}' => return Some(()),
                b',' => self.i += 1,
                b'"' => {
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return None;
                    }
                    match key.as_deref() {
                        Some(k @ ("params" | "constraints")) => {
                            self.indexed_array(k == "params", table)?
                        }
                        _ => self.skip_value()?,
                    }
                }
                _ => return None,
            }
        }
    }

    /// Index one entity array: record each element object's byte span.
    fn indexed_array(&mut self, is_params: bool, table: &mut SpanTable) -> Option<()> {
        self.skip_ws();
        if !self.eat(b'[') {
            return None;
        }
        self.depth += 1;
        let mut idx = 0usize;
        loop {
            self.skip_ws();
            match self.peek()? {
                b']' => {
                    self.i += 1;
                    self.depth -= 1;
                    return Some(());
                }
                b',' => self.i += 1,
                b'{' => {
                    let start = self.i;
                    let name = self.object_capturing_name()?;
                    let span = Span {
                        file: None,
                        offset: start,
                        len: self.i - start,
                        line: 0,
                        col: 0,
                    };
                    let key = match (name, is_params) {
                        (Some(n), _) => Some(n),
                        (None, false) => Some(format!("c{idx}")),
                        (None, true) => None, // unnamed param: loader rejects it anyway
                    };
                    if let Some(k) = key {
                        let map = if is_params {
                            &mut table.params
                        } else {
                            &mut table.constraints
                        };
                        map.entry(k).or_insert(span);
                    }
                    idx += 1;
                }
                _ => {
                    self.skip_value()?;
                    idx += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"{
    "params": [
        {"name": "tb", "kind": "integer", "lo": 1, "hi": 32},
        {"name": "lr", "kind": "real", "lo": 0.0, "hi": 1.0}
    ],
    "constraints": [
        {"name": "smem", "expr": "tb * 64 <= 2048"},
        {"expr": "lr <= 0.5"}
    ]
}"#;

    #[test]
    fn indexes_params_and_constraints_by_name() {
        let t = index_spans(SRC);
        let tb = t.lookup(&Location::Param("tb".into())).expect("tb span");
        assert_eq!(
            &SRC[tb.offset..tb.offset + tb.len],
            r#"{"name": "tb", "kind": "integer", "lo": 1, "hi": 32}"#
        );
        assert_eq!(tb.line, 3);
        let smem = t
            .lookup(&Location::Constraint("smem".into()))
            .expect("smem span");
        assert!(SRC[smem.offset..smem.offset + smem.len].contains("tb * 64"));
        // Unnamed constraints get the loader's fallback key.
        let c1 = t
            .lookup(&Location::Constraint("c1".into()))
            .expect("c1 span");
        assert!(SRC[c1.offset..c1.offset + c1.len].contains("lr <= 0.5"));
    }

    #[test]
    fn non_entity_locations_have_no_span() {
        let t = index_spans(SRC);
        assert!(t.lookup(&Location::Plan).is_none());
        assert!(t.lookup(&Location::Param("ghost".into())).is_none());
    }

    #[test]
    fn scanner_is_total_on_garbage() {
        for src in ["", "not json", "{", r#"{"params": [{"name": "a""#, "[1,2]"] {
            let _ = index_spans(src); // must not panic
        }
        // Partial input still yields the spans scanned before the break.
        let t = index_spans(r#"{"params": [{"name": "a", "kind": "real"}], "constraints": ["#);
        assert!(t.lookup(&Location::Param("a".into())).is_some());
    }

    #[test]
    fn escaped_names_lose_their_span_gracefully() {
        let t = index_spans(r#"{"params": [{"name": "a\"b", "kind": "real"}]}"#);
        assert!(t.is_empty());
    }

    #[test]
    fn file_is_attached_on_lookup() {
        let mut t = index_spans(SRC);
        t.file = Some("plan.json".into());
        let s = t.lookup(&Location::Param("tb".into())).unwrap();
        assert_eq!(s.file.as_deref(), Some("plan.json"));
    }

    #[test]
    fn strings_with_brackets_do_not_confuse_the_scanner() {
        let t = index_spans(
            r#"{"params": [{"name": "a", "kind": "categorical", "options": ["x{y", "z]w"]}]}"#,
        );
        assert!(t.lookup(&Location::Param("a".into())).is_some());
    }
}
