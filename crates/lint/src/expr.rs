//! A small arithmetic/comparison expression language for constraints.
//!
//! Plan files (and the in-memory [`crate::bundle::ConstraintSpec`]s built
//! from `cets_space::Constraint` descriptions) express constraints as
//! strings like `"tb * tb_sm <= 2048"` or `"a + b <= 10 && a >= 0"`. This
//! module parses them into an AST and evaluates them against a named
//! variable environment, which is what lets the linter probe constraints
//! for satisfiability (rule `S004`) and check variable references
//! (rule `S005`) without executing any objective.
//!
//! Grammar (usual precedence, lowest first):
//!
//! ```text
//! or    := and ( '||' and )*
//! and   := cmp ( '&&' cmp )*
//! cmp   := sum ( ('<='|'>='|'=='|'!='|'<'|'>') sum )?
//! sum   := prod ( ('+'|'-') prod )*
//! prod  := unary ( ('*'|'/'|'%') unary )*
//! unary := '-' unary | atom
//! atom  := number | identifier | '(' or ')'
//! ```
//!
//! Booleans are represented as `1.0` / `0.0`; a constraint is *satisfied*
//! when its value is non-zero.

use std::collections::BTreeSet;

/// Binary operators of the constraint language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Parsed constraint expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Named variable (a search-space parameter).
    Var(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Every variable name referenced by the expression.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(n) => {
                out.insert(n.clone());
            }
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Does the expression contain a comparison or logical operator (i.e.
    /// does it read as a predicate rather than a bare arithmetic value)?
    pub fn is_predicate(&self) -> bool {
        match self {
            Expr::Bin(op, a, b) => {
                matches!(
                    op,
                    BinOp::Le | BinOp::Ge | BinOp::Lt | BinOp::Gt | BinOp::Eq | BinOp::Ne
                ) || matches!(op, BinOp::And | BinOp::Or)
                    || a.is_predicate()
                    || b.is_predicate()
            }
            Expr::Neg(e) => e.is_predicate(),
            _ => false,
        }
    }

    /// Evaluate against a variable environment. Booleans are `1.0`/`0.0`.
    ///
    /// Fails on unknown variables; never panics. Division by zero follows
    /// IEEE semantics (`inf`/`nan`), which the caller treats as
    /// unsatisfied.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Result<f64, String> {
        match self {
            Expr::Num(x) => Ok(*x),
            Expr::Var(n) => lookup(n).ok_or_else(|| format!("unknown variable `{n}`")),
            Expr::Neg(e) => Ok(-e.eval(lookup)?),
            Expr::Bin(op, a, b) => {
                let x = a.eval(lookup)?;
                let y = b.eval(lookup)?;
                let bool_of = |c: bool| if c { 1.0 } else { 0.0 };
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Rem => x % y,
                    BinOp::Le => bool_of(x <= y),
                    BinOp::Ge => bool_of(x >= y),
                    BinOp::Lt => bool_of(x < y),
                    BinOp::Gt => bool_of(x > y),
                    BinOp::Eq => bool_of(x == y),
                    BinOp::Ne => bool_of(x != y),
                    BinOp::And => bool_of(x != 0.0 && y != 0.0),
                    BinOp::Or => bool_of(x != 0.0 || y != 0.0),
                })
            }
        }
    }

    /// Evaluate as a predicate: non-zero and finite-or-boolean means
    /// satisfied; NaN means unsatisfied.
    pub fn satisfied(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Result<bool, String> {
        let v = self.eval(lookup)?;
        Ok(!v.is_nan() && v != 0.0)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Op(BinOp),
    Minus,
    Plus,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Op(BinOp::Mul));
                i += 1;
            }
            '/' => {
                out.push(Tok::Op(BinOp::Div));
                i += 1;
            }
            '%' => {
                out.push(Tok::Op(BinOp::Rem));
                i += 1;
            }
            '<' | '>' | '=' | '!' | '&' | '|' => {
                let next = bytes.get(i + 1).copied();
                let (tok, len) = match (c, next) {
                    ('<', Some('=')) => (Tok::Op(BinOp::Le), 2),
                    ('>', Some('=')) => (Tok::Op(BinOp::Ge), 2),
                    ('=', Some('=')) => (Tok::Op(BinOp::Eq), 2),
                    ('!', Some('=')) => (Tok::Op(BinOp::Ne), 2),
                    ('&', Some('&')) => (Tok::Op(BinOp::And), 2),
                    ('|', Some('|')) => (Tok::Op(BinOp::Or), 2),
                    ('<', _) => (Tok::Op(BinOp::Lt), 1),
                    ('>', _) => (Tok::Op(BinOp::Gt), 1),
                    _ => return Err(format!("unexpected character `{c}` at offset {i}")),
                };
                out.push(tok);
                i += len;
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number `{text}` at offset {start}"))?;
                out.push(Tok::Num(v));
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            _ => return Err(format!("unexpected character `{c}` at offset {i}")),
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, ops: &[BinOp]) -> Option<BinOp> {
        if let Some(Tok::Op(op)) = self.peek() {
            if ops.contains(op) {
                let op = *op;
                self.pos += 1;
                return Some(op);
            }
        }
        None
    }

    fn or(&mut self) -> Result<Expr, String> {
        let mut lhs = self.and()?;
        while let Some(op) = self.eat_op(&[BinOp::Or]) {
            let rhs = self.and()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, String> {
        let mut lhs = self.cmp()?;
        while let Some(op) = self.eat_op(&[BinOp::And]) {
            let rhs = self.cmp()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, String> {
        let lhs = self.sum()?;
        if let Some(op) = self.eat_op(&[
            BinOp::Le,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Gt,
        ]) {
            let rhs = self.sum()?;
            return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn sum(&mut self) -> Result<Expr, String> {
        let mut lhs = self.prod()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.prod()?;
                    lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.prod()?;
                    lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn prod(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.eat_op(&[BinOp::Mul, BinOp::Div, BinOp::Rem]) {
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            Some(Tok::Plus) => {
                self.pos += 1;
                self.unary()
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, String> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(n)) => Ok(Expr::Var(n)),
            Some(Tok::LParen) => {
                let e = self.or()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(e),
                    _ => Err("missing `)`".into()),
                }
            }
            Some(t) => Err(format!("unexpected token {t:?}")),
            None => Err("unexpected end of expression".into()),
        }
    }
}

/// Parse a constraint expression; never panics.
pub fn parse(src: &str) -> Result<Expr, String> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err("empty expression".into());
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.or()?;
    if p.pos != p.toks.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            &p.toks[p.pos..]
        ));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn eval(src: &str, vars: &[(&str, f64)]) -> f64 {
        let m = env(vars);
        parse(src).unwrap().eval(&|n| m.get(n).copied()).unwrap()
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(eval("1 + 2 * 3", &[]), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &[]), 9.0);
        assert_eq!(eval("-2 * 3", &[]), -6.0);
        assert_eq!(eval("7 % 4", &[]), 3.0);
        assert_eq!(eval("2e2 + 0.5", &[]), 200.5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            eval("tb * tb_sm <= 2048", &[("tb", 32.0), ("tb_sm", 64.0)]),
            1.0
        );
        assert_eq!(
            eval("tb * tb_sm <= 2048", &[("tb", 64.0), ("tb_sm", 64.0)]),
            0.0
        );
        assert_eq!(
            eval("a >= 0 && a + b <= 10", &[("a", 1.0), ("b", 2.0)]),
            1.0
        );
        assert_eq!(eval("a < 0 || b < 0", &[("a", 1.0), ("b", 2.0)]), 0.0);
        assert_eq!(eval("a != b", &[("a", 1.0), ("b", 2.0)]), 1.0);
    }

    #[test]
    fn variables_collected() {
        let e = parse("a + b * c <= d").unwrap();
        let vars: Vec<String> = e.vars().into_iter().collect();
        assert_eq!(vars, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn predicate_detection() {
        assert!(parse("a <= 1").unwrap().is_predicate());
        assert!(parse("a <= 1 && b > 0").unwrap().is_predicate());
        assert!(!parse("a + b").unwrap().is_predicate());
    }

    #[test]
    fn unknown_variable_is_error_not_panic() {
        let e = parse("zz + 1").unwrap();
        assert!(e.eval(&|_| None).is_err());
    }

    #[test]
    fn parse_failures() {
        assert!(parse("").is_err());
        assert!(parse("a +").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a ? b").is_err());
        assert!(parse("a <= 1 extra ~").is_err());
        assert!(parse("1..2").is_err());
    }

    #[test]
    fn satisfied_treats_nan_as_false() {
        let e = parse("a / b").unwrap();
        let m = env(&[("a", 0.0), ("b", 0.0)]);
        assert!(!e.satisfied(&|n| m.get(n).copied()).unwrap());
    }
}
