//! Render a [`Report`] for humans or machines.

use crate::diag::Diagnostic;
use crate::registry::Report;
use serde::Value;

/// Rustc-style plain-text rendering:
///
/// ```text
/// error[S001]: duplicate parameter `tb`
///   --> param `tb`
///   help: parameter names must be unique; rename or remove one definition
/// ```
pub fn render_human(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(s, "{}[{}]: {}", d.severity, d.code, d.message);
        match &d.span {
            Some(sp) => {
                let file = sp.file.as_deref().unwrap_or("<plan>");
                let _ = writeln!(s, "  --> {}:{}:{} ({})", file, sp.line, sp.col, d.location);
            }
            None => {
                let _ = writeln!(s, "  --> {}", d.location);
            }
        }
        if let Some(h) = &d.help {
            let _ = writeln!(s, "  help: {h}");
        }
    }
    let _ = write!(
        s,
        "lint: {} error(s), {} warning(s)",
        report.errors(),
        report.warnings()
    );
    s
}

fn diagnostic_value(d: &Diagnostic) -> Value {
    let mut loc = vec![("kind".to_string(), Value::String(d.location.kind().into()))];
    if let Some(n) = d.location.name() {
        loc.push(("name".to_string(), Value::String(n.into())));
    }
    let mut fields = vec![
        ("code".to_string(), Value::String(d.code.into())),
        (
            "severity".to_string(),
            Value::String(d.severity.label().into()),
        ),
        ("location".to_string(), Value::Object(loc)),
        ("message".to_string(), Value::String(d.message.clone())),
    ];
    if let Some(h) = &d.help {
        fields.push(("help".to_string(), Value::String(h.clone())));
    }
    if let Some(sp) = &d.span {
        let mut span = Vec::new();
        if let Some(f) = &sp.file {
            span.push(("file".to_string(), Value::String(f.clone())));
        }
        span.push(("offset".to_string(), Value::UInt(sp.offset as u64)));
        span.push(("len".to_string(), Value::UInt(sp.len as u64)));
        span.push(("line".to_string(), Value::UInt(sp.line as u64)));
        span.push(("col".to_string(), Value::UInt(sp.col as u64)));
        fields.push(("span".to_string(), Value::Object(span)));
    }
    Value::Object(fields)
}

/// Machine-readable JSON rendering (stable field names):
///
/// ```text
/// {"errors": 1, "warnings": 0, "diagnostics": [{"code": "S001", ...}]}
/// ```
pub fn render_json(report: &Report) -> String {
    let v = Value::Object(vec![
        ("errors".to_string(), Value::UInt(report.errors() as u64)),
        (
            "warnings".to_string(),
            Value::UInt(report.warnings() as u64),
        ),
        (
            "diagnostics".to_string(),
            Value::Array(report.diagnostics.iter().map(diagnostic_value).collect()),
        ),
    ]);
    serde_json::to_string_pretty(&v)
        .unwrap_or_else(|e| format!("{{\"error\":\"report rendering failed: {e}\"}}"))
}

fn sarif_level(d: &Diagnostic) -> &'static str {
    match d.severity {
        crate::diag::Severity::Error => "error",
        crate::diag::Severity::Warning => "warning",
        crate::diag::Severity::Info => "note",
    }
}

fn sarif_result(d: &Diagnostic) -> Value {
    let mut logical = vec![("kind".to_string(), Value::String(d.location.kind().into()))];
    if let Some(n) = d.location.name() {
        logical.push(("name".to_string(), Value::String(n.into())));
    }
    logical.push((
        "fullyQualifiedName".to_string(),
        Value::String(d.location.to_string()),
    ));
    let mut location = vec![(
        "logicalLocations".to_string(),
        Value::Array(vec![Value::Object(logical)]),
    )];
    if let Some(sp) = &d.span {
        let mut physical = Vec::new();
        if let Some(f) = &sp.file {
            physical.push((
                "artifactLocation".to_string(),
                Value::Object(vec![("uri".to_string(), Value::String(f.clone()))]),
            ));
        }
        physical.push((
            "region".to_string(),
            Value::Object(vec![
                ("byteOffset".to_string(), Value::UInt(sp.offset as u64)),
                ("byteLength".to_string(), Value::UInt(sp.len as u64)),
                ("startLine".to_string(), Value::UInt(sp.line as u64)),
                ("startColumn".to_string(), Value::UInt(sp.col as u64)),
            ]),
        ));
        location.push(("physicalLocation".to_string(), Value::Object(physical)));
    }
    let mut fields = vec![
        ("ruleId".to_string(), Value::String(d.code.into())),
        ("level".to_string(), Value::String(sarif_level(d).into())),
        (
            "message".to_string(),
            Value::Object(vec![("text".to_string(), Value::String(d.message.clone()))]),
        ),
        (
            "locations".to_string(),
            Value::Array(vec![Value::Object(location)]),
        ),
    ];
    if let Some(h) = &d.help {
        fields.push((
            "properties".to_string(),
            Value::Object(vec![("help".to_string(), Value::String(h.clone()))]),
        ));
    }
    Value::Object(fields)
}

/// SARIF 2.1.0 rendering, for editor / CI ingestion.
///
/// The output is a single-run SARIF log: `runs[0].tool.driver` names the
/// tool (`cets-lint`) and lists every distinct rule code the report
/// carries; `runs[0].results` holds one result per diagnostic, with the
/// severity mapped onto SARIF levels (`error`, `warning`, and `note` for
/// [`Severity::Info`]) and the bundle location exposed as a
/// `logicalLocation`. Fix-it hints travel in the result's property bag
/// under `"help"`.
///
/// [`Severity::Info`]: crate::diag::Severity::Info
pub fn render_sarif(report: &Report) -> String {
    // Distinct rule ids, in first-emission order.
    let mut rule_ids: Vec<&'static str> = Vec::new();
    for d in &report.diagnostics {
        if !rule_ids.contains(&d.code) {
            rule_ids.push(d.code);
        }
    }
    let rules = Value::Array(
        rule_ids
            .into_iter()
            .map(|id| Value::Object(vec![("id".to_string(), Value::String(id.into()))]))
            .collect(),
    );
    let driver = Value::Object(vec![
        ("name".to_string(), Value::String("cets-lint".into())),
        (
            "informationUri".to_string(),
            Value::String("https://example.invalid/cets".into()),
        ),
        ("rules".to_string(), rules),
    ]);
    let run = Value::Object(vec![
        (
            "tool".to_string(),
            Value::Object(vec![("driver".to_string(), driver)]),
        ),
        (
            "results".to_string(),
            Value::Array(report.diagnostics.iter().map(sarif_result).collect()),
        ),
    ]);
    let v = Value::Object(vec![
        (
            "$schema".to_string(),
            Value::String("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version".to_string(), Value::String("2.1.0".into())),
        ("runs".to_string(), Value::Array(vec![run])),
    ]);
    serde_json::to_string_pretty(&v)
        .unwrap_or_else(|e| format!("{{\"error\":\"report rendering failed: {e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Location};

    fn sample_report() -> Report {
        Report {
            diagnostics: vec![
                Diagnostic::error(
                    "S001",
                    Location::Param("tb".into()),
                    "duplicate parameter `tb`",
                )
                .with_help("rename one"),
                Diagnostic::warning("G002", Location::Graph, "orphaned"),
            ],
        }
    }

    #[test]
    fn human_rendering_has_codes_and_counts() {
        let s = render_human(&sample_report());
        assert!(s.contains("error[S001]"));
        assert!(s.contains("warning[G002]"));
        assert!(s.contains("--> param `tb`"));
        assert!(s.contains("help: rename one"));
        assert!(s.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_rendering_roundtrips() {
        let s = render_json(&sample_report());
        let v = serde_json::parse_value(&s).expect("reporter emits valid JSON");
        assert_eq!(v.get_field("errors").as_u64().unwrap(), 1);
        assert_eq!(v.get_field("warnings").as_u64().unwrap(), 1);
        let diags = v.get_field("diagnostics").as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert!(matches!(
            diags[0].get_field("code"),
            serde::Value::String(c) if c == "S001"
        ));
        assert!(matches!(
            diags[0].get_field("location").get_field("name"),
            serde::Value::String(n) if n == "tb"
        ));
    }

    #[test]
    fn empty_report_renders() {
        let rep = Report::default();
        assert!(render_human(&rep).contains("0 error(s)"));
        let v = serde_json::parse_value(&render_json(&rep)).unwrap();
        assert_eq!(v.get_field("diagnostics").as_array().unwrap().len(), 0);
    }

    #[test]
    fn sarif_rendering_roundtrips() {
        let mut rep = sample_report();
        rep.diagnostics
            .push(Diagnostic::info("A005", Location::Plan, "did not converge"));
        let s = render_sarif(&rep);
        let v = serde_json::parse_value(&s).expect("reporter emits valid JSON");
        assert!(matches!(
            v.get_field("version"),
            serde::Value::String(ver) if ver == "2.1.0"
        ));
        let runs = v.get_field("runs").as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get_field("tool").get_field("driver");
        assert!(matches!(
            driver.get_field("name"),
            serde::Value::String(n) if n == "cets-lint"
        ));
        // One rule entry per distinct code.
        assert_eq!(driver.get_field("rules").as_array().unwrap().len(), 3);
        let results = runs[0].get_field("results").as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert!(matches!(
            results[0].get_field("ruleId"),
            serde::Value::String(c) if c == "S001"
        ));
        assert!(matches!(
            results[0].get_field("level"),
            serde::Value::String(l) if l == "error"
        ));
        // Info maps onto SARIF's "note".
        assert!(matches!(
            results[2].get_field("level"),
            serde::Value::String(l) if l == "note"
        ));
        // Logical locations carry the bundle location.
        let loc = results[0].get_field("locations").as_array().unwrap()[0]
            .get_field("logicalLocations")
            .as_array()
            .unwrap()[0]
            .clone();
        assert!(matches!(
            loc.get_field("kind"),
            serde::Value::String(k) if k == "param"
        ));
        assert!(matches!(
            loc.get_field("name"),
            serde::Value::String(n) if n == "tb"
        ));
        // Help rides in the property bag.
        assert!(matches!(
            results[0].get_field("properties").get_field("help"),
            serde::Value::String(h) if h == "rename one"
        ));
    }

    #[test]
    fn spans_render_as_physical_locations() {
        use crate::span::Span;
        let rep = Report {
            diagnostics: vec![Diagnostic::warning(
                "A004",
                Location::Param("tb".into()),
                "contractible",
            )
            .with_span(Span {
                file: Some("plan.json".into()),
                offset: 20,
                len: 52,
                line: 3,
                col: 9,
            })],
        };
        // Human rendering gains the file:line:col arrow.
        let human = render_human(&rep);
        assert!(human.contains("--> plan.json:3:9"), "{human}");
        // SARIF rendering gains a physicalLocation region.
        let v = serde_json::parse_value(&render_sarif(&rep)).unwrap();
        let loc = v.get_field("runs").as_array().unwrap()[0]
            .get_field("results")
            .as_array()
            .unwrap()[0]
            .get_field("locations")
            .as_array()
            .unwrap()[0]
            .clone();
        let phys = loc.get_field("physicalLocation");
        assert!(matches!(
            phys.get_field("artifactLocation").get_field("uri"),
            serde::Value::String(u) if u == "plan.json"
        ));
        let region = phys.get_field("region");
        assert_eq!(region.get_field("byteOffset").as_u64().unwrap(), 20);
        assert_eq!(region.get_field("byteLength").as_u64().unwrap(), 52);
        assert_eq!(region.get_field("startLine").as_u64().unwrap(), 3);
        // JSON rendering carries the span too.
        let j = serde_json::parse_value(&render_json(&rep)).unwrap();
        let d0 = j.get_field("diagnostics").as_array().unwrap()[0].clone();
        assert_eq!(
            d0.get_field("span").get_field("offset").as_u64().unwrap(),
            20
        );
    }

    #[test]
    fn sarif_dedupes_rule_ids() {
        let rep = Report {
            diagnostics: vec![
                Diagnostic::warning("A004", Location::Param("a".into()), "x"),
                Diagnostic::warning("A004", Location::Param("b".into()), "y"),
            ],
        };
        let v = serde_json::parse_value(&render_sarif(&rep)).unwrap();
        let runs = v.get_field("runs").as_array().unwrap();
        let driver = runs[0].get_field("tool").get_field("driver");
        assert_eq!(driver.get_field("rules").as_array().unwrap().len(), 1);
        assert_eq!(runs[0].get_field("results").as_array().unwrap().len(), 2);
    }
}
