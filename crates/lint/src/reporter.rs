//! Render a [`Report`] for humans or machines.

use crate::diag::Diagnostic;
use crate::registry::Report;
use serde::Value;

/// Rustc-style plain-text rendering:
///
/// ```text
/// error[S001]: duplicate parameter `tb`
///   --> param `tb`
///   help: parameter names must be unique; rename or remove one definition
/// ```
pub fn render_human(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(s, "{}[{}]: {}", d.severity, d.code, d.message);
        let _ = writeln!(s, "  --> {}", d.location);
        if let Some(h) = &d.help {
            let _ = writeln!(s, "  help: {h}");
        }
    }
    let _ = write!(
        s,
        "lint: {} error(s), {} warning(s)",
        report.errors(),
        report.warnings()
    );
    s
}

fn diagnostic_value(d: &Diagnostic) -> Value {
    let mut loc = vec![("kind".to_string(), Value::String(d.location.kind().into()))];
    if let Some(n) = d.location.name() {
        loc.push(("name".to_string(), Value::String(n.into())));
    }
    let mut fields = vec![
        ("code".to_string(), Value::String(d.code.into())),
        (
            "severity".to_string(),
            Value::String(d.severity.label().into()),
        ),
        ("location".to_string(), Value::Object(loc)),
        ("message".to_string(), Value::String(d.message.clone())),
    ];
    if let Some(h) = &d.help {
        fields.push(("help".to_string(), Value::String(h.clone())));
    }
    Value::Object(fields)
}

/// Machine-readable JSON rendering (stable field names):
///
/// ```text
/// {"errors": 1, "warnings": 0, "diagnostics": [{"code": "S001", ...}]}
/// ```
pub fn render_json(report: &Report) -> String {
    let v = Value::Object(vec![
        ("errors".to_string(), Value::UInt(report.errors() as u64)),
        (
            "warnings".to_string(),
            Value::UInt(report.warnings() as u64),
        ),
        (
            "diagnostics".to_string(),
            Value::Array(report.diagnostics.iter().map(diagnostic_value).collect()),
        ),
    ]);
    serde_json::to_string_pretty(&v)
        .unwrap_or_else(|e| format!("{{\"error\":\"report rendering failed: {e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Location};

    fn sample_report() -> Report {
        Report {
            diagnostics: vec![
                Diagnostic::error(
                    "S001",
                    Location::Param("tb".into()),
                    "duplicate parameter `tb`",
                )
                .with_help("rename one"),
                Diagnostic::warning("G002", Location::Graph, "orphaned"),
            ],
        }
    }

    #[test]
    fn human_rendering_has_codes_and_counts() {
        let s = render_human(&sample_report());
        assert!(s.contains("error[S001]"));
        assert!(s.contains("warning[G002]"));
        assert!(s.contains("--> param `tb`"));
        assert!(s.contains("help: rename one"));
        assert!(s.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_rendering_roundtrips() {
        let s = render_json(&sample_report());
        let v = serde_json::parse_value(&s).expect("reporter emits valid JSON");
        assert_eq!(v.get_field("errors").as_u64().unwrap(), 1);
        assert_eq!(v.get_field("warnings").as_u64().unwrap(), 1);
        let diags = v.get_field("diagnostics").as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert!(matches!(
            diags[0].get_field("code"),
            serde::Value::String(c) if c == "S001"
        ));
        assert!(matches!(
            diags[0].get_field("location").get_field("name"),
            serde::Value::String(n) if n == "tb"
        ));
    }

    #[test]
    fn empty_report_renders() {
        let rep = Report::default();
        assert!(render_human(&rep).contains("0 error(s)"));
        let v = serde_json::parse_value(&render_json(&rep)).unwrap();
        assert_eq!(v.get_field("diagnostics").as_array().unwrap().len(), 0);
    }
}
