//! Wall-time shape of the Table III strategies (reduced budgets): random
//! search is cheap and parallel, the joint high-dimensional BO search pays
//! the O(N³)-driven premium, splits sit in between.

use cets_core::{run_strategy, BoConfig, Strategy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use criterion::{criterion_group, criterion_main, Criterion};

fn bo(seed: u64) -> BoConfig {
    BoConfig {
        n_init: 5,
        n_candidates: 64,
        n_local: 8,
        retrain_every: 10,
        seed,
        ..Default::default()
    }
}

fn bench_strategies(c: &mut Criterion) {
    let owners = SyntheticFunction::owners();
    let evals_per_dim = 2;
    let mut group = c.benchmark_group("table3_strategies_case3");
    group.sample_size(10);
    let cases: Vec<(&str, Strategy)> = vec![
        ("random", Strategy::RandomSearch { n_evals: 40 }),
        ("joint_20dim", Strategy::FullyJoint),
        (
            "split_g3g4",
            Strategy::Groups(vec![
                vec!["G1".into()],
                vec!["G2".into()],
                vec!["G3".into(), "G4".into()],
            ]),
        ),
        ("independent", Strategy::FullyIndependent),
    ];
    for (label, strategy) in cases {
        group.bench_function(label, |b| {
            b.iter(|| {
                let f = SyntheticFunction::new(SyntheticCase::Case3);
                let pairs = SyntheticFunction::owner_pairs(&owners);
                run_strategy(&f, &pairs, &strategy, &bo(1), evals_per_dim).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
