//! Acquisition-optimization cost: scoring a candidate batch against a
//! fitted GP posterior (the per-iteration overhead of the BO loop).

use cets_core::{BoConfig, BoSearch, Objective};
use cets_gp::{Gp, Kernel, KernelKind};
use cets_space::Subspace;
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bench_posterior_scoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 10;
    let x: Vec<Vec<f64>> = (0..100)
        .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r.iter().sum()).collect();
    let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, d), 1e-6).unwrap();
    let candidates: Vec<Vec<f64>> = (0..256)
        .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
        .collect();
    c.bench_function("score_256_candidates_n100_d10", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|u| gp.predict(u).0)
                .fold(f64::INFINITY, f64::min)
        })
    });
}

fn bench_bo_iteration(c: &mut Criterion) {
    // One full 10-eval BO search on a 5-dim subspace: the unit of work a
    // split strategy runs per group.
    let f = SyntheticFunction::new(SyntheticCase::Case1).with_noise(0.0);
    let sub = Subspace::new(
        f.space(),
        &["x0", "x1", "x2", "x3", "x4"],
        f.default_config(),
    )
    .unwrap();
    let mut group = c.benchmark_group("bo_search_10evals_5dim");
    group.sample_size(10);
    group.bench_function("run", |b| {
        b.iter(|| {
            BoSearch::new(BoConfig {
                n_init: 5,
                max_evals: 10,
                n_candidates: 64,
                n_local: 8,
                seed: 7,
                ..Default::default()
            })
            .run(&sub, |cfg| f.evaluate(cfg).total)
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_posterior_scoring, bench_bo_iteration);
criterion_main!(benches);
