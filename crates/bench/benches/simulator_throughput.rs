//! Throughput of the RT-TDDFT performance simulator: evaluations per
//! second bound the scale of every experiment in the harness.

use cets_core::Objective;
use cets_tddft::{CaseStudy, TddftSimulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulate(c: &mut Criterion) {
    for (label, case) in [("cs1", CaseStudy::case1()), ("cs2", CaseStudy::case2())] {
        let sim = TddftSimulator::new(case);
        let cfg = sim.default_config();
        c.bench_function(&format!("tddft_evaluate_{label}"), |b| {
            b.iter(|| sim.evaluate(&cfg))
        });
    }
}

fn bench_synthetic_eval(c: &mut Criterion) {
    use cets_synthetic::{SyntheticCase, SyntheticFunction};
    let f = SyntheticFunction::new(SyntheticCase::Case5);
    let cfg = f.default_config();
    c.bench_function("synthetic_evaluate_case5", |b| b.iter(|| f.evaluate(&cfg)));
}

criterion_group!(benches, bench_simulate, bench_synthetic_eval);
criterion_main!(benches);
