//! Cost of the paper's cheap interdependence analysis: a full per-routine
//! sensitivity pass is `1 + D×V` objective evaluations. Benchmarked on
//! the TDDFT simulator (the expensive-evaluation regime the methodology
//! targets) and on the synthetic functions.

use cets_core::{routine_sensitivity, Objective, VariationPolicy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use cets_tddft::{CaseStudy, TddftSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tddft_sensitivity(c: &mut Criterion) {
    let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
    let baseline = sim.default_config();
    let mut group = c.benchmark_group("tddft_sensitivity");
    for v in [2usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("variations", v), &v, |b, &v| {
            b.iter(|| {
                routine_sensitivity(&sim, &baseline, &VariationPolicy::Spread { count: v }).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_synthetic_sensitivity(c: &mut Criterion) {
    let f = SyntheticFunction::new(SyntheticCase::Case3)
        .with_noise(0.0)
        .as_raw();
    let baseline = f.space().decode(&[0.6; 20]).unwrap();
    c.bench_function("synthetic_sensitivity_v20", |b| {
        b.iter(|| {
            routine_sensitivity(
                &f,
                &baseline,
                &VariationPolicy::Multiplicative {
                    count: 20,
                    factor: 0.1,
                },
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_tddft_sensitivity,
    bench_synthetic_sensitivity
);
criterion_main!(benches);
