//! The O(N³) Gaussian-process fitting cost the paper's search-time
//! analysis rests on: fit time vs number of observations at fixed
//! dimensionality (10, the methodology's cap).

use cets_gp::{Gp, Kernel, KernelKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r.iter().sum::<f64>().sin()).collect();
    (x, y)
}

fn bench_gp_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit_fixed_hyperparams");
    for n in [25usize, 50, 100, 200] {
        let (x, y) = data(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let k = Kernel::new(KernelKind::Matern52, 10);
                Gp::fit(&x, &y, k, 1e-6).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_gp_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_predict");
    for n in [50usize, 200] {
        let (x, y) = data(n, 10);
        let gp = Gp::fit(&x, &y, Kernel::new(KernelKind::Matern52, 10), 1e-6).unwrap();
        let probe = vec![0.5; 10];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| gp.predict(&probe))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gp_fit, bench_gp_predict);
criterion_main!(benches);
