//! Random-forest training + importance cost (the insights phase).

use cets_stats::{RandomForest, RandomForestConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(5);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.random::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + r[1] * r[1]).collect();
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_fit_d20");
    group.sample_size(20);
    for n in [100usize, 200] {
        let (x, y) = data(n, 20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_permutation_importance(c: &mut Criterion) {
    let (x, y) = data(150, 20);
    let forest = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
    let mut group = c.benchmark_group("forest_permutation_importance");
    group.sample_size(10);
    group.bench_function("n150_d20", |b| {
        b.iter(|| forest.permutation_importance(&x, &y, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_permutation_importance);
criterion_main!(benches);
