//! # cets-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! CETS paper's evaluation. Each `src/bin/exp_*.rs` binary corresponds to
//! one artifact (see DESIGN.md §4 for the index); this library holds the
//! shared plumbing: canonical experiment configurations, repetition
//! helpers, and table formatting.
//!
//! Run an experiment with
//!
//! ```text
//! cargo run --release -p cets-bench --bin exp_table3_strategies
//! ```
//!
//! Binaries accept `--reps N` (repetitions) and `--quick` (reduced
//! budgets for smoke-testing) where applicable.

use cets_core::{routine_sensitivity, BoConfig, Objective, VariationPolicy};
use cets_tddft::TddftSimulator;

/// Parse `--reps N` and `--quick` from argv.
pub struct ExpArgs {
    /// Number of repetitions for averaged experiments.
    pub reps: usize,
    /// Reduced budgets (CI smoke mode).
    pub quick: bool,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with an experiment-specific default
    /// repetition count.
    pub fn parse(default_reps: usize) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut reps = default_reps;
        let mut quick = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" => {
                    reps = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(default_reps);
                    i += 1;
                }
                "--quick" => quick = true,
                _ => {}
            }
            i += 1;
        }
        ExpArgs { reps, quick }
    }

    /// Scale a budget down in quick mode.
    pub fn budget(&self, full: usize) -> usize {
        if self.quick {
            (full / 4).max(5)
        } else {
            full
        }
    }
}

/// The canonical BO configuration used by the paper-reproduction
/// experiments: 5 initial random configurations (paper Section IV-D),
/// expected improvement, periodic hyperparameter retraining.
pub fn paper_bo(seed: u64) -> BoConfig {
    BoConfig {
        n_init: 5,
        n_candidates: 256,
        n_local: 32,
        retrain_every: 5,
        seed,
        ..Default::default()
    }
}

/// Shared driver for the Table V / Table VI experiments: print the
/// per-routine top-10 sensitivity tables for one TDDFT case study plus the
/// paper-shape checks.
pub fn tddft_sensitivity_table(sim: TddftSimulator) {
    println!("{}\n", sim.case().name);
    let baseline = sim.default_config();
    let scores = routine_sensitivity(&sim, &baseline, &VariationPolicy::Spread { count: 5 })
        .expect("sensitivity");
    println!(
        "observation cost: {} application evaluations (1 + 20 params × 5 variations)\n",
        scores.observation_cost()
    );

    let routines = ["G1", "G2", "G3", "Slater"];
    let tables: Vec<_> = routines
        .iter()
        .map(|r| scores.top_k(r, 10).unwrap())
        .collect();

    println!(
        "{:<24} {:<24} {:<24} {:<24}",
        "Group 1", "Group 2", "Group 3", "Slater Deter."
    );
    println!(
        "{:<13}{:>10} {:<13}{:>10} {:<13}{:>10} {:<13}{:>10}",
        "Feature", "Var.", "Feature", "Var.", "Feature", "Var.", "Feature", "Var."
    );
    for i in 0..10 {
        let mut line = String::new();
        for t in &tables {
            let (name, v) = &t.rows[i];
            line.push_str(&format!("{:<13}{:>9.2}% ", name, v * 100.0));
        }
        println!("{line}");
    }

    println!("\nShape checks against the paper:");
    let s = |p: &str, r: &str| scores.score_by_name(p, r).unwrap();
    println!(
        "  nbatches dominates G1/G2/G3:    {:.0}% / {:.0}% / {:.0}%  (paper CS1: 357/321/95)",
        s("nbatches", "G1") * 100.0,
        s("nbatches", "G2") * 100.0,
        s("nbatches", "G3") * 100.0
    );
    println!(
        "  nstb on Slater:                 {:.0}%  (paper CS1: 88%)",
        s("nstb", "Slater") * 100.0
    );
    println!(
        "  tb_sm_pair cross-influences G3: {:.0}%  (paper CS1: 76%)  — the cache effect",
        s("tb_sm_pair", "G3") * 100.0
    );
    println!(
        "  tb_zcopy on G3 vs G1:           {:.0}% vs {:.0}%  (shared kernel, G3 wins)",
        s("tb_zcopy", "G3") * 100.0,
        s("tb_zcopy", "G1") * 100.0
    );
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Render a unicode sparkline of a series (e.g. an incumbent trace) for
/// terminal output, lowest value = deepest bar.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Print a banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!(m1, 5.0);
        assert_eq!(s1, 0.0);
    }

    #[test]
    fn quick_budget_scales() {
        let a = ExpArgs {
            reps: 5,
            quick: true,
        };
        assert_eq!(a.budget(100), 25);
        assert_eq!(a.budget(8), 5);
        let b = ExpArgs {
            reps: 5,
            quick: false,
        };
        assert_eq!(b.budget(100), 100);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Constant series renders uniformly (no panic on zero span).
        let c = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(c.chars().count(), 3);
    }

    #[test]
    fn row_formats() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
