//! A2 — Ablation: (a) the 10-dimension cap and (b) the acquisition
//! function, on synthetic Case 4's merged G3+G4 search.
//!
//! The paper caps every search at 10 dimensions "grounded in the
//! feasibility of conducting outstanding BO searches within a manageable
//! number of iterations". Here we tune a deliberately over-wide merged
//! search (all 20 parameters targeting G3+G4's joint value) under caps of
//! 5 / 10 / 20 at a *fixed total budget*, and separately compare EI / LCB
//! / PI acquisitions on the paper's 10-dim merged search.
//!
//! Flags: `--reps N` (default 3), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{execute_plan, Acquisition, PlannedSearch, SearchPlan, SearchTarget};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let args = ExpArgs::parse(3);
    let budget = if args.quick { 30 } else { 100 };
    banner(
        "A2",
        "Ablation: dimension cap and acquisition function (Case 4)",
    );
    println!(
        "reps = {}, fixed budget = {budget} evaluations per search\n",
        args.reps
    );

    let owners = SyntheticFunction::owners();
    // Importance proxy: G3/G4 parameters first (x10..x19), then the rest.
    let ranked: Vec<String> = (10..20).chain(0..10).map(|i| format!("x{i}")).collect();

    println!("--- (a) dimension cap at fixed budget ---");
    println!("{:>6} {:>12} {:>10}", "cap", "minimum", "±std");
    for cap in [5usize, 10, 20] {
        let mut minima = Vec::new();
        for rep in 0..args.reps {
            let f = SyntheticFunction::new(SyntheticCase::Case4).with_seed(rep as u64);
            let params: Vec<String> = ranked.iter().take(cap).cloned().collect();
            let plan = SearchPlan {
                stages: vec![vec![PlannedSearch {
                    name: format!("G3+G4 cap{cap}"),
                    params,
                    dropped: ranked.iter().skip(cap).cloned().collect(),
                    target: SearchTarget::Routines(vec!["G3".into(), "G4".into()]),
                    budget,
                }]],
            };
            let exec = execute_plan(&f, &plan, &paper_bo(700 + rep as u64), false).expect("run");
            minima.push(exec.final_value);
        }
        let (m, s) = mean_std(&minima);
        println!("{:>6} {:>12.2} {:>10.2}", cap, m, s);
    }
    let _ = &owners;

    println!("\n--- (b) acquisition function on the 10-dim merged search ---");
    println!("{:>28} {:>12} {:>10}", "acquisition", "minimum", "±std");
    let acquisitions: Vec<(&str, Acquisition)> = vec![
        (
            "ExpectedImprovement(0.01)",
            Acquisition::ExpectedImprovement { xi: 0.01 },
        ),
        (
            "LowerConfidenceBound(2.0)",
            Acquisition::LowerConfidenceBound { beta: 2.0 },
        ),
        (
            "ProbabilityOfImprovement",
            Acquisition::ProbabilityOfImprovement { xi: 0.01 },
        ),
    ];
    for (name, acq) in acquisitions {
        let mut minima = Vec::new();
        for rep in 0..args.reps {
            let f = SyntheticFunction::new(SyntheticCase::Case4).with_seed(rep as u64);
            let params: Vec<String> = (10..20).map(|i| format!("x{i}")).collect();
            let plan = SearchPlan {
                stages: vec![vec![PlannedSearch {
                    name: "G3+G4".into(),
                    params,
                    dropped: vec![],
                    target: SearchTarget::Routines(vec!["G3".into(), "G4".into()]),
                    budget,
                }]],
            };
            let mut bo = paper_bo(800 + rep as u64);
            bo.acquisition = acq;
            let exec = execute_plan(&f, &plan, &bo, false).expect("run");
            minima.push(exec.final_value);
        }
        let (m, s) = mean_std(&minima);
        println!("{:>28} {:>12.2} {:>10.2}", name, m, s);
    }
    println!("\nExpected shape: cap 10 ≈ cap 20 or better at this budget (the extra");
    println!("dimensions cost more than they contribute), cap 5 loses access to half");
    println!("the coupled variables; acquisition choice is second-order.");
}
