//! T2 — Table II: variability of Group 3's output for the five synthetic
//! cases, top-10 sensitive variables.
//!
//! Protocol (paper Section IV-B): one random baseline configuration, then
//! 100 individual variations per parameter, each increasing the value by
//! 10% relative to the preceding iteration. Variability on the raw Group 3
//! output (the scale Table II reports).

use cets_bench::{banner, ExpArgs};
use cets_core::{routine_sensitivity, Objective, VariationPolicy};
use cets_space::Sampler;
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse(1);
    banner(
        "T2",
        "Group 3 output variability per synthetic case (paper Table II)",
    );
    let count = args.budget(100);

    // One table per paper layout: rows x10..x19, columns Case 1..5.
    let mut columns: Vec<Vec<(String, f64)>> = Vec::new();
    for case in SyntheticCase::all() {
        let f = SyntheticFunction::new(case).as_raw();
        // Random baseline (paper: "a baseline configuration was randomly
        // selected") — fixed seed for reproducibility.
        let mut rng = StdRng::seed_from_u64(2024);
        let baseline = Sampler::new(f.space()).uniform(&mut rng).unwrap();
        let scores = routine_sensitivity(
            &f,
            &baseline,
            &VariationPolicy::Multiplicative {
                count,
                factor: 0.10,
            },
        )
        .expect("sensitivity");
        let table = scores.top_k("G3", 10).unwrap();
        columns.push(table.rows);
    }

    println!("Top-10 sensitive variables for Group 3's output ({count} variations/parameter):\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Feature", "Case 1", "Case 2", "Case 3", "Case 4", "Case 5"
    );
    // Row set: union of all columns' features, ordered x10..x19 like the
    // paper's table.
    for p in 10..20 {
        let name = format!("x{p}");
        let mut cells = Vec::new();
        for col in &columns {
            let v = col
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| format!("{:.2}%", v * 100.0))
                .unwrap_or_else(|| "-".to_string());
            cells.push(v);
        }
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }

    println!("\nExpected shape (paper): Cases 1-2 dominated by x10-x14 (own variables);");
    println!("Case 3 balanced; Cases 4-5 dominated by x15-x19 (Group 4 variables).");

    // Verify the shape programmatically and report it.
    let mean_of = |col: &Vec<(String, f64)>, lo: usize, hi: usize| -> f64 {
        let vals: Vec<f64> = col
            .iter()
            .filter(|(n, _)| {
                let idx: usize = n[1..].parse().unwrap_or(0);
                idx >= lo && idx < hi
            })
            .map(|(_, v)| *v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!(
        "\n{:<8} {:>16} {:>16} {:>10}",
        "Case", "own (x10-14)", "cross (x15-19)", "ratio"
    );
    for (case, col) in SyntheticCase::all().iter().zip(&columns) {
        let own = mean_of(col, 10, 15);
        let cross = mean_of(col, 15, 20);
        println!(
            "{:<8} {:>15.1}% {:>15.1}% {:>10.2}",
            case.name(),
            own * 100.0,
            cross * 100.0,
            cross / own.max(1e-12)
        );
    }
}
