//! X0 — In-text claims of Section IV-B on the synthetic functions:
//! "Pearson correlation aligns with expectations, revealing the absence of
//! linear dependence between variables. Concurrently, a feature importance
//! analysis, leveraging Random Forest trees, was also conducted, which
//! showed a uniform distribution of modeling importance across variables."

use cets_bench::{banner, ExpArgs};
use cets_core::{gather_insights, InsightsConfig};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let args = ExpArgs::parse(1);
    banner(
        "X0",
        "Synthetic insights: Pearson + RF importance (paper Section IV-B in-text)",
    );
    let n_samples = args.budget(200);

    println!(
        "{:<8} {:>14} {:>18} {:>22} {:>14}",
        "Case", "max |pearson|", "importance range", "uniform share = 5%", "max share"
    );
    for case in SyntheticCase::all() {
        let f = SyntheticFunction::new(case);
        let ins = match gather_insights(
            &f,
            &InsightsConfig {
                n_samples,
                seed: 12,
                correlation_threshold: 0.0,
                ..Default::default()
            },
        ) {
            Ok(ins) => ins,
            Err(e) => {
                eprintln!("X0: insights failed for {}: {e}", case.name());
                std::process::exit(1);
            }
        };

        // Largest absolute pairwise correlation (paper: no linear deps —
        // the inputs are sampled independently, so this is a calibration
        // check on the analysis, not on the function).
        let max_r = ins
            .correlated
            .iter()
            .map(|(_, _, r)| r.abs())
            .fold(0.0_f64, f64::max);

        // Feature-importance uniformity: paper says roughly uniform.
        let (min_i, max_i) = ins
            .importance
            .iter()
            .fold((f64::INFINITY, 0.0_f64), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        println!(
            "{:<8} {:>14.3} {:>10.3}-{:<7.3} {:>22} {:>13.1}%",
            case.name(),
            max_r,
            min_i,
            max_i,
            "(20 vars)",
            max_i * 100.0
        );
    }
    println!("\nExpected: max |pearson| stays small (independent uniform sampling);");
    println!("importance is spread across many variables rather than concentrated —");
    println!("for the high-coupling cases (4-5) the Group 3/4 variables carry more");
    println!("weight, which is the interdependence signal showing through the model.");
}
