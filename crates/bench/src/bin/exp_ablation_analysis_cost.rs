//! A3 — Ablation: the methodology's sensitivity analysis vs a classical
//! pairwise (orthogonality/interaction) analysis — observation cost and
//! agreement on the detected interdependence structure.
//!
//! This quantifies the paper's core cost claim: inferring inter-routine
//! interdependence from `1 + D×V` individual-variation observations
//! instead of the `1 + D + D(D−1)/2` (per level) a factorial interaction
//! screen needs.

use cets_bench::banner;
use cets_core::{
    pairwise_interactions_on, routine_sensitivity, CountingObjective, InteractionAnalysis,
    Objective, VariationPolicy,
};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    banner(
        "A3",
        "Sensitivity analysis vs pairwise interaction screen (cost & agreement)",
    );
    println!(
        "{:<8} {:>22} {:>22} {:>12} {:>14}",
        "Case", "sensitivity obs (V=5)", "interaction obs", "G3-G4 pair?", "sens. cross %"
    );
    for case in SyntheticCase::all() {
        let f = SyntheticFunction::new(case).with_noise(0.0).as_raw();
        let baseline = f.space().decode(&[0.6; 20]).unwrap();

        // Methodology path: per-routine sensitivity.
        let counted = CountingObjective::new(&f);
        let scores =
            routine_sensitivity(&counted, &baseline, &VariationPolicy::Spread { count: 5 })
                .expect("sensitivity");
        let sens_obs = counted.count();
        let cross: f64 = (15..20)
            .map(|p| scores.score_by_name(&format!("x{p}"), "G3").unwrap())
            .sum::<f64>()
            / 5.0;

        // Classical path: pairwise interaction screen on Group 3's raw
        // output (screening the log-scale total would hide multiplicative
        // couplings: ln(x·y) is additive).
        let counted2 = CountingObjective::new(&f);
        let inter = pairwise_interactions_on(&counted2, &baseline, |o| o.routines[2])
            .expect("interactions");
        let inter_obs = counted2.count();
        // Does the screen flag any (Group 3 var, Group 4 var) pair?
        let mut flagged = 0;
        for u in 10..15 {
            for v in 15..20 {
                if inter
                    .effect_by_name(&format!("x{u}"), &format!("x{v}"))
                    .unwrap()
                    > 0.05
                {
                    flagged += 1;
                }
            }
        }
        let cross_disp = if cross > 10.0 {
            ">1000%".to_string()
        } else {
            format!("{:.1}%", cross * 100.0)
        };
        println!(
            "{:<8} {:>22} {:>22} {:>12} {:>14}",
            case.name(),
            sens_obs,
            inter_obs,
            format!("{flagged}/25"),
            cross_disp
        );
    }
    println!(
        "\nTheoretical costs at D = 20: sensitivity 1 + 20×5 = {}, interaction \
         screen 1 + 20 + 190 = {} per probe level (quadratic in D).",
        101,
        InteractionAnalysis::expected_cost(20)
    );
    println!("Both analyses agree on which cases couple Groups 3 and 4; the");
    println!("sensitivity analysis additionally localizes the influence per routine");
    println!("(needed for the DAG) at roughly half the observations.");
}
