//! T1 — Table I + Figure 1: the five synthetic function definitions, with
//! sample evaluations demonstrating each case's Group 4→Group 3 coupling.

use cets_bench::banner;
use cets_core::Objective;
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    banner(
        "T1",
        "Synthetic function definitions (paper Table I / Figure 1)",
    );
    println!("{:<8} {:<16} Group 3 formula", "Case", "G4 influence");
    for case in SyntheticCase::all() {
        println!(
            "{:<8} {:<16} {}",
            case.name(),
            case.group4_influence(),
            case.group3_formula()
        );
    }

    println!("\nSample raw group values at x = (1, ..., 1) and with x15 doubled:");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12}   G3 shift when only x15 changes",
        "Case", "G1", "G2", "G3", "G4"
    );
    for case in SyntheticCase::all() {
        let f = SyntheticFunction::new(case).with_noise(0.0);
        let ones = vec![1.0; 20];
        let mut moved = ones.clone();
        moved[15] = 2.0;
        let base = f.raw_groups(&ones);
        let shifted = f.raw_groups(&moved);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>14.2} {:>12.2}   G3: {:.2} -> {:.2}",
            case.name(),
            base[0],
            base[1],
            base[2],
            base[3],
            base[2],
            shifted[2]
        );
    }

    println!("\nObjective (minimized) = ln(1+|G1|) + ln(1+|G2|) + ln(1+|G3|) + ln(1+|G4|)");
    let f = SyntheticFunction::new(SyntheticCase::Case3).with_noise(0.0);
    let cfg = f.default_config();
    let obs = f.evaluate(&cfg);
    println!(
        "Default (untuned) configuration objective for Case 3: {:.3} (groups: {:?})",
        obs.total,
        obs.routines
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
