//! T6 — Table VI: per-routine sensitivity (top-10) on RT-TDDFT Case
//! Study 2 (hBN slab). Same protocol as Table V; the k-point-rich system
//! shifts weight toward `nkpb`/`nbatches` in the Slater column.

use cets_bench::{banner, tddft_sensitivity_table};
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    banner(
        "T6",
        "Per-routine sensitivity, TDDFT Case Study 2 (paper Table VI)",
    );
    tddft_sensitivity_table(TddftSimulator::new(CaseStudy::case2()));
}
