//! A1 — Ablation: the influence cut-off. Sweep the cut-off from 5% to 50%
//! on all five synthetic cases and report (a) the search plan it induces
//! and (b) the final minimum at a fixed total budget.
//!
//! The paper argues there is "no one-size-fits-all cut-off"; this ablation
//! makes the trade-off concrete: a cut-off too low merges weakly coupled
//! groups (higher dimensionality, worse BO navigation at fixed budget),
//! too high misses real interdependence (Cases 4-5 suffer).
//!
//! Flags: `--reps N` (default 3), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{Methodology, MethodologyConfig, Objective, VariationPolicy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let args = ExpArgs::parse(3);
    let evals_per_dim = if args.quick { 3 } else { 10 };
    banner("A1", "Ablation: influence cut-off sweep (5% - 300%)");
    println!("reps = {}, evals/dim = {evals_per_dim}\n", args.reps);

    // Raw-scale cross-influences reach >200% in Cases 4-5, so the sweep
    // extends past 100% to show where too-high cut-offs lose the merge.
    let cutoffs = [0.05, 0.25, 1.0, 3.0];
    println!(
        "{:<8} {:>8} {:>10} {:>16} {:>14}",
        "Case", "cut-off", "#searches", "plan (dims)", "minimum"
    );
    for case in SyntheticCase::all() {
        for &cutoff in &cutoffs {
            let mut minima = Vec::new();
            let mut plan_desc = String::new();
            for rep in 0..args.reps {
                let analysis = SyntheticFunction::new(case).with_seed(rep as u64).as_raw();
                let exec_f = SyntheticFunction::new(case).with_seed(rep as u64);
                let owners = SyntheticFunction::owners();
                let pairs = SyntheticFunction::owner_pairs(&owners);
                let baseline = analysis.space().decode(&[0.6; 20]).unwrap();
                let m = Methodology::new(MethodologyConfig {
                    cutoff,
                    max_dims: 10,
                    variation_policy: VariationPolicy::Multiplicative {
                        count: 20,
                        factor: 0.1,
                    },
                    bo: paper_bo(500 + rep as u64),
                    evals_per_dim,
                    ..Default::default()
                });
                let report = m.analyze(&analysis, &pairs, &baseline).expect("analysis");
                if rep == 0 {
                    let dims: Vec<String> = report
                        .plan
                        .searches()
                        .map(|s| format!("{}", s.dim()))
                        .collect();
                    plan_desc = dims.join("+");
                }
                let exec = m.execute(&exec_f, &report).expect("execution");
                minima.push(exec.final_value);
            }
            let (mm, _) = mean_std(&minima);
            let n_searches = plan_desc.matches('+').count() + 1;
            println!(
                "{:<8} {:>7.0}% {:>10} {:>16} {:>14.2}",
                case.name(),
                cutoff * 100.0,
                n_searches,
                plan_desc,
                mm
            );
        }
        println!();
    }
    println!("Expected shape: for Cases 1-2 the cut-off barely matters (no real");
    println!("coupling); for Cases 3-5 very high cut-offs miss the G3-G4 merge and");
    println!("give worse minima; very low cut-offs over-merge and dilute the budget.");
}
