//! T5 — Table V: per-routine sensitivity (top-10) on RT-TDDFT Case Study 1
//! (Mg-porphyrin): Group 1, Group 2, Group 3 and the Slater-determinant
//! region.
//!
//! Protocol (paper Section VIII): fixed baseline, five individual
//! variations per parameter spread across each parameter's domain.

use cets_bench::{banner, tddft_sensitivity_table};
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    banner(
        "T5",
        "Per-routine sensitivity, TDDFT Case Study 1 (paper Table V)",
    );
    tddft_sensitivity_table(TddftSimulator::new(CaseStudy::case1()));
}
