//! F2 — Figure 2: the influence DAG for synthetic Case 3 after applying
//! the 25% cut-off (Graphviz DOT on stdout, plus the adjacency summary).

use cets_bench::banner;
use cets_core::{build_graph, routine_sensitivity, Objective, VariationPolicy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    banner(
        "F2",
        "Influence DAG for Case 3 at 25% cut-off (paper Figure 2)",
    );
    let f = SyntheticFunction::new(SyntheticCase::Case3).as_raw();
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let baseline = f.space().decode(&[0.6; 20]).unwrap();

    let scores = routine_sensitivity(
        &f,
        &baseline,
        &VariationPolicy::Multiplicative {
            count: 30,
            factor: 0.10,
        },
    )
    .expect("sensitivity");
    let graph = build_graph(&f, &pairs, &scores).expect("graph");

    let cutoff = 0.25;
    println!("-- DOT (feed to graphviz: dot -Tpng) --\n");
    println!("{}", graph.to_dot(cutoff).unwrap());

    println!("-- Adjacency at {:.0}% cut-off --", cutoff * 100.0);
    for e in graph.cross_edges(cutoff).unwrap() {
        println!(
            "  {} (owned by {}) --{:.0}%--> {}   [CROSS: forces merge]",
            graph.params()[e.param],
            e.from.map(|r| graph.routines()[r].as_str()).unwrap_or("-"),
            e.score * 100.0,
            graph.routines()[e.to]
        );
    }

    let part = graph.partition(cutoff, &[]).unwrap();
    println!("\n-- Resulting partition --");
    for g in part.groups() {
        let names: Vec<&str> = g
            .routines
            .iter()
            .map(|&r| graph.routines()[r].as_str())
            .collect();
        println!(
            "  search over {{{}}} with {} parameters",
            names.join(", "),
            g.params.len()
        );
    }
    println!("\n{}", part.to_dot(&graph));
}
