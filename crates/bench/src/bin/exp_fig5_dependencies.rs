//! F5 — Figure 5: the dependency diagram of the resulting TDDFT searches
//! after the 10% cut-off — nbatches linking to all GPU groups, the Group 2
//! → Group 3 cache edge, and the precedence of the Iterations and MPI
//! searches.

use cets_bench::banner;
use cets_core::{BoConfig, Methodology, MethodologyConfig, Objective, VariationPolicy};
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    banner(
        "F5",
        "Dependency diagram of the resulting searches (paper Figure 5)",
    );
    let sim = TddftSimulator::new(CaseStudy::case1()).with_expert_constraints();
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();

    let m = Methodology::new(MethodologyConfig {
        cutoff: 0.10,
        max_dims: 10,
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Slater".into(), "MPI".into()],
        shared_params: TddftSimulator::shared_params(),
        bo: BoConfig::default(),
        evals_per_dim: 10,
        parallel: true,
        ..Default::default()
    });
    let report = m
        .analyze(&sim, &pairs, &sim.default_config())
        .expect("analysis");

    println!("-- Influence DAG (10% cut-off) --\n");
    println!("{}", report.graph.to_dot(0.10).unwrap());

    println!("-- Cross-edges driving the diagram --");
    for e in report.graph.cross_edges(0.10).unwrap() {
        println!(
            "  {:<12} ({} -> {})  {:.0}%",
            report.graph.params()[e.param],
            e.from
                .map(|r| report.graph.routines()[r].as_str())
                .unwrap_or("-"),
            report.graph.routines()[e.to],
            e.score * 100.0
        );
    }

    println!("\n-- Search clusters (precedence + merged groups) --\n");
    println!("{}", report.partition.to_dot(&report.graph));
}
