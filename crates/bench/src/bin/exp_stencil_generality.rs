//! G1 — Generality (paper conclusion): the methodology applied unchanged
//! to a different domain — a distributed 3D Jacobi stencil with the
//! deep-halo compute/communication trade — detects the Compute↔Halo
//! interdependence, plans `Decomp → (Compute+Halo ∥ Reduce)`, and beats
//! both extreme strategies at equal budget-per-dimension.
//!
//! Flags: `--reps N` (default 3), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{
    run_strategy, Methodology, MethodologyConfig, Objective, Strategy, VariationPolicy,
};
use cets_stencil::{StencilApp, StencilProblem};

fn main() {
    let args = ExpArgs::parse(3);
    let evals_per_dim = if args.quick { 3 } else { 10 };
    banner("G1", "Methodology generality: distributed 3D stencil");

    // --- Plan structure.
    let app = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
    let owners = StencilApp::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let m = Methodology::new(MethodologyConfig {
        cutoff: 0.06,
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Decomp".into()],
        bo: paper_bo(1),
        evals_per_dim,
        ..Default::default()
    });
    let report = m
        .analyze(&app, &pairs, &app.default_config())
        .expect("analysis");
    println!("Suggested plan:\n{}", report.plan.describe());

    // --- Strategy comparison (the GPU-kernel routines only; Decomp is a
    // precedence routine in every strategy, handled via the plan above).
    println!(
        "{:<28} {:>14} {:>10} {:>10}",
        "Strategy", "Final time (s)", "Evals", "Wall (s)"
    );
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "Random Search",
            Strategy::RandomSearch {
                n_evals: 11 * evals_per_dim,
            },
        ),
        ("Joint 11-dim BO", Strategy::FullyJoint),
        (
            "Methodology (C+H, R)",
            Strategy::Groups(vec![
                vec!["Decomp".into()],
                vec!["Compute".into(), "Halo".into()],
                vec!["Reduce".into()],
            ]),
        ),
        ("Fully independent", Strategy::FullyIndependent),
    ];
    for (label, strategy) in strategies {
        let mut finals = Vec::new();
        let mut times = Vec::new();
        let mut evals = 0;
        for rep in 0..args.reps {
            let noisy = StencilApp::new(StencilProblem::benchmark()).with_seed(rep as u64);
            let r = run_strategy(
                &noisy,
                &pairs,
                &strategy,
                &paper_bo(40 + rep as u64),
                evals_per_dim,
            )
            .expect("strategy");
            // Score on the clean simulator.
            let clean = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
            finals.push(clean.evaluate(&r.final_config).total);
            times.push(r.time_s);
            evals = r.n_evals;
        }
        let (fm, _) = mean_std(&finals);
        let (tm, _) = mean_std(&times);
        println!("{:<28} {:>14.4} {:>10} {:>10.2}", label, fm, evals, tm);
    }
    println!(
        "\nuntuned: {:.4}s",
        StencilApp::new(StencilProblem::benchmark())
            .with_noise(0.0)
            .evaluate(&app.default_config())
            .total
    );
    println!("Expected shape: the merged Compute+Halo search exploits the deep-halo");
    println!("trade that independent searches mis-tune (Halo alone prefers the");
    println!("deepest halo; Compute alone the shallowest).");
}
