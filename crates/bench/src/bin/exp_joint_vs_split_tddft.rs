//! X2 — In-text result (paper Section VIII): the joint Group 2+3 search
//! (N = 100) vs independent Group 2 (N = 30) and Group 3 (N = 100)
//! searches on the TDDFT simulator.
//!
//! Paper: the joint search wins by ~1% on Case Study 1 and ~4.6% on Case
//! Study 2, *while consuming fewer evaluations* (100 vs 130).
//!
//! Flags: `--reps N` (default 5), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{execute_plan, Objective, PlannedSearch, SearchPlan, SearchTarget};
use cets_tddft::{CaseStudy, TddftSimulator};

fn group_params(prefixes: &[&str]) -> Vec<String> {
    prefixes
        .iter()
        .flat_map(|k| ["u", "tb", "tb_sm"].iter().map(move |f| format!("{f}_{k}")))
        .collect()
}

fn main() {
    let args = ExpArgs::parse(5);
    banner(
        "X2",
        "Joint Group 2+3 search vs independent Group 2 / Group 3 (paper in-text)",
    );

    // Parameter sets as the paper uses them: Group 2 = pairwise kernel
    // (3 params); Group 3 = zcopy + dscal + zvec kernels (9 params, no cap
    // needed: "an independent search for Group 3 ... precisely amounting
    // to 10 parameters" counts u_zvec too; we include all 9 kernel params
    // + u_pair's cache-coupled partner is in G2).
    let g2 = group_params(&["pair"]);
    let g3 = group_params(&["zcopy", "dscal", "zvec"]);
    let mut joint = g2.clone();
    joint.extend(g3.clone());

    let joint_budget = args.budget(100);
    let g2_budget = args.budget(30);
    let g3_budget = args.budget(100);

    for case in [CaseStudy::case1(), CaseStudy::case2()] {
        let sim = TddftSimulator::new(case).with_expert_constraints();
        println!("--- {} ---", sim.case().name);
        let mut joint_vals = Vec::new();
        let mut split_vals = Vec::new();
        for rep in 0..args.reps {
            let seed = 300 + rep as u64;
            // Joint Group 2+3, one N=100 search minimizing G2+G3 runtime.
            let joint_plan = SearchPlan {
                stages: vec![vec![PlannedSearch {
                    name: "G2+G3".into(),
                    params: joint.clone(),
                    dropped: vec![],
                    target: SearchTarget::Routines(vec!["G2".into(), "G3".into()]),
                    budget: joint_budget,
                }]],
            };
            let je = execute_plan(&sim, &joint_plan, &paper_bo(seed), false).expect("joint");

            // Independent: G2 with N=30, G3 with N=100, in parallel.
            let split_plan = SearchPlan {
                stages: vec![vec![
                    PlannedSearch {
                        name: "G2".into(),
                        params: g2.clone(),
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["G2".into()]),
                        budget: g2_budget,
                    },
                    PlannedSearch {
                        name: "G3".into(),
                        params: g3.clone(),
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["G3".into()]),
                        budget: g3_budget,
                    },
                ]],
            };
            let se = execute_plan(&sim, &split_plan, &paper_bo(seed), true).expect("split");

            // Compare on the joint G2+G3 runtime of the final configs
            // (noise-free evaluation for a clean comparison).
            let clean = TddftSimulator::new(sim.case().clone())
                .with_expert_constraints()
                .with_noise(0.0);
            let jv = {
                let o = clean.evaluate(&je.final_config);
                o.routines[1] + o.routines[2]
            };
            let sv = {
                let o = clean.evaluate(&se.final_config);
                o.routines[1] + o.routines[2]
            };
            joint_vals.push(jv);
            split_vals.push(sv);
        }
        let (jm, js) = mean_std(&joint_vals);
        let (sm, ss) = mean_std(&split_vals);
        println!(
            "  joint G2+G3 (N={joint_budget}):            {:.6}s ± {:.6}",
            jm, js
        );
        println!(
            "  split G2 (N={g2_budget}) + G3 (N={g3_budget}): {:.6}s ± {:.6}",
            sm, ss
        );
        println!(
            "  joint is {:.1}% {} at {:.0}% of the evaluations ({} vs {})\n",
            (1.0 - jm / sm).abs() * 100.0,
            if jm <= sm { "better" } else { "worse" },
            joint_budget as f64 / (g2_budget + g3_budget) as f64 * 100.0,
            joint_budget,
            g2_budget + g3_budget
        );
    }
    println!("Paper reference: joint better by ~1% (CS1) and ~4.6% (CS2) with 100 vs 130 evals.");
}
