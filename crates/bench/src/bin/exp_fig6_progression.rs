//! F6 — Figure 6: progression of the optimal configuration found by the
//! BO searches over the number of evaluated candidates, for both case
//! studies; Case Study 2 uses transfer learning from Case Study 1's
//! configuration database (paper Section VIII).
//!
//! Output: one CSV series per search (evaluations, incumbent) suitable for
//! plotting.

use cets_bench::{banner, paper_bo, sparkline, ExpArgs};
use cets_core::{
    BoSearch, Methodology, MethodologyConfig, Objective, TransferSeed, VariationPolicy,
};
use cets_space::Subspace;
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    let args = ExpArgs::parse(1);
    banner(
        "F6",
        "BO search progression, both case studies (paper Figure 6)",
    );
    let evals_per_dim = if args.quick { 3 } else { 10 };

    let make_methodology = || {
        Methodology::new(MethodologyConfig {
            cutoff: 0.10,
            max_dims: 10,
            variation_policy: VariationPolicy::Spread { count: 5 },
            precedence: vec!["Slater".into(), "MPI".into()],
            shared_params: TddftSimulator::shared_params(),
            bo: paper_bo(6),
            evals_per_dim,
            parallel: true,
            ..Default::default()
        })
    };

    // --- Case Study 1: cold search.
    let cs1 = TddftSimulator::new(CaseStudy::case1()).with_expert_constraints();
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let m = make_methodology();
    let (report1, exec1) = m.run(&cs1, &pairs, &cs1.default_config()).expect("CS1 run");

    println!("# Case Study 1 (cold start)");
    for (name, outcome) in &exec1.searches {
        println!("series,cs1,{name}  {}", sparkline(&outcome.incumbent_trace));
        for (i, v) in outcome.incumbent_trace.iter().enumerate() {
            println!("{},{:.6}", i + 1, v);
        }
    }
    println!(
        "# CS1 final: {:.4}s after {} evaluations\n",
        exec1.final_value, exec1.total_evals
    );

    // --- Case Study 2: the merged G2+G3 search is warm-started with CS1's
    // configuration database (the paper's transfer-learning step).
    let cs2 = TddftSimulator::new(CaseStudy::case2()).with_expert_constraints();
    let merged_name = report1
        .plan
        .searches()
        .find(|s| s.name.contains('+'))
        .expect("merged search")
        .name
        .clone();
    let (_, merged_outcome) = exec1
        .searches
        .iter()
        .find(|(n, _)| *n == merged_name)
        .expect("merged outcome");
    let merged_params: Vec<&str> = report1
        .plan
        .searches()
        .find(|s| s.name == merged_name)
        .unwrap()
        .params
        .iter()
        .map(|p| p.as_str())
        .collect();

    // Prior pool from CS1's merged search.
    let sub1 = Subspace::new(cs1.space(), &merged_params, exec1.final_config.clone())
        .expect("CS1 subspace");
    let seed_pool = TransferSeed::from_outcome(&sub1, merged_outcome).expect("seed pool");

    // CS2 cold run for every stage, but the merged search warm-started.
    let m2 = make_methodology();
    let report2 = m2
        .analyze(&cs2, &pairs, &cs2.default_config())
        .expect("CS2 analysis");
    let exec2 = m2.execute(&cs2, &report2).expect("CS2 cold execution");

    // Warm-started merged search on CS2 (same budget).
    let merged2 = report2
        .plan
        .searches()
        .find(|s| s.name.contains('+'))
        .expect("CS2 merged search");
    let mp2: Vec<&str> = merged2.params.iter().map(|p| p.as_str()).collect();
    let sub2 = Subspace::new(cs2.space(), &mp2, exec2.final_config.clone()).expect("CS2 subspace");
    let g2g3 = |cfg: &cets_space::Config| {
        let o = cs2.evaluate(cfg);
        o.routines[1] + o.routines[2]
    };
    let warm_history = seed_pool.seed_history(&sub2, g2g3, 5);
    let warm = BoSearch::new({
        let mut b = paper_bo(61);
        b.max_evals = merged2.budget;
        b
    })
    .run_with_history(&sub2, g2g3, warm_history)
    .expect("warm search");

    println!("# Case Study 2 (cold stages + transfer-seeded merged search)");
    for (name, outcome) in &exec2.searches {
        println!(
            "series,cs2-cold,{name}  {}",
            sparkline(&outcome.incumbent_trace)
        );
        for (i, v) in outcome.incumbent_trace.iter().enumerate() {
            println!("{},{:.6}", i + 1, v);
        }
    }
    println!(
        "series,cs2-transfer,{merged_name}  {}",
        sparkline(&warm.incumbent_trace)
    );
    for (i, v) in warm.incumbent_trace.iter().enumerate() {
        println!("{},{:.6}", i + 1, v);
    }

    let cold_merged = exec2
        .searches
        .iter()
        .find(|(n, _)| n.contains('+'))
        .map(|(_, o)| o.best_value)
        .unwrap();
    println!(
        "\n# CS2 merged-search best: cold {:.5} vs transfer-seeded {:.5} ({}{:.1}%)",
        cold_merged,
        warm.best_value,
        if warm.best_value <= cold_merged {
            "-"
        } else {
            "+"
        },
        (warm.best_value / cold_merged - 1.0).abs() * 100.0
    );
}
