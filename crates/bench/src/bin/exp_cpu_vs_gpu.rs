//! X4 — Motivation (paper Section V): the CPU/MPI Slater-determinant
//! computation spends 40-50% of its runtime in communication (dominated by
//! the distributed transpose of the 3D FFT), which is what justifies the
//! GPU offload with `ngb = 1` — and creates the 20-parameter tuning
//! problem the methodology then solves.

use cets_bench::banner;
use cets_core::Objective;
use cets_tddft::{CaseStudy, CpuQbox, TddftSimulator};

fn main() {
    banner(
        "X4",
        "CPU/MPI communication profile vs GPU offload (paper Section V)",
    );
    let cpu = CpuQbox::default();

    for case in [CaseStudy::case1(), CaseStudy::case2()] {
        println!("--- {} ---", case.name);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>10}",
            "ngb", "compute(s)", "comm(s)", "total(s)", "comm %"
        );
        // Fair comparison: stay within the paper's 10-node / 40-rank
        // allocation (nstb = 4 band ranks x ngb plane-wave ranks).
        let mut best_cpu = f64::INFINITY;
        for ngb in [1usize, 2, 4, 8, 16, 32, 64] {
            let b = cpu.simulate(
                case.fft_size,
                case.nbands,
                case.nkpoints,
                case.nspin,
                4, // typical band decomposition
                1,
                1,
                ngb,
            );
            let ranks = 4 * ngb;
            let within = ranks <= 40;
            if within {
                best_cpu = best_cpu.min(b.total);
            }
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>12.3} {:>9.1}%{}",
                ngb,
                b.compute,
                b.comm,
                b.total,
                b.comm_fraction() * 100.0,
                if within {
                    ""
                } else {
                    "   (over 40-rank allocation)"
                }
            );
        }

        // GPU version at defaults and with nstb=4 to match the CPU run's
        // band split (noise off for a clean comparison).
        let sim = TddftSimulator::new(case.clone()).with_noise(0.0);
        let mut cfg = sim.default_config();
        cfg = sim
            .space()
            .with_value(&cfg, "nstb", cets_space::ParamValue::Int(4))
            .unwrap_or(cfg);
        let gpu = sim.simulate(&cfg);
        println!(
            "GPU offload (untuned, nstb=4):        total {:>8.3}s   ({:.2}x vs best CPU within allocation)",
            gpu.total,
            best_cpu / gpu.total
        );
        println!();
    }
    println!("Paper reference: \"around 40-50% of the runtime is attributed to");
    println!("communication primitives ... most of this overhead is incurred during");
    println!("a matrix transpose&padding step when calculating 3D-FFTs among ngb MPI");
    println!("tasks\" — visible above as the comm % at realistic ngb, and removed by");
    println!("the single-rank GPU 3D-FFT (ngb = 1).");
}
