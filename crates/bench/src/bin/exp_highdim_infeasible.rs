//! X3 — In-text result (paper Section VIII): joint 20-dimensional (and
//! GPU-only 17-dimensional) searches over the constrained TDDFT space are
//! infeasible for candidate generation, while the methodology's ≤10-dim
//! searches proceed.
//!
//! We measure the valid-candidate density of rejection sampling at each
//! dimensionality (everything not searched is frozen at defaults) and the
//! failure rate under a fixed per-candidate attempt budget — the concrete
//! mechanism behind "GPTune could not suggest candidates".

use cets_bench::banner;
use cets_core::Objective;
use cets_space::Subspace;
use cets_tddft::{CaseStudy, TddftSimulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    banner(
        "X3",
        "Candidate-generation feasibility vs search dimensionality (paper in-text)",
    );
    let sim = TddftSimulator::new(CaseStudy::case2());
    let space = sim.space();
    let all: Vec<&str> = space.names().iter().map(|s| s.as_str()).collect();
    let gpu17: Vec<&str> = all
        .iter()
        .copied()
        .filter(|n| !matches!(*n, "nstb" | "nkpb" | "nspb"))
        .collect();
    let merged10 = [
        "u_pair",
        "tb_pair",
        "tb_sm_pair",
        "u_zcopy",
        "tb_zcopy",
        "tb_sm_zcopy",
        "u_dscal",
        "tb_dscal",
        "tb_sm_dscal",
        "u_zvec",
    ];
    let g1 = ["u_vec", "tb_vec", "tb_sm_vec"];

    let searches: Vec<(&str, Vec<&str>)> = vec![
        ("joint 20-dim", all.clone()),
        ("GPU-only 17-dim", gpu17),
        ("methodology G2+3 (10-dim)", merged10.to_vec()),
        ("methodology G1 (3-dim)", g1.to_vec()),
    ];

    let trials = 20_000;
    println!(
        "{:<28} {:>12} {:>16} {:>22}",
        "Search", "valid rate", "attempts/valid", "fail rate @8 attempts"
    );
    for (name, params) in searches {
        let sub = match Subspace::new(space, &params, sim.default_config()) {
            Ok(sub) => sub,
            Err(e) => {
                eprintln!("X3: subspace `{name}`: {e}");
                std::process::exit(1);
            }
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut valid = 0usize;
        for _ in 0..trials {
            let u: Vec<f64> = (0..sub.dim()).map(|_| rng.random::<f64>()).collect();
            if sub.is_valid_active(&u) {
                valid += 1;
            }
        }
        let rate = valid as f64 / trials as f64;
        let attempts_per = if rate > 0.0 {
            1.0 / rate
        } else {
            f64::INFINITY
        };
        // P(all 8 blind attempts invalid).
        let fail8 = (1.0 - rate).powi(8);
        println!(
            "{:<28} {:>11.3}% {:>16.1} {:>21.2}%",
            name,
            rate * 100.0,
            attempts_per,
            fail8 * 100.0
        );
    }

    println!("\nInterpretation: at 20 (and 17) dimensions the five per-kernel occupancy");
    println!("constraints compound — a blind candidate is valid with probability ~0.05%,");
    println!("so any per-candidate attempt budget realistic for a BO framework fails");
    println!("almost always, reproducing the paper's observation that the joint searches");
    println!("could not even suggest candidates. The methodology's decomposed searches");
    println!("face at most a couple of constraints each and sample reliably.");
}
