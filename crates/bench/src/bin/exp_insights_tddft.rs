//! X1 — In-text insights (paper Section VIII, "Insights about
//! parameters"): overall-runtime sensitivity ranking, random-forest
//! feature importance, Pearson correlations, one-in-ten rule and runtime
//! spread for both TDDFT case studies.
//!
//! Paper reference points: CS1 sensitivity led by nstb (21.7%), then
//! nkpb, nbatches, nstreams...; CS1 feature importance led by nstb
//! (79.5%); tb/tb_sm pairs correlate at ~0.6 via the occupancy
//! constraint; sampled runtimes spread ~an order of magnitude.

use cets_bench::{banner, ExpArgs};
use cets_core::{gather_insights, routine_sensitivity, InsightsConfig, Objective, VariationPolicy};
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    let args = ExpArgs::parse(1);
    banner("X1", "Parameter insights for RT-TDDFT (paper Section VIII)");
    let n_samples = args.budget(100);

    for case in [CaseStudy::case1(), CaseStudy::case2()] {
        let sim = TddftSimulator::new(case).with_expert_constraints();
        println!("=== {} ===\n", sim.case().name);

        // Overall-runtime sensitivity (5 variations/param).
        let scores = routine_sensitivity(
            &sim,
            &sim.default_config(),
            &VariationPolicy::Spread { count: 5 },
        )
        .expect("sensitivity");
        println!("Overall-runtime sensitivity (top 8):");
        print!("{}", scores.top_k("total", 8).unwrap());

        // Feature importance + Pearson over sampled evaluations.
        let insights = gather_insights(
            &sim,
            &InsightsConfig {
                n_samples,
                seed: 7,
                correlation_threshold: 0.4,
                ..Default::default()
            },
        )
        .expect("insights");

        println!("\nRandom-forest feature importance (top 8, {n_samples} samples):");
        for (name, v) in insights.ranked_importance().into_iter().take(8) {
            println!("  {name:<14} {:>6.1}%", v * 100.0);
        }
        if let Some(r2) = insights.model_r2 {
            println!("  (OOB R² of the importance model: {r2:.2})");
        }

        println!(
            "\nOne-in-ten rule ({} samples, {} dims): {}",
            n_samples,
            sim.space().dim(),
            if insights.one_in_ten {
                "satisfied"
            } else {
                "NOT satisfied"
            }
        );

        println!("\nCorrelated parameter pairs (|r| >= 0.4):");
        if insights.correlated.is_empty() {
            println!("  (none above threshold)");
        }
        for (a, b, r) in insights.correlated.iter().take(8) {
            println!("  {a:<14} {b:<14} r = {r:+.2}");
        }

        let s = &insights.runtime_summary;
        println!(
            "\nSampled runtime distribution: min {:.4}s / median {:.4}s / max {:.4}s (dynamic range {:.1}x)\n",
            s.min,
            s.median,
            s.max,
            s.dynamic_range()
        );
    }
}
