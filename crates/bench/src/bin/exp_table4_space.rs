//! T4 — Table IV: the RT-TDDFT tuning parameters and configuration counts.
//!
//! The paper reports `41,943,040 × N_nstb × N_nkpb × N_nspb` possible
//! configurations for the GPU parameters; this binary prints our space's
//! exact definition, per-parameter cardinalities and the unconstrained
//! product, for both the general and the expert-constrained variants.

use cets_bench::banner;
use cets_core::Objective;
use cets_tddft::{CaseStudy, TddftSimulator};

fn main() {
    banner(
        "T4",
        "RT-TDDFT tuning parameters and configuration counts (paper Table IV)",
    );

    for (label, sim) in [
        (
            "general space (Case Study 2)",
            TddftSimulator::new(CaseStudy::case2()),
        ),
        (
            "expert-constrained space (Case Study 2)",
            TddftSimulator::new(CaseStudy::case2()).with_expert_constraints(),
        ),
    ] {
        println!("--- {label} ---\n");
        println!("{}", sim.space().describe_markdown());

        // The paper's GPU-only sub-count: 5 kernels × (4·32·32) each plus
        // nstreams × nbatches.
        let per_kernel: u128 = 4 * 32 * 32;
        let gpu_total = per_kernel.pow(5) * 32 * 32;
        println!(
            "GPU parameters alone: (4·32·32)^5 × 32 × 32 = {gpu_total} \
             (the paper's Table IV quotes 41,943,040 × the MPI factors,\n\
             counting each kernel's block alongside the shared stream/batch \
             dimensions rather than the full cross product).\n"
        );
    }
    println!("Validity constraints cut these counts dramatically — see");
    println!("exp_highdim_infeasible for the measured valid-candidate densities.");
}
