//! R1 — Related-work comparison (paper Section II): the high-dimensional
//! BO strategies the paper surveys — random-embedding BO (REMBO family)
//! and dropout BO — against the methodology's decomposition, on the
//! synthetic cases, at equal evaluation budget.
//!
//! Paper's qualitative claims to verify: embeddings suffer projection
//! distortions; dropout converges more slowly; the interdependence-aware
//! decomposition navigates best.
//!
//! Flags: `--reps N` (default 3), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{dropout_bo, rembo, run_strategy, Strategy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let args = ExpArgs::parse(3);
    let evals_per_dim = if args.quick { 3 } else { 10 };
    let budget = 20 * evals_per_dim; // equal total budget for every method
    banner(
        "R1",
        "Related-work baselines: REMBO / dropout vs the methodology (Section II)",
    );
    println!(
        "equal budget: {budget} evaluations per method, reps = {}\n",
        args.reps
    );

    println!(
        "{:<8} {:<26} {:>14} {:>10}",
        "Case", "Method", "Minimum ±std", "Time (s)"
    );
    for case in [
        SyntheticCase::Case3,
        SyntheticCase::Case4,
        SyntheticCase::Case5,
    ] {
        let owners = SyntheticFunction::owners();
        let pairs = SyntheticFunction::owner_pairs(&owners);

        type Runner<'a> = Box<dyn Fn(u64) -> (f64, f64) + 'a>;
        let methods: Vec<(&str, Runner)> = vec![
            (
                "REMBO (d=6 embedding)",
                Box::new(|seed: u64| {
                    let f = SyntheticFunction::new(case).with_seed(seed);
                    let mut bo = paper_bo(900 + seed);
                    bo.max_evals = budget;
                    let o = rembo(&f, 6, &bo).expect("rembo");
                    (o.best_value, o.wall_time.as_secs_f64())
                }),
            ),
            (
                "Dropout BO (d=10/iter)",
                Box::new(|seed: u64| {
                    let f = SyntheticFunction::new(case).with_seed(seed);
                    let mut bo = paper_bo(910 + seed);
                    bo.max_evals = budget;
                    let o = dropout_bo(&f, 10, &bo).expect("dropout");
                    (o.best_value, o.wall_time.as_secs_f64())
                }),
            ),
            (
                "Methodology (G1,G2,G3+G4)",
                Box::new(|seed: u64| {
                    let f = SyntheticFunction::new(case).with_seed(seed);
                    let r = run_strategy(
                        &f,
                        &pairs,
                        &Strategy::Groups(vec![
                            vec!["G1".into()],
                            vec!["G2".into()],
                            vec!["G3".into(), "G4".into()],
                        ]),
                        &paper_bo(920 + seed),
                        evals_per_dim,
                    )
                    .expect("strategy");
                    (r.final_value, r.time_s)
                }),
            ),
        ];

        for (label, run) in &methods {
            let mut minima = Vec::new();
            let mut times = Vec::new();
            for rep in 0..args.reps {
                let (m, t) = run(rep as u64);
                minima.push(m);
                times.push(t);
            }
            let (mm, ms) = mean_std(&minima);
            let (tm, _) = mean_std(&times);
            println!(
                "{:<8} {:<26} {:>8.2} ±{:<5.2} {:>10.2}",
                case.name(),
                label,
                mm,
                ms,
                tm
            );
        }
        println!();
    }
    println!("Expected shape (paper Section II): the decomposition finds the best");
    println!("minima; REMBO's clipped projections distort the landscape; dropout's");
    println!("random per-iteration subsets converge more slowly at equal budget.");
}
