//! T3 — Table III: minima found and search time for the four strategies
//! on the five synthetic cases, averaged over repetitions.
//!
//! Strategies (paper Section IV-D):
//! * Random Search — `10 × 20` uniform draws, embarrassingly parallel;
//! * `G1+G2+G3+G4` — one joint 20-dim BO search, N = 200;
//! * `G1,G2,G3+G4` — the methodology's suggestion for Cases 3-5: three
//!   parallel searches, N = {50, 50, 100};
//! * `G1,G2,G3,G4` — four parallel independent 5-dim searches, N = 50.
//!
//! The highlighted (methodology-suggested) strategy per case follows the
//! 25% cut-off decision: independent for Cases 1-2, split for Cases 3-5.
//!
//! Flags: `--reps N` (default 5), `--quick`.

use cets_bench::{banner, mean_std, paper_bo, ExpArgs};
use cets_core::{run_strategy, Strategy};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let args = ExpArgs::parse(5);
    let evals_per_dim = if args.quick { 3 } else { 10 };
    banner(
        "T3",
        "Strategy comparison on the synthetic cases (paper Table III)",
    );
    println!(
        "reps = {}, evals/dim = {evals_per_dim} (budgets: random {}, joint {}, split {}+{}+{}, indep 4×{})\n",
        args.reps,
        20 * evals_per_dim,
        20 * evals_per_dim,
        5 * evals_per_dim,
        5 * evals_per_dim,
        10 * evals_per_dim,
        5 * evals_per_dim,
    );

    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "Random Search",
            Strategy::RandomSearch {
                n_evals: 20 * evals_per_dim,
            },
        ),
        ("G1+G2+G3+G4 BO", Strategy::FullyJoint),
        (
            "G1,G2,G3+G4 BO",
            Strategy::Groups(vec![
                vec!["G1".into()],
                vec!["G2".into()],
                vec!["G3".into(), "G4".into()],
            ]),
        ),
        ("G1,G2,G3,G4 BO", Strategy::FullyIndependent),
    ];

    println!(
        "{:<8} {:<18} {:>14} {:>12} {:>10} {:>12}",
        "Case", "Strategy", "Minima Found", "±std", "Time (s)", "suggested?"
    );
    for case in SyntheticCase::all() {
        let owners = SyntheticFunction::owners();
        let pairs = SyntheticFunction::owner_pairs(&owners);
        for (name, strategy) in &strategies {
            let mut minima = Vec::with_capacity(args.reps);
            let mut times = Vec::with_capacity(args.reps);
            for rep in 0..args.reps {
                let f = SyntheticFunction::new(case).with_seed(rep as u64);
                let r = run_strategy(
                    &f,
                    &pairs,
                    strategy,
                    &paper_bo(1000 * (case.index() as u64 + 1) + rep as u64),
                    evals_per_dim,
                )
                .expect("strategy");
                minima.push(r.final_value);
                times.push(r.time_s);
            }
            let (m, s) = mean_std(&minima);
            let (t, _) = mean_std(&times);
            let suggested = match (case.expect_merge(), *name) {
                (true, "G1,G2,G3+G4 BO") | (false, "G1,G2,G3,G4 BO") => "  <== ",
                _ => "",
            };
            println!(
                "{:<8} {:<18} {:>14.2} {:>12.2} {:>10.2} {:>12}",
                case.name(),
                name,
                m,
                s,
                t,
                suggested
            );
        }
        println!();
    }
    println!("Paper shape to verify: BO beats Random Search on minima everywhere;");
    println!("the 20-dim joint search is by far the slowest and barely beats random;");
    println!("the split/independent strategies find the best minima, with the");
    println!("G3+G4 merge paying off in the interdependent cases (3-5).");
}
