//! `perf_suite` — the repo's performance-trajectory harness.
//!
//! Times the BO/GP hot path (GP hyperparameter training, batch prediction,
//! acquisition proposal) plus one full `Methodology::run` on a synthetic
//! 20-dimensional objective, and writes the results to `BENCH_bo.json` at
//! the repo root so every PR has a perf trajectory to compare against.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cets-bench --bin perf_suite                     # measure, merge into BENCH_bo.json
//! cargo run --release -p cets-bench --bin perf_suite -- --record-baseline # (re)record the baseline section
//! cargo run --release -p cets-bench --bin perf_suite -- --smoke          # tiny sizes, separate output, CI gate
//! cargo run --release -p cets-bench --bin perf_suite -- --out path.json  # custom output path
//! ```
//!
//! Normal runs load the existing file (if any), keep its `baseline`
//! section, fill `current` and recompute the `speedup` ratios
//! (`baseline.median_ms / current.median_ms` per benchmark). `--smoke`
//! runs reduced sizes and, unless `--out` is given, writes to
//! `target/bench_smoke.json` so it never perturbs the real trajectory;
//! every mode re-reads and validates the JSON it wrote before exiting 0.

use cets_core::{BoConfig, BoSearch, Methodology, MethodologyConfig, Objective, VariationPolicy};
use cets_gp::{select_inducing, Gp, GpConfig, Kernel, KernelKind, SparseGp, Surrogate, TierPolicy};
use cets_linalg::ParConfig;
use cets_space::{SearchSpace, Subspace};
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::Value;
use std::time::Instant;

/// Build a JSON object from `(key, value)` pairs (the vendored serde facade
/// represents objects as ordered `Vec<(String, Value)>`).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Harness-level result: every failure is a message plus exit code 1.
type BenchResult<T> = std::result::Result<T, String>;

/// Schema identifier written into (and checked back out of) the JSON.
const SCHEMA: &str = "cets-perf-trajectory/1";
/// Input dimensionality of every GP benchmark (the paper's 20 parameters).
const DIM: usize = 20;

struct Args {
    smoke: bool,
    record_baseline: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        smoke: false,
        record_baseline: false,
        out: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => a.smoke = true,
            "--record-baseline" => a.record_baseline = true,
            "--out" => {
                a.out = argv.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("perf_suite: unknown argument `{other}`");
                eprintln!("usage: perf_suite [--smoke] [--record-baseline] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a
}

/// One benchmark measurement.
struct Measure {
    id: &'static str,
    median_ms: f64,
    evals_per_sec: f64,
    /// What one "eval" means for this benchmark.
    eval_unit: &'static str,
    reps: usize,
    /// Worker-thread budget the benchmark was pinned to (`ParConfig::fixed`);
    /// results are bit-identical across values, only the timing changes.
    threads_used: usize,
    /// Benchmark-specific extra fields merged into the JSON entry (e.g. the
    /// sparse-tier benches record the exact-GP cost extrapolation they beat).
    extra: Vec<(&'static str, Value)>,
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Deterministic pseudo-random regression data set on the unit cube: a
/// smooth anisotropic test function with a mild pairwise interaction, so GP
/// training has real structure to fit (not pure noise).
fn dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.random::<f64>()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let smooth: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| ((i + 1) as f64 * v).sin() / (i + 1) as f64)
                .sum();
            smooth + 0.5 * x[0] * x[1]
        })
        .collect();
    (xs, ys)
}

/// Time `Gp::train` (multi-start Nelder–Mead over the LML) at size `n`,
/// pinned to a `threads`-worker budget.
fn bench_gp_train(id: &'static str, n: usize, reps: usize, threads: usize) -> BenchResult<Measure> {
    let (xs, ys) = dataset(n, 0xC0FFEE ^ n as u64);
    let cfg = GpConfig {
        par: ParConfig::fixed(threads),
        ..GpConfig::default()
    };
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let gp = Gp::train(&xs, &ys, &cfg).map_err(|e| format!("{id}: gp train: {e}"))?;
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(gp.lml().is_finite());
    }
    let med = median_ms(&mut samples);
    // Upper-bound estimate of LML evaluations per second: Nelder–Mead may
    // converge before exhausting its budget, so the true rate is >= this.
    let lml_evals = (cfg.n_restarts.max(1) * cfg.nm.max_evals) as f64;
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: lml_evals / (med / 1e3),
        eval_unit: "lml_evals (budget upper bound)",
        reps,
        threads_used: threads,
        extra: Vec::new(),
    })
}

/// Time WAL recovery — frame decode, checksum verification, and service
/// state replay — over a synthesized `n`-record campaign log. This is the
/// cost a restarted `cets serve` pays before its first new evaluation, so
/// it bounds the service's recovery latency per logged attempt.
fn bench_wal_replay(id: &'static str, n: usize, reps: usize) -> BenchResult<Measure> {
    use cets_serve::recovery::ServiceState;
    use cets_serve::spec::CampaignSpec;
    use cets_serve::wal::{encode_frame, read_frames, WalRecord, WAL_MAGIC};
    let spec = CampaignSpec {
        max_evals: n.max(1),
        ..CampaignSpec::new("bench", "sphere", 1)
    };
    let mut bytes = WAL_MAGIC.to_vec();
    let frame = |r: &WalRecord| encode_frame(r).map_err(|e| format!("{id}: encode: {e}"));
    bytes.extend_from_slice(&frame(&WalRecord::CampaignSubmitted { spec })?);
    let mut rng = StdRng::seed_from_u64(0x57A1);
    for idx in 0..n {
        let u: Vec<f64> = (0..3).map(|_| rng.random::<f64>()).collect();
        let y = u.iter().map(|v| v * v).sum();
        let rec = if idx % 16 == 7 {
            WalRecord::EvalFailed {
                id: "bench".into(),
                stage: 0,
                idx,
                u,
                kind: "crashed".into(),
                message: "injected".into(),
            }
        } else {
            WalRecord::EvalCompleted {
                id: "bench".into(),
                stage: 0,
                idx,
                u,
                y,
            }
        };
        bytes.extend_from_slice(&frame(&rec)?);
    }
    let mut samples = Vec::with_capacity(reps);
    let mut checksum = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let (records, report) =
            read_frames(&bytes).map_err(|e| format!("{id}: read_frames: {e}"))?;
        let state = ServiceState::replay(&records).map_err(|e| format!("{id}: replay: {e}"))?;
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        if report.truncated.is_some() {
            return Err(format!("{id}: clean log reported truncation"));
        }
        checksum += state.campaigns[0].total_attempts();
    }
    assert_eq!(checksum, n * reps);
    let med = median_ms(&mut samples);
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: (n + 1) as f64 / (med / 1e3),
        eval_unit: "wal_records",
        reps,
        threads_used: 1,
        extra: vec![("log_bytes", Value::UInt(bytes.len() as u64))],
    })
}

/// Time predicting `m` held-out points from a fixed-kernel GP of size `n`.
fn bench_gp_predict(id: &'static str, n: usize, m: usize, reps: usize) -> BenchResult<Measure> {
    let (xs, ys) = dataset(n, 0xBEEF ^ n as u64);
    let kernel = Kernel::with_params(KernelKind::Matern52, 1.0, vec![0.3; DIM]);
    let gp = Gp::fit(&xs, &ys, kernel, 1e-6).map_err(|e| format!("{id}: gp fit: {e}"))?;
    let (queries, _) = dataset(m, 0xD15C ^ m as u64);
    let mut samples = Vec::with_capacity(reps);
    let mut sink = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        for q in &queries {
            let (mu, var) = gp.predict(q);
            sink += mu + var;
        }
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    assert!(sink.is_finite());
    let med = median_ms(&mut samples);
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: m as f64 / (med / 1e3),
        eval_unit: "predictions",
        reps,
        threads_used: 1,
        extra: Vec::new(),
    })
}

/// A 20-dim unconstrained unit-cube subspace for the proposal benchmark.
fn unit_subspace() -> BenchResult<(SearchSpace, Subspace)> {
    let mut b = SearchSpace::builder();
    for i in 0..DIM {
        b = b.real(format!("x{i}"), 0.0, 1.0);
    }
    let space = b.build();
    let defaults = space
        .decode(&[0.5; DIM])
        .map_err(|e| format!("defaults: {e}"))?;
    let sub = Subspace::full(&space, defaults).map_err(|e| format!("subspace: {e}"))?;
    Ok((space, sub))
}

/// Time one acquisition-optimization step (`BoSearch::propose`: score the
/// candidate pool + local refinement) against a GP with `n` observations.
fn bench_propose(id: &'static str, n: usize, reps: usize) -> BenchResult<Measure> {
    let (_space, sub) = unit_subspace()?;
    let (xs, ys) = dataset(n, 0xACE ^ n as u64);
    let kernel = Kernel::with_params(KernelKind::Matern52, 1.0, vec![0.3; DIM]);
    let gp = Surrogate::Exact(
        Gp::fit(&xs, &ys, kernel, 1e-6).map_err(|e| format!("{id}: gp fit: {e}"))?,
    );
    let best = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let bo = BoSearch::new(BoConfig::default());
    let pool = (bo.config.n_candidates + bo.config.n_local) as f64;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(rep as u64);
        let t = Instant::now();
        let u = bo
            .propose(&sub, &gp, best, None, &mut rng)
            .map_err(|e| format!("{id}: propose: {e}"))?;
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(u.len(), DIM);
    }
    let med = median_ms(&mut samples);
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: pool / (med / 1e3),
        eval_unit: "candidates scored",
        reps,
        threads_used: 1,
        extra: Vec::new(),
    })
}

/// Time `Surrogate::train` with the sparse (SGPR) tier forced at size `n`.
///
/// When `exact_ref = Some((n0, ms0))` — the measured `Gp::train` cost at a
/// size the exact tier can still afford — the entry also records
/// `exact_extrapolated_ms = ms0 * (n / n0)^3` (the O(N^3) cost the exact
/// tier would pay at this `n`) and `speedup_vs_exact_extrapolation`, the
/// ratio the issue's acceptance bar is judged against.
fn bench_sparse_train(
    id: &'static str,
    n: usize,
    reps: usize,
    exact_ref: Option<(usize, f64)>,
    threads: usize,
) -> BenchResult<Measure> {
    let (xs, ys) = dataset(n, 0xC0FFEE ^ n as u64);
    let cfg = GpConfig {
        tier: TierPolicy::Sparse,
        par: ParConfig::fixed(threads),
        ..GpConfig::default()
    };
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let s = Surrogate::train(&xs, &ys, &cfg).map_err(|e| format!("{id}: sparse train: {e}"))?;
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(s.evidence().is_finite());
    }
    let med = median_ms(&mut samples);
    let elbo_evals = (cfg.sparse.n_restarts.max(1) * cfg.sparse.nm.max_evals) as f64;
    let mut extra = vec![(
        "m_inducing",
        Value::Int(cfg.sparse.m_inducing.min(n) as i64),
    )];
    if let Some((n0, ms0)) = exact_ref {
        let extrapolated = ms0 * (n as f64 / n0 as f64).powi(3);
        extra.push(("exact_extrapolated_ms", Value::Float(extrapolated)));
        extra.push((
            "speedup_vs_exact_extrapolation",
            Value::Float(extrapolated / med),
        ));
    }
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: elbo_evals / (med / 1e3),
        eval_unit: "elbo_evals (budget upper bound)",
        reps,
        threads_used: threads,
        extra,
    })
}

/// Time one acquisition-optimization step against a sparse-tier surrogate
/// with `n` observations (fixed kernel, so only the proposal is timed).
fn bench_propose_sparse(id: &'static str, n: usize, m: usize, reps: usize) -> BenchResult<Measure> {
    let (_space, sub) = unit_subspace()?;
    let (xs, ys) = dataset(n, 0xACE ^ n as u64);
    let kernel = Kernel::with_params(KernelKind::Matern52, 1.0, vec![0.3; DIM]);
    let z: Vec<Vec<f64>> = select_inducing(&xs, m)
        .into_iter()
        .map(|i| xs[i].clone())
        .collect();
    let gp = Surrogate::Sparse(
        SparseGp::fit(&xs, &ys, z, kernel, 1e-6).map_err(|e| format!("{id}: sparse fit: {e}"))?,
    );
    let best = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let bo = BoSearch::new(BoConfig::default());
    let pool = (bo.config.n_candidates + bo.config.n_local) as f64;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(rep as u64);
        let t = Instant::now();
        let u = bo
            .propose(&sub, &gp, best, None, &mut rng)
            .map_err(|e| format!("{id}: propose: {e}"))?;
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(u.len(), DIM);
    }
    let med = median_ms(&mut samples);
    Ok(Measure {
        id,
        median_ms: med,
        evals_per_sec: pool / (med / 1e3),
        eval_unit: "candidates scored",
        reps,
        threads_used: 1,
        extra: Vec::new(),
    })
}

/// Platform-stable FNV-1a fingerprint (std's `DefaultHasher` is not
/// guaranteed stable across releases, and the hash lands in committed JSON).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Time one full `Methodology::run` (analysis + lint + planned searches)
/// on a synthetic 20-dim objective, pinned to a `threads`-worker budget.
///
/// The entry records `final_config_hash`, a fingerprint of the winning
/// configuration and its exact objective bits — [`run_benches`] asserts the
/// hash matches across thread counts, which is the tentpole determinism
/// guarantee (and the CI bench-smoke gate's pass/fail condition).
fn bench_methodology(
    id: &'static str,
    evals_per_dim: usize,
    max_dims: usize,
    threads: usize,
) -> BenchResult<Measure> {
    let obj = SyntheticFunction::new(SyntheticCase::Case3);
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let m = Methodology::new(MethodologyConfig {
        cutoff: 0.25,
        max_dims,
        variation_policy: VariationPolicy::Spread { count: 5 },
        bo: BoConfig {
            seed: 42,
            ..Default::default()
        },
        evals_per_dim,
        parallel: threads > 1,
        par: ParConfig::fixed(threads),
        ..Default::default()
    });
    let t = Instant::now();
    let (_report, exec) = m
        .run(&obj, &pairs, &obj.default_config())
        .map_err(|e| format!("{id}: methodology run: {e}"))?;
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let hash = fnv1a(
        format!(
            "{:?}|{:016x}",
            exec.final_config,
            exec.final_value.to_bits()
        )
        .as_bytes(),
    );
    Ok(Measure {
        id,
        median_ms: ms,
        evals_per_sec: exec.total_evals as f64 / (ms / 1e3),
        eval_unit: "objective evals",
        reps: 1,
        threads_used: threads,
        extra: vec![
            ("final_value", Value::Float(exec.final_value)),
            ("final_config_hash", Value::String(format!("{hash:016x}"))),
        ],
    })
}

/// Attach `single_thread_ms` and `speedup_vs_single_thread` to a multi-thread
/// variant, referencing its single-thread twin's median.
fn with_speedup(mut m: Measure, single_thread_ms: Option<f64>) -> Measure {
    if let Some(ms1) = single_thread_ms {
        m.extra.push(("single_thread_ms", Value::Float(ms1)));
        m.extra
            .push(("speedup_vs_single_thread", Value::Float(ms1 / m.median_ms)));
    }
    m
}

/// Fail the whole suite if two methodology runs at different thread counts
/// reached different final configurations — the compute layer promises
/// bit-identical results at any worker budget, so a mismatch is a bug, not
/// a perf regression.
fn check_deterministic(a: &Measure, b: &Measure) -> BenchResult<()> {
    let hash = |m: &Measure| {
        m.extra
            .iter()
            .find(|(k, _)| *k == "final_config_hash")
            .map(|(_, v)| v.clone())
    };
    if hash(a) != hash(b) {
        return Err(format!(
            "determinism violation: {} (threads={}) and {} (threads={}) \
             reached different final configurations",
            a.id, a.threads_used, b.id, b.threads_used
        ));
    }
    Ok(())
}

fn run_benches(smoke: bool) -> BenchResult<Vec<Measure>> {
    let mut out = Vec::new();
    if smoke {
        out.push(bench_gp_train("gp_train_n16", 16, 1, 1)?);
        out.push(bench_gp_train("gp_train_n32", 32, 1, 1)?);
        let exact32 = out.last().map(|m| (32usize, m.median_ms));
        out.push(bench_sparse_train(
            "gp_train_sparse_n256",
            256,
            1,
            exact32,
            1,
        )?);
        out.push(bench_gp_predict("gp_predict_n32_m64", 32, 64, 2)?);
        out.push(bench_propose("propose_n32", 32, 2)?);
        out.push(bench_wal_replay("wal_replay_n200", 200, 3)?);
        out.push(bench_methodology("methodology_run_smoke", 2, 5, 1)?);
        let t1_ms = out.last().map(|m| m.median_ms);
        out.push(with_speedup(
            bench_methodology("methodology_run_smoke_t2", 2, 5, 2)?,
            t1_ms,
        ));
        check_deterministic(&out[out.len() - 2], &out[out.len() - 1])?;
    } else {
        out.push(bench_gp_train("gp_train_n50", 50, 5, 1)?);
        out.push(bench_gp_train("gp_train_n200", 200, 3, 1)?);
        out.push(bench_gp_train("gp_train_n500", 500, 1, 1)?);
        let exact500 = out.last().map(|m| (500usize, m.median_ms));
        let t1_ms = out.last().map(|m| m.median_ms);
        out.push(with_speedup(
            bench_gp_train("gp_train_n500_t4", 500, 1, 4)?,
            t1_ms,
        ));
        out.push(bench_sparse_train(
            "gp_train_sparse_n2000",
            2000,
            1,
            exact500,
            1,
        )?);
        out.push(bench_sparse_train(
            "gp_train_sparse_n10000",
            10_000,
            1,
            exact500,
            1,
        )?);
        let t1_ms = out.last().map(|m| m.median_ms);
        out.push(with_speedup(
            bench_sparse_train("gp_train_sparse_n10000_t4", 10_000, 1, exact500, 4)?,
            t1_ms,
        ));
        out.push(bench_gp_predict("gp_predict_n200_m512", 200, 512, 5)?);
        out.push(bench_propose("propose_n50", 50, 7)?);
        out.push(bench_propose("propose_n200", 200, 5)?);
        out.push(bench_propose("propose_n500", 500, 3)?);
        out.push(bench_propose_sparse("propose_sparse_n2000", 2000, 48, 3)?);
        out.push(bench_wal_replay("wal_replay_n5000", 5000, 5)?);
        out.push(bench_methodology("methodology_run", 10, 10, 1)?);
        let t1_ms = out.last().map(|m| m.median_ms);
        out.push(with_speedup(
            bench_methodology("methodology_run_t4", 10, 10, 4)?,
            t1_ms,
        ));
        check_deterministic(&out[out.len() - 2], &out[out.len() - 1])?;
    }
    Ok(out)
}

fn measures_to_json(ms: &[Measure]) -> Value {
    Value::Object(
        ms.iter()
            .map(|m| {
                let mut fields = vec![
                    ("median_ms", Value::Float(m.median_ms)),
                    ("evals_per_sec", Value::Float(m.evals_per_sec)),
                    ("eval_unit", Value::String(m.eval_unit.to_string())),
                    ("reps", Value::Int(m.reps as i64)),
                    ("threads_used", Value::Int(m.threads_used as i64)),
                ];
                fields.extend(m.extra.iter().cloned());
                (m.id.to_string(), obj(fields))
            })
            .collect(),
    )
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// `baseline.median_ms / current.median_ms` per benchmark present in both.
fn speedups(baseline: &Value, current: &Value) -> Value {
    let mut out: Vec<(String, Value)> = Vec::new();
    if let Value::Object(cur_fields) = current {
        for (id, cur) in cur_fields {
            let bm = baseline.get_field(id).get_field("median_ms").as_f64();
            let cm = cur.get_field("median_ms").as_f64();
            if let (Ok(bm), Ok(cm)) = (bm, cm) {
                if bm.is_finite() && cm > 0.0 {
                    out.push((id.clone(), Value::Float(bm / cm)));
                }
            }
        }
    }
    Value::Object(out)
}

/// Check the invariants every consumer of `BENCH_bo.json` relies on.
fn validate(doc: &Value) -> std::result::Result<(), String> {
    match doc.get_field("schema") {
        Value::String(s) if s == SCHEMA => {}
        other => return Err(format!("schema {other:?} != {SCHEMA}")),
    }
    let mut any = false;
    for section in ["baseline", "current"] {
        let Value::Object(benches) = doc.get_field(section).get_field("benches") else {
            continue;
        };
        any = true;
        for (id, b) in benches {
            for key in ["median_ms", "evals_per_sec"] {
                let v = b.get_field(key).as_f64().unwrap_or(f64::NAN);
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "{section}.benches.{id}.{key} = {v} is not positive"
                    ));
                }
            }
        }
    }
    if !any {
        return Err("neither baseline nor current section present".into());
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("perf_suite: {e}");
        std::process::exit(1);
    }
}

fn run() -> BenchResult<()> {
    let args = parse_args();
    let out_path = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            "target/bench_smoke.json".to_string()
        } else {
            "BENCH_bo.json".to_string()
        }
    });

    let mode = if args.smoke { "smoke" } else { "full" };
    eprintln!("perf_suite: mode={mode} out={out_path}");
    let measures = run_benches(args.smoke)?;
    for m in &measures {
        eprintln!(
            "  {:<24} median {:>10.3} ms   {:>12.1} {}/s  (reps {}, threads {})",
            m.id,
            m.median_ms,
            m.evals_per_sec,
            m.eval_unit.split(' ').next().unwrap_or("evals"),
            m.reps,
            m.threads_used
        );
    }
    let benches = measures_to_json(&measures);
    let results = obj(vec![
        ("recorded_unix", Value::UInt(unix_now())),
        ("benches", benches.clone()),
    ]);

    // Merge with the existing trajectory (normal runs keep the recorded
    // baseline; `--record-baseline` replaces it and clears stale sections).
    let existing: Option<Value> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::parse_value(&s).ok());
    // Fail-soft hardware probe (records 1 when the platform can't say).
    let threads = cets_linalg::par::available_threads();
    let mut fields: Vec<(&str, Value)> = vec![
        ("schema", Value::String(SCHEMA.to_string())),
        ("mode", Value::String(mode.to_string())),
        ("generated_unix", Value::UInt(unix_now())),
        (
            "harness",
            Value::String("cargo run --release -p cets-bench --bin perf_suite".to_string()),
        ),
        ("threads_available", Value::Int(threads as i64)),
    ];
    if args.record_baseline {
        fields.push(("baseline", results));
    } else {
        let baseline = existing
            .as_ref()
            .map(|e| e.get_field("baseline").clone())
            .unwrap_or(Value::Null);
        let ratio = speedups(baseline.get_field("benches"), &benches);
        if !matches!(baseline, Value::Null) {
            fields.push(("baseline", baseline));
        }
        fields.push(("current", results));
        fields.push(("speedup", ratio));
    }
    let doc = obj(fields);

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let rendered = serde_json::to_string_pretty(&doc).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out_path, rendered + "\n").map_err(|e| format!("write {out_path}: {e}"))?;

    // Self-validate: re-read what we wrote and check the schema invariants
    // (this is the `--smoke` CI gate's pass/fail condition).
    let reread =
        std::fs::read_to_string(&out_path).map_err(|e| format!("reread {out_path}: {e}"))?;
    let back =
        serde_json::parse_value(&reread).map_err(|e| format!("output is not valid JSON: {e}"))?;
    validate(&back).map_err(|e| format!("output validation failed: {e}"))?;
    if let Value::Object(sp) = back.get_field("speedup") {
        for (id, v) in sp {
            eprintln!("  speedup {:<24} {:>6.2}x", id, v.as_f64().unwrap_or(0.0));
        }
    }
    eprintln!("perf_suite: wrote {out_path} (valid {SCHEMA})");
    Ok(())
}
