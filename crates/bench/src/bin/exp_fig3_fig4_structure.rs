//! F3/F4 — Figures 3 & 4: the wavefunction→MPI-grid mapping (CPU vs GPU
//! versions) and the dominant computational pattern of the QBox-based
//! RT-TDDFT, rendered textually from the simulator's own structures.

use cets_bench::banner;
use cets_tddft::{CaseStudy, KernelId};

fn main() {
    banner(
        "F3/F4",
        "Wavefunction mapping and dominant computational pattern (paper Figures 3-4)",
    );

    for case in [CaseStudy::case1(), CaseStudy::case2()] {
        println!("--- {} ---", case.name);
        println!(
            "wavefunction: spin={} x kpoints={} x bands={} x G-vectors={}",
            case.nspin, case.nkpoints, case.nbands, case.fft_size
        );
        println!("CPU MPI grid:  nspb x nkpb x nstb x ngb   (4D; ngb ranks split each FFT)");
        println!("GPU MPI grid:  nspb x nkpb x nstb x 1     (ngb = 1: whole FFT on one GPU)\n");
    }

    println!("Dominant pattern (paper Figure 4 pseudo-code):");
    println!("  for all rtiterations:");
    println!("    while !SCF_converged:");
    println!("      for spins_loc / kpoints_loc / bands_loc (batched by nbatches):");
    println!("        # Group 1:");
    println!("        memcpy(HtoD)");
    println!("        cuVec2Zvec -> cuFFT-3D (bwd) -> cuZcopy -> cuFFT-3D (bwd)");
    println!("        # Group 2:");
    println!("        cuPairwise");
    println!("        # Group 3:");
    println!("        cuFFT-3D (fwd) + cuDscal -> cuZcopy -> cuFFT-3D (fwd) -> cuZvec2Vec");
    println!("        memcpy(DtoH)");
    println!("      ... accumulations and MPI reductions ...\n");

    println!("Per-kernel tuning parameters (paper Table IV) and model constants:");
    println!(
        "{:<12} {:>8} {:>12} {:>14}",
        "kernel", "u_opt", "bytes/elem", "params"
    );
    for k in KernelId::all() {
        println!(
            "{:<12} {:>8} {:>12.1} {:>14}",
            format!("cu{}", k.short()),
            k.optimal_unroll(),
            k.bytes_per_element(),
            format!("u,tb,tb_sm")
        );
    }
    println!("\nGPU compute-share targets at defaults (paper: cuFFT 61.4%, cuZcopy 14.2%,");
    println!("cuVec2Zvec 12.4%, cuPairwise 4.9%, cuDscal 4.2%, cuZvec2Vec 2.9%) are what");
    println!("the bytes/elem weights above are calibrated to; see cets-tddft::kernels.");
}
